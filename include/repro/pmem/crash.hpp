// Crash-point injection for the shadow-NVM engine (shadow.hpp).
//
// A crash plan arms a countdown over *persistence instructions*: every
// pwb/pfence/psync issued while armed decrements it, and when it hits
// zero the instruction about to execute instead throws CrashUnwind —
// modelling power failing at that instruction boundary, before its
// effect.  The throw latches the process-wide `crashed` flag first:
// once power has failed, *every* thread's next persistence instruction
// (and, in shadow mode, every tracked store — persist<T> consults
// check()) throws too, so concurrent workers stop advancing the
// durable image the instant the crash fires rather than racing commits
// past it.  disarm() clears both the countdown and the latch; the fuzz
// drivers call it after all workers have unwound, before verification.
//
// The counter is process-global.  Driven from a single thread a
// {seed, crash_point} pair replays bit-for-bit; driven from concurrent
// workers (the multi-threaded fuzzer) the countdown lands on whichever
// thread issues the n-th instruction — the schedule dimension the
// concurrent fuzzer deliberately explores, verified per-run against
// the recorded history rather than replayed.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <thread>

namespace repro::pmem::crash {

// Thrown at the chosen persistence-instruction boundary.  Deliberately
// not derived from std::exception: nothing downstream should catch it
// by accident — only the fuzz driver's explicit handler.
struct CrashUnwind {
  std::uint64_t events = 0;  // instructions executed before the crash
};

namespace detail {
inline std::atomic<bool>& armed_cell() {
  static std::atomic<bool> a{false};
  return a;
}
inline std::atomic<bool>& crashed_cell() {
  static std::atomic<bool> c{false};
  return c;
}
inline std::atomic<std::uint64_t>& remaining_cell() {
  static std::atomic<std::uint64_t> r{0};
  return r;
}
inline std::atomic<std::uint64_t>& seen_cell() {
  static std::atomic<std::uint64_t> s{0};
  return s;
}
inline std::atomic<std::uint64_t>& kill_remaining_cell() {
  static std::atomic<std::uint64_t> k{0};
  return k;
}
// Thread-latch mode (per-thread-death scenario): the armed countdown
// kills only the thread that hits it instead of latching the whole
// machine off.
inline std::atomic<bool>& thread_latch_cell() {
  static std::atomic<bool> m{false};
  return m;
}
// Set on the thread that fired in latch mode; fresh worker threads
// start alive, and the flag dies with the thread.
inline bool& tl_dead() {
  thread_local bool dead = false;
  return dead;
}
// Stall gate (stalled-thread scenario): the n-th instruction's thread
// parks on the gate *before* executing, until release_stall().
inline std::atomic<std::uint64_t>& stall_remaining_cell() {
  static std::atomic<std::uint64_t> s{0};
  return s;
}
inline std::atomic<bool>& stall_gate_cell() {
  static std::atomic<bool> g{false};
  return g;
}
inline std::atomic<bool>& stall_hit_cell() {
  static std::atomic<bool> h{false};
  return h;
}
}  // namespace detail

inline bool armed() {
  // Acquire: reading the firing thread's release-store of false makes
  // its prior crashed-latch store visible (see on_instruction).
  return detail::armed_cell().load(std::memory_order_acquire);
}

// The power-failed latch: set by the instruction that hit the armed
// countdown, cleared by disarm().  While set, the simulated machine is
// off — workers checking it (directly or via on_instruction/check)
// unwind instead of executing.  Acquire pairs with the firing thread's
// release stores so the latch-then-disarm order below is visible in
// that order.
inline bool crashed() {
  return detail::crashed_cell().load(std::memory_order_acquire);
}

// Instructions observed since the last arm().
inline std::uint64_t events() {
  return detail::seen_cell().load(std::memory_order_relaxed);
}

// Crash when the n-th persistence instruction from now is about to
// execute (n >= 1).  The first n-1 instructions run normally.
inline void arm(std::uint64_t n) {
  detail::seen_cell().store(0, std::memory_order_relaxed);
  detail::crashed_cell().store(false, std::memory_order_relaxed);
  detail::remaining_cell().store(n, std::memory_order_relaxed);
  detail::armed_cell().store(n > 0, std::memory_order_relaxed);
}

// Power restored: clears the countdown, the crashed latch, and
// thread-latch mode.  The fuzz drivers call this once every worker has
// unwound; verification and teardown then run persistence instructions
// normally.  A worker's own thread-death flag is thread-local and dies
// with the worker — disarm() cannot (and need not) clear it.
inline void disarm() {
  detail::armed_cell().store(false, std::memory_order_relaxed);
  detail::crashed_cell().store(false, std::memory_order_relaxed);
  detail::thread_latch_cell().store(false, std::memory_order_relaxed);
}

// Per-thread-death scenario: while on, the armed countdown fires as a
// single-thread failure — only the thread that hits the n-th
// instruction unwinds (its thread-local dead flag set); the machine
// stays on and survivors keep executing.
inline void set_thread_latch(bool on) {
  detail::thread_latch_cell().store(on, std::memory_order_relaxed);
}

// Did the calling thread die to a latch-mode firing?
inline bool thread_dead() { return detail::tl_dead(); }

// Cheap post-crash guard for paths that are not persistence
// instructions but must not run on a powered-off machine (shadow-mode
// tracked stores) or on a dead thread: throws iff the crash already
// fired or this thread was killed in latch mode.
inline void check() {
  if (detail::tl_dead()) throw CrashUnwind{events()};
  if (crashed()) throw CrashUnwind{events()};
}

// Stalled-thread adversary: the thread issuing the n-th persistence
// instruction from now publishes stall_hit() and parks *before* the
// instruction's effect, spinning on a gate until release_stall().
// After release it falls through and executes the instruction
// normally — the driver disarms the crash plan first, so the resumed
// thread does not unwind spuriously.
inline void arm_stall(std::uint64_t n) {
  detail::stall_hit_cell().store(false, std::memory_order_relaxed);
  detail::stall_gate_cell().store(n > 0, std::memory_order_relaxed);
  detail::stall_remaining_cell().store(n, std::memory_order_relaxed);
}

inline bool stall_hit() {
  return detail::stall_hit_cell().load(std::memory_order_acquire);
}

inline void release_stall() {
  detail::stall_gate_cell().store(false, std::memory_order_release);
}

inline void disarm_stall() {
  detail::stall_remaining_cell().store(0, std::memory_order_relaxed);
  detail::stall_gate_cell().store(false, std::memory_order_relaxed);
  detail::stall_hit_cell().store(false, std::memory_order_relaxed);
}

// True process-kill injection for the fork-kill harness
// (harness/killfuzz.hpp): the n-th persistence instruction from now
// raises SIGKILL instead of throwing CrashUnwind — an uncatchable end
// at a deterministic instruction boundary, so a {seed, kill_point}
// reproducer replays bit-for-bit in a fresh child process.  Shares
// on_instruction() with the simulated countdown but is independent of
// arm()/disarm(): the killed process never gets to disarm anything.
inline void arm_kill(std::uint64_t n) {
  detail::kill_remaining_cell().store(n, std::memory_order_relaxed);
}

// Called at the top of pmem::flush/fence/psync, before any effect.
inline void on_instruction() {
  // The kill countdown first: it models power failing AT this
  // instruction boundary, before the instruction's effect.  Driven
  // from concurrent workers two threads can race the decrement past
  // zero; the first one to hit 1 raises and the process is gone, so
  // the transient wrap in the loser is unobservable.
  auto& kill = detail::kill_remaining_cell();
  if (kill.load(std::memory_order_relaxed) > 0 &&
      kill.fetch_sub(1, std::memory_order_relaxed) == 1) {
    std::raise(SIGKILL);  // uncatchable; does not return
  }
  // Stall countdown: park before this instruction's effect.  While
  // parked the thread consumes no further instructions, so an armed
  // crash countdown keeps draining on the surviving threads; on
  // release it falls through to the normal checks below (the driver
  // disarms the crash first, so they pass).
  auto& stall = detail::stall_remaining_cell();
  if (stall.load(std::memory_order_relaxed) > 0 &&
      stall.fetch_sub(1, std::memory_order_relaxed) == 1) {
    detail::stall_hit_cell().store(true, std::memory_order_release);
    while (detail::stall_gate_cell().load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  check();
  if (!armed()) {
    // Close the latch race: another thread may have fired the crash
    // between the two loads above, clearing `armed` before this
    // thread observed `crashed`.  The firing order below latches
    // crashed (release) *before* clearing armed, so an armed()==false
    // read that raced the crash is guaranteed to see the latch here —
    // without this, a worker could slip one persistence instruction
    // (committing durable state) past the power failure.
    check();
    return;
  }
  const std::uint64_t left =
      detail::remaining_cell().fetch_sub(1, std::memory_order_relaxed);
  if (left <= 1) {
    if (detail::thread_latch_cell().load(std::memory_order_relaxed)) {
      // Per-thread death: exactly one thread dies.  A racer that
      // decremented past zero (left == 0) lost to the dying thread
      // and executes normally — the machine stays on.
      if (left == 1) {
        detail::tl_dead() = true;
        detail::armed_cell().store(false, std::memory_order_release);
        throw CrashUnwind{events()};
      }
      return;
    }
    detail::crashed_cell().store(true, std::memory_order_release);
    detail::armed_cell().store(false, std::memory_order_release);
    throw CrashUnwind{events()};
  }
  detail::seen_cell().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace repro::pmem::crash
