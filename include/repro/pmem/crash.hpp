// Crash-point injection for the shadow-NVM engine (shadow.hpp).
//
// A crash plan arms a countdown over *persistence instructions*: every
// pwb/pfence/psync issued while armed decrements it, and when it hits
// zero the instruction about to execute instead throws CrashUnwind —
// modelling power failing at that instruction boundary, before its
// effect.  The throw disarms the plan first, so persistence
// instructions issued while the stack unwinds (or afterwards, during
// verification) cannot fire a second crash.
//
// The counter is process-global and the fuzzer drives it from a single
// thread; that is what makes a {seed, crash_point} pair replayable
// bit-for-bit.  Arming from concurrent measurement threads is not a
// supported mode (the shadow-overhead benches run un-armed).
#pragma once

#include <atomic>
#include <cstdint>

namespace repro::pmem::crash {

// Thrown at the chosen persistence-instruction boundary.  Deliberately
// not derived from std::exception: nothing downstream should catch it
// by accident — only the fuzz driver's explicit handler.
struct CrashUnwind {
  std::uint64_t events = 0;  // instructions executed before the crash
};

namespace detail {
inline std::atomic<bool>& armed_cell() {
  static std::atomic<bool> a{false};
  return a;
}
inline std::atomic<std::uint64_t>& remaining_cell() {
  static std::atomic<std::uint64_t> r{0};
  return r;
}
inline std::atomic<std::uint64_t>& seen_cell() {
  static std::atomic<std::uint64_t> s{0};
  return s;
}
}  // namespace detail

inline bool armed() {
  return detail::armed_cell().load(std::memory_order_relaxed);
}

// Instructions observed since the last arm().
inline std::uint64_t events() {
  return detail::seen_cell().load(std::memory_order_relaxed);
}

// Crash when the n-th persistence instruction from now is about to
// execute (n >= 1).  The first n-1 instructions run normally.
inline void arm(std::uint64_t n) {
  detail::seen_cell().store(0, std::memory_order_relaxed);
  detail::remaining_cell().store(n, std::memory_order_relaxed);
  detail::armed_cell().store(n > 0, std::memory_order_relaxed);
}

inline void disarm() {
  detail::armed_cell().store(false, std::memory_order_relaxed);
}

// Called at the top of pmem::flush/fence/psync, before any effect.
inline void on_instruction() {
  if (!armed()) return;
  const std::uint64_t left =
      detail::remaining_cell().fetch_sub(1, std::memory_order_relaxed);
  if (left <= 1) {
    disarm();
    throw CrashUnwind{events()};
  }
  detail::seen_cell().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace repro::pmem::crash
