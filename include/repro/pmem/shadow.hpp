// Shadow-NVM mode for the simulated persistent-memory layer.
//
// In the counting modes a pmem::persist<T> store reaches its home
// location immediately, so nothing in the repo can *lose* an
// un-persisted write — a missing pwb or pfence in any structure is
// invisible to every test.  Shadow mode closes that hole: each tracked
// word keeps two values, the volatile ("cache") contents that running
// code reads and writes, and a durable shadow image that only advances
// at commit points.  The persistence instructions map onto the model
// as:
//
//   store/cas  — volatile only; the word's line becomes dirty
//   pwb        — marks the line flushable (pending) in program order
//   pfence     — commits every pending line: durable := volatile
//   psync      — same commit, plus the drain guarantee
//   crash      — discards everything not durable (see fidelity below)
//
// A simulated crash physically rewrites every dirty tracked word back
// to its durable value, so post-crash verification — recover() against
// the announcement board, durable-contents walks — runs against the
// durable image with no special read path.  uncrash() re-applies the
// saved volatile values afterwards so the structure can be verified,
// destroyed, and reclaimed normally (a real crash never runs
// destructors; the simulation must).
//
// Crash fidelity:
//   strict      — every line not committed by a pfence/psync is lost.
//                 Deterministic; what the unit tests pin down
//                 ("un-fenced writes are lost", "pwb without fence is
//                 lost").
//   adversarial — lines pwb'd but not yet fenced at the crash are
//                 individually kept or lost by the crash PRNG,
//                 modelling clwb/clflushopt write-backs completing in
//                 any order before the missing fence.  This is what
//                 gives the crash-point fuzzer teeth: eliding one
//                 pfence creates an interleaving where the commit
//                 record persists but the structural update does not,
//                 and the PRNG finds it within a few hundred crash
//                 points (see tests/test_crash_engine.cpp's mutation
//                 self-test).  Stores that were never pwb'd are always
//                 lost under both fidelities.
//
// Interaction with the PR3 pwb-coalescing window: coalescing defers
// and dedups the *execution* of write-backs, but the pwb instruction
// itself is issued at flush() time — so the shadow pending mark is
// taken there, duplicates included (marking an already-pending line is
// a no-op), and a window overflow that executes a clflush early still
// leaves the line pending until the next fence.  The deferred window
// therefore spills into the shadow log with exactly the semantics the
// coalescing contract promises: nothing is durable before the fence.
//
// Granularity is one 64-byte line (what pwb flushes), tracked as up to
// eight 8-byte words; every pmem::persist<T> cell in the tree is an
// 8-byte-aligned word inside a line-aligned host object (descriptors,
// list/queue links, pool cells).  Tracking starts when shadow mode is
// enabled: words never stored after that point keep their values
// across a crash, which models state persisted before the crash plan
// started (construction, prefill).
//
// Thread-safety: the line table is sharded and mutex-protected so
// multi-threaded shadow runs (the shadow-overhead benches) are
// race-free; pending lists are thread-local, matching pfence's
// per-thread semantics.  crash()/uncrash()/reset() are single-threaded
// operations — the fuzzer calls them with no concurrent mutators,
// exactly like a real post-mortem.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace repro::pmem::shadow {

enum class CrashFidelity { strict, adversarial };

// What one simulated crash did; the fuzzer folds these into its report.
struct CrashStats {
  std::uint64_t words_restored = 0;   // rewound to the durable image
  std::uint64_t lines_committed = 0;  // pending lines the PRNG kept
  std::uint64_t lines_dropped = 0;    // pending lines the PRNG lost
};

using LoadFn = std::uint64_t (*)(void* cell);
using StoreFn = void (*)(void* cell, std::uint64_t bits);

namespace detail {

inline constexpr std::uintptr_t kLineMask = ~std::uintptr_t{63};
inline constexpr int kShards = 16;

struct Word {
  void* cell = nullptr;
  LoadFn load = nullptr;
  StoreFn store = nullptr;
  std::uint64_t durable = 0;  // value at the last commit (or first sight)
  bool dirty = false;         // volatile differs from durable
};

struct LineRec {
  Word words[8];  // indexed by (addr >> 3) & 7
  bool pending = false;  // pwb issued since the last commit
};

struct Shard {
  std::mutex mu;
  std::unordered_map<std::uintptr_t, LineRec> lines;
};

struct Engine {
  std::atomic<bool> enabled{false};
  Shard shards[kShards];
  // Saved volatile values of words rewound by the last crash(), so
  // uncrash() can restore the pre-crash machine state.
  std::vector<Word> undo;

  static Engine& instance() {
    static Engine e;
    return e;
  }

  Shard& shard_for(std::uintptr_t line) {
    return shards[(line >> 6) % kShards];
  }
};

// Per-thread pending lines: pwb'd since this thread's last fence.
// (pfence commits the issuing thread's own write-backs.)
struct PendingLines {
  std::vector<std::uintptr_t> lines;
};
inline PendingLines& tl_pending() {
  thread_local PendingLines p;
  return p;
}

inline void commit_line(Engine& e, std::uintptr_t line) {
  Shard& sh = e.shard_for(line);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.lines.find(line);
  if (it == sh.lines.end()) return;
  it->second.pending = false;
  for (Word& w : it->second.words) {
    if (w.cell != nullptr && w.dirty) {
      w.durable = w.load(w.cell);
      w.dirty = false;
    }
  }
}

}  // namespace detail

inline bool enabled() {
  return detail::Engine::instance().enabled.load(
      std::memory_order_relaxed);
}

// Tracked word count (tests); walks every shard, not hot-path safe.
inline std::size_t tracked_words() {
  detail::Engine& e = detail::Engine::instance();
  std::size_t n = 0;
  for (detail::Shard& sh : e.shards) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [line, rec] : sh.lines) {
      for (const detail::Word& w : rec.words) n += w.cell != nullptr;
    }
  }
  return n;
}

// Drop all tracking state (between fuzz iterations).  Does not touch
// the enabled flag.
inline void reset() {
  detail::Engine& e = detail::Engine::instance();
  for (detail::Shard& sh : e.shards) {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.lines.clear();
  }
  e.undo.clear();
  detail::tl_pending().lines.clear();
}

inline void set_enabled(bool on) {
  detail::Engine::instance().enabled.store(on,
                                           std::memory_order_relaxed);
}

// persist<T>::store/cas routes here *before* mutating the cell:
// `prior` is the cell's current value, which becomes the word's
// durable baseline the first time shadow mode sees it.
inline void on_store(void* cell, std::uint64_t prior, LoadFn load,
                     StoreFn store) {
  detail::Engine& e = detail::Engine::instance();
  const auto addr = reinterpret_cast<std::uintptr_t>(cell);
  const std::uintptr_t line = addr & detail::kLineMask;
  detail::Shard& sh = e.shard_for(line);
  std::lock_guard<std::mutex> lock(sh.mu);
  detail::LineRec& rec = sh.lines[line];
  detail::Word& w = rec.words[(addr >> 3) & 7];
  if (w.cell == nullptr) {
    w.cell = cell;
    w.load = load;
    w.store = store;
    w.durable = prior;
  }
  w.dirty = true;
}

// pwb issued for `addr`'s line (called from pmem::flush while enabled,
// coalesced or not — issuing is what marks the line flushable).  The
// line lands in the *issuing* thread's pending list even when another
// thread's pwb already marked it: on real hardware my clwb + my sfence
// makes the line durable no matter whose write-back raced mine, and a
// helper persisting a stalled thread's link (MsQueueCore's expose
// rule) relies on exactly that.  Duplicates within one thread's list
// are possible and harmless — commit_line is idempotent.
inline void on_pwb(const void* addr) {
  const std::uintptr_t line =
      reinterpret_cast<std::uintptr_t>(addr) & detail::kLineMask;
  detail::Engine& e = detail::Engine::instance();
  {
    detail::Shard& sh = e.shard_for(line);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.lines.find(line);
    if (it == sh.lines.end()) return;  // no tracked words on this line
    it->second.pending = true;
  }
  detail::tl_pending().lines.push_back(line);
}

// pfence/psync: commit this thread's pending lines.
inline void on_fence() {
  detail::PendingLines& p = detail::tl_pending();
  detail::Engine& e = detail::Engine::instance();
  for (std::uintptr_t line : p.lines) detail::commit_line(e, line);
  p.lines.clear();
}

// Simulated power failure: every tracked line reverts to its durable
// image.  Under adversarial fidelity each line still pending (pwb'd,
// unfenced) is first committed or dropped by `coin`, a PRNG callback
// returning true to keep the line; strict fidelity drops them all.
// The volatile values being overwritten are saved for uncrash().
// Single-threaded: call with no concurrent mutators.
//
// `keep_undo` supports the chained-crash scenario (crash, recover on
// the durable image, crash again mid-recovery): the machine stays
// crashed between links — uncrash() bypasses dirty-flag bookkeeping,
// so rewinding a restored machine a second time would be a no-op for
// the words it revived — and each link appends its rewinds to the
// previous link's undo log instead of replacing it.  One final
// uncrash() replays the whole log in push order, so the latest saved
// volatile value of a word rewound by several links wins.
template <typename Coin>
CrashStats crash(CrashFidelity fidelity, Coin&& coin,
                 bool keep_undo = false) {
  detail::Engine& e = detail::Engine::instance();
  CrashStats stats;
  if (!keep_undo) e.undo.clear();
  for (detail::Shard& sh : e.shards) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (auto& [line, rec] : sh.lines) {
      if (rec.pending) {
        const bool keep = fidelity == CrashFidelity::adversarial &&
                          static_cast<bool>(coin());
        rec.pending = false;
        if (keep) {
          ++stats.lines_committed;
          for (detail::Word& w : rec.words) {
            if (w.cell != nullptr && w.dirty) {
              w.durable = w.load(w.cell);
              w.dirty = false;
            }
          }
          continue;
        }
        ++stats.lines_dropped;
      }
      for (detail::Word& w : rec.words) {
        if (w.cell == nullptr || !w.dirty) continue;
        detail::Word u = w;
        u.durable = w.load(w.cell);  // repurposed: pre-crash volatile
        e.undo.push_back(u);
        w.store(w.cell, w.durable);
        w.dirty = false;
        ++stats.words_restored;
      }
    }
  }
  // Pending lists of every thread are stale after a crash; ours is the
  // only live one in the single-threaded fuzz loop.
  detail::tl_pending().lines.clear();
  return stats;
}

inline CrashStats crash_strict() {
  return crash(CrashFidelity::strict, [] { return false; });
}

// Undo the last crash(): re-apply the saved volatile values so the
// structure is back in its pre-crash (fully consistent) state and can
// be torn down through the normal destructor/reclaimer path.
inline void uncrash() {
  detail::Engine& e = detail::Engine::instance();
  for (const detail::Word& u : e.undo) u.store(u.cell, u.durable);
  e.undo.clear();
}

// True if any tracked word in [p, p+bytes) is dirty — stored since the
// last commit of its line.  A pwb'd-but-unfenced word still counts: at
// a crash the adversarial coin may drop its line, so it is not durable.
// The crash-during-reclaim scenario checks this over every parked
// (retired, unreclaimed) cell: persist-before-retire promises a parked
// cell's lines were fenced before the cell entered any limbo/batch
// list, so a dirty word there is a violated ordering, not a race.
inline bool range_dirty(const void* p, std::size_t bytes) {
  detail::Engine& e = detail::Engine::instance();
  const auto base = reinterpret_cast<std::uintptr_t>(p);
  for (std::uintptr_t line = base & detail::kLineMask;
       line < base + bytes; line += 64) {
    detail::Shard& sh = e.shard_for(line);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.lines.find(line);
    if (it == sh.lines.end()) continue;
    for (const detail::Word& w : it->second.words) {
      if (w.cell != nullptr && w.dirty) {
        const auto wa = reinterpret_cast<std::uintptr_t>(w.cell);
        if (wa >= base && wa < base + bytes) return true;
      }
    }
  }
  return false;
}

// Durable value of a tracked word, if shadow mode has seen it (tests).
inline bool durable_value(const void* cell, std::uint64_t& out) {
  detail::Engine& e = detail::Engine::instance();
  const auto addr = reinterpret_cast<std::uintptr_t>(cell);
  detail::Shard& sh = e.shard_for(addr & detail::kLineMask);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.lines.find(addr & detail::kLineMask);
  if (it == sh.lines.end()) return false;
  const detail::Word& w = it->second.words[(addr >> 3) & 7];
  if (w.cell == nullptr) return false;
  out = w.durable;
  return true;
}

}  // namespace repro::pmem::shadow
