// File-backed persistent heap: the mmap durability backend.
//
// Everything the paper calls "NVRAM" — announcement boards, structure
// heads, pool slabs full of nodes — lives in one MAP_SHARED file, so a
// process that dies (including kill -9) leaves its durable image in
// the page cache / on disk, and a *fresh* process can map the same
// file and read it back.  This is what turns the detectability
// contract from an in-process simulation (shadow-NVM, PR 4/5) into a
// claim about real crashes: harness/killfuzz.hpp forks a workload
// child against this heap, SIGKILLs it, and re-attaches in a verifier
// process that replays AnnouncementBoard::recover() against the file.
//
// Pointer representation: rebase-on-open.  The first attach picks a
// fixed virtual base (recorded in the header) and every later attach
// maps the file at that exact address, so the raw pointers the
// structures store in persist<Node*> cells are valid verbatim in every
// process that ever maps the heap.  This keeps the ds/ cores byte-for-
// byte identical between volatile and persistent operation — the
// alternative (offset pointers) would tax every link dereference and
// fork the core implementations.  The base constants avoid the
// sanitizer shadow regions (TSan's low app range, ASan's HighMem) and
// a handful of stepped candidates are tried before giving up;
// attach() returning nullptr means "this environment cannot map
// there", which callers (tests) treat as a skip, not a failure.
//
// Layout:
//   [0, 4096)        Header — magic/version, chosen base, file size,
//                    persistent bump offset, root directory (named
//                    slots, each {name, offset, initialized}).
//   [4096, bytes)    Arena — 64-byte-aligned bump allocations: root
//                    objects (whole structures: board + heads inline)
//                    and the 64 KiB slabs mem/pool.hpp carves its node
//                    cells from (attach installs the slab source).
//
// Root creation publishes in three persisted steps (object contents,
// then name+offset, then the initialized flag), so a kill can only
// leave an absent or an uninitialized slot — never a dangling one; a
// torn slot is reused by the next creator.  All heap-internal metadata
// persists through pmem::persist_range_raw, which neither counts in
// the per-op tallies nor advances the crash/kill countdowns — replay
// determinism must not depend on how many slabs the allocator carved.
//
// Crash-consistency of the *allocator* is deliberately simple: bump
// never rewinds, and space owned by a killed process's volatile free
// lists is simply leaked inside the file (bounded by the trial's live
// set).  The kill harness reuses or deletes its heap file per trial,
// so the leak never accumulates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "repro/mem/pool.hpp"
#include "repro/pmem/persist.hpp"

namespace repro::pmem {

class MmapHeap {
 public:
  static constexpr std::uint64_t kMagic = 0x5250'4d48'4541'5031ull;
  static constexpr std::uint64_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 4096;
  static constexpr std::size_t kDefaultBytes = std::size_t{64} << 20;
  static constexpr int kMaxRoots = 16;
  static constexpr std::size_t kRootNameBytes = 40;

  // Fixed-base candidates.  TSan maps its shadow over most of the
  // address space and only tolerates application memory in its app
  // ranges; the low range ends at 0x008000000000, so candidates step
  // inside it.  Everywhere else (ASan HighMem starts below this, plain
  // builds don't care) a high address clear of the PIE image
  // (0x5555...) and the mmap region (0x7f...) is used.
#if defined(__SANITIZE_THREAD__)
#define REPRO_MMAP_HEAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define REPRO_MMAP_HEAP_TSAN 1
#endif
#endif
#ifdef REPRO_MMAP_HEAP_TSAN
  static constexpr std::uintptr_t kBase = 0x0070'0000'0000ull;
  static constexpr std::uintptr_t kBaseStep = 0x0002'0000'0000ull;
#else
  static constexpr std::uintptr_t kBase = 0x5100'0000'0000ull;
  static constexpr std::uintptr_t kBaseStep = 0x0010'0000'0000ull;
#endif
  static constexpr int kBaseTries = 8;

  struct RootSlot {
    char name[kRootNameBytes];
    std::uint64_t offset;       // from the mapping base
    std::uint64_t initialized;  // set (and persisted) after the ctor
  };

  struct Header {
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t base;       // the address every attach must map at
    std::uint64_t bytes;      // file / mapping size
    std::uint64_t arena_off;  // first allocatable byte
    alignas(8) std::uint64_t bump;  // next free arena byte (atomic_ref)
    RootSlot roots[kMaxRoots];
  };
  static_assert(sizeof(Header) <= kHeaderBytes,
                "heap header must fit the first page");

  // The process-wide attached heap (at most one at a time).
  static MmapHeap* active() { return active_cell(); }

  // Opens (creating if absent) `path` and maps it at its fixed base.
  // Returns nullptr if the file exists but is not a heap, the base is
  // unavailable in this process, or no candidate base can be mapped —
  // environment-caused failures callers should skip on, not crash on.
  static MmapHeap* attach(const std::string& path,
                          std::size_t bytes = kDefaultBytes) {
    if (active_cell() != nullptr) return nullptr;
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return nullptr;

    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return nullptr;
    }

    bool existing = false;
    std::uintptr_t base = 0;
    std::size_t total = bytes < (std::size_t{1} << 20)
                            ? (std::size_t{1} << 20)
                            : bytes;
    if (static_cast<std::size_t>(st.st_size) >= kHeaderBytes) {
      Header probe{};
      if (::pread(fd, &probe, sizeof(probe), 0) ==
              static_cast<ssize_t>(sizeof(probe)) &&
          probe.magic == kMagic) {
        if (probe.version != kVersion) {
          ::close(fd);
          return nullptr;
        }
        existing = true;
        base = static_cast<std::uintptr_t>(probe.base);
        total = static_cast<std::size_t>(probe.bytes);
      }
    }

    void* map = MAP_FAILED;
    if (existing) {
      map = map_at(fd, base, total);
      if (map == nullptr) {
        ::close(fd);
        return nullptr;
      }
    } else {
      if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
        ::close(fd);
        return nullptr;
      }
      for (int i = 0; i < kBaseTries; ++i) {
        const std::uintptr_t cand = kBase + kBaseStep * static_cast<std::uintptr_t>(i);
        map = map_at(fd, cand, total);
        if (map != nullptr) {
          base = cand;
          break;
        }
      }
      if (map == nullptr || map == MAP_FAILED) {
        ::close(fd);
        return nullptr;
      }
      auto* h = static_cast<Header*>(map);
      std::memset(h, 0, sizeof(Header));
      h->version = kVersion;
      h->base = static_cast<std::uint64_t>(base);
      h->bytes = static_cast<std::uint64_t>(total);
      h->arena_off = kHeaderBytes;
      h->bump = kHeaderBytes;
      persist_range_raw(h, sizeof(Header));
      // Magic last: a heap file is only recognised once its header is
      // fully durable, so a kill mid-format reads as "not a heap".
      h->magic = kMagic;
      persist_range_raw(&h->magic, sizeof(h->magic));
    }
    ::close(fd);  // the mapping outlives the descriptor

    auto* heap = new MmapHeap(path, base, total);
    active_cell() = heap;

    // A recovered process never saw the killed writer's per-slab
    // SlabDirectory registrations; vouch for the arena's used extent
    // wholesale so durable walks accept mapped node pointers.
    const std::uint64_t used = std::atomic_ref<std::uint64_t>(
                                   heap->header()->bump)
                                   .load(std::memory_order_relaxed);
    if (existing && used > heap->header()->arena_off) {
      mem::SlabDirectory::instance().add(
          reinterpret_cast<void*>(base + heap->header()->arena_off),
          static_cast<std::size_t>(used - heap->header()->arena_off));
    }
    mem::set_slab_source(&MmapHeap::carve_slab);
    set_msync_hook(&MmapHeap::msync_active);
    return heap;
  }

  // Unmaps the active heap (msyncing it durable first) and uninstalls
  // the pool/fence hooks.  Pool shards may still hold cells carved
  // from the mapped arena: re-attaching the *same* file revalidates
  // them (same base, same contents); attaching a different file from
  // the same process after pool use is not supported.
  static void detach() {
    MmapHeap* h = active_cell();
    if (h == nullptr) return;
    mem::set_slab_source(nullptr);
    set_msync_hook(nullptr);
    h->sync();
    ::munmap(reinterpret_cast<void*>(h->base_), h->bytes_);
    active_cell() = nullptr;
    delete h;
  }

  Header* header() { return reinterpret_cast<Header*>(base_); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(base_);
  }
  std::uintptr_t base() const { return base_; }
  std::size_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  std::uint64_t used_bytes() const {
    // atomic_ref<const T> is C++26; the cast is sound (the referent is
    // mutable mapped memory).
    return std::atomic_ref<std::uint64_t>(
               const_cast<Header*>(header())->bump)
        .load(std::memory_order_relaxed);
  }

  // Bump-allocates `n` bytes (rounded up to whole cache lines) from
  // the arena; nullptr when the file is full.  The bump offset is
  // persisted raw — see the header comment for why it must not count.
  void* alloc(std::size_t n) {
    const std::uint64_t need =
        (static_cast<std::uint64_t>(n) + 63u) & ~std::uint64_t{63};
    std::atomic_ref<std::uint64_t> bump(header()->bump);
    const std::uint64_t off =
        bump.fetch_add(need, std::memory_order_relaxed);
    if (off + need > header()->bytes) {
      bump.fetch_sub(need, std::memory_order_relaxed);
      return nullptr;
    }
    persist_range_raw(&header()->bump, sizeof(std::uint64_t));
    return reinterpret_cast<void*>(base_ + off);
  }

  // Create-or-reattach a named root object.  First call constructs a T
  // in the arena and publishes it (contents, then name+offset, then
  // the initialized flag — each persisted before the next); later
  // calls, in this or any other process mapping the file, return the
  // same object WITHOUT re-running the constructor.  A slot whose
  // creator died before the flag was persisted is reused.
  template <typename T, typename... Args>
  T* root(const char* name, Args&&... args) {
    std::lock_guard<std::mutex> lock(roots_mu_);
    Header* h = header();
    RootSlot* free_slot = nullptr;
    for (int i = 0; i < kMaxRoots; ++i) {
      RootSlot& s = h->roots[i];
      if (s.name[0] == '\0') {
        if (free_slot == nullptr) free_slot = &s;
        continue;
      }
      if (std::strncmp(s.name, name, kRootNameBytes) == 0) {
        if (s.initialized != 0) {
          return reinterpret_cast<T*>(base_ + s.offset);
        }
        free_slot = &s;  // torn creation: redo it in this slot
        break;
      }
    }
    if (free_slot == nullptr) return nullptr;  // directory full
    void* p = alloc(sizeof(T));
    if (p == nullptr) return nullptr;
    T* obj = ::new (p) T(std::forward<Args>(args)...);
    persist_range_raw(p, sizeof(T));
    std::memset(free_slot->name, 0, kRootNameBytes);
    std::strncpy(free_slot->name, name, kRootNameBytes - 1);
    free_slot->offset =
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p) -
                                   base_);
    persist_range_raw(free_slot, sizeof(RootSlot));
    free_slot->initialized = 1;
    persist_range_raw(&free_slot->initialized,
                      sizeof(free_slot->initialized));
    return obj;
  }

  // Reattach-only lookup: never constructs.  nullptr when the name is
  // absent or its creator died mid-construction — for the kill
  // verifier both mean "the trial ended before setup finished".
  template <typename T>
  T* find_root(const char* name) {
    std::lock_guard<std::mutex> lock(roots_mu_);
    Header* h = header();
    for (int i = 0; i < kMaxRoots; ++i) {
      RootSlot& s = h->roots[i];
      if (s.name[0] != '\0' && s.initialized != 0 &&
          std::strncmp(s.name, name, kRootNameBytes) == 0) {
        return reinterpret_cast<T*>(base_ + s.offset);
      }
    }
    return nullptr;
  }

  // Block until the whole mapping is durable on its backing file.
  void sync() const {
    ::msync(reinterpret_cast<void*>(base_), bytes_, MS_SYNC);
  }

  MmapHeap(const MmapHeap&) = delete;
  MmapHeap& operator=(const MmapHeap&) = delete;

 private:
  MmapHeap(std::string path, std::uintptr_t base, std::size_t bytes)
      : path_(std::move(path)), base_(base), bytes_(bytes) {}
  ~MmapHeap() = default;

  static MmapHeap*& active_cell() {
    static MmapHeap* h = nullptr;
    return h;
  }

  // Map `fd` at exactly `addr`, or nullptr.  MAP_FIXED_NOREPLACE never
  // clobbers an existing mapping; where the flag is unknown the plain
  // hint is used and a relocated result rejected.
  static void* map_at(int fd, std::uintptr_t addr, std::size_t len) {
    int flags = MAP_SHARED;
#ifdef MAP_FIXED_NOREPLACE
    flags |= MAP_FIXED_NOREPLACE;
#endif
    void* map = ::mmap(reinterpret_cast<void*>(addr), len,
                       PROT_READ | PROT_WRITE, flags, fd, 0);
    if (map == MAP_FAILED) return nullptr;
    if (reinterpret_cast<std::uintptr_t>(map) != addr) {
      ::munmap(map, len);
      return nullptr;
    }
    return map;
  }

  // mem/pool.hpp slab source: carve pool slabs from the arena while a
  // heap is attached (nullptr return falls back to the volatile path).
  static void* carve_slab(std::size_t bytes) {
    MmapHeap* h = active_cell();
    return h != nullptr ? h->alloc(bytes) : nullptr;
  }

  // Non-x86 fence/psync fallback (see persist.hpp).
  static void msync_active() {
    if (MmapHeap* h = active_cell()) h->sync();
  }

  std::string path_;
  std::uintptr_t base_ = 0;
  std::size_t bytes_ = 0;
  std::mutex roots_mu_;
};

}  // namespace repro::pmem
