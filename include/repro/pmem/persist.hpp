// Simulated persistent-memory primitive layer.
//
// The paper's model (Izraelevitz et al. explicit epoch persistency) has
// three instructions: pwb (persist write-back / flush of one cache
// line), pfence (order pwbs against later stores), and psync (block
// until all earlier pwbs are durable).  On emulated NVRAM the real x86
// instructions are executed so that their latency is paid; the paper
// additionally evaluates a private-cache model (persistence
// instructions free) and instruction-count experiments (Figures 1b/1c,
// 5, 6) where only the counts matter.  Mode selects between these three
// behaviours; every call is tallied in thread-local counters either
// way, which is what feeds barriers_per_op / flushes_per_op /
// psyncs_per_op in the harness.
//
// pwb coalescing: two pwbs of the same cache line with no pfence in
// between are redundant — the line's contents persist once, at the
// fence, either way.  This generalises the paper's read-only
// optimisation (which elides provably-redundant persistence work) to
// every duplicate flush in a fence window.  flush() therefore records
// pending lines in a small per-thread buffer and executes the actual
// write-backs at the next fence()/psync(); a duplicate line in the
// window is elided entirely and tallied in Counters::coalesced, so the
// harness can report the elision rate (coalesced_pwb_per_op) next to
// the raw pwb count the figures plot.  Deferral is exact, not
// approximate: the line is flushed at the fence with all stores of the
// window already in cache.  Counters::flushes keeps counting *issued*
// pwbs, so the paper's per-op instruction counts are unchanged.
// Shadow-NVM mode (pmem/shadow.hpp) adds a fourth behaviour: stores to
// persist<T> cells are additionally tracked in a per-line write-log so
// a simulated crash (pmem/crash.hpp) can discard everything a fence
// has not committed.  Instructions execute as in count_only (no real
// clflush), so the shadow-vs-count_only delta in the benches isolates
// the tracking overhead.
// mmap mode (pmem/mmap_heap.hpp) is the file-backed backend: structures
// live in a MAP_SHARED heap file and pwb maps to clwb (clflush on CPUs
// without it) with pfence/psync as sfence, so the durable image a
// killed process leaves in the file is governed by the same
// instructions the paper counts.  On non-x86 hosts the fence mapping
// falls back to msync over the mapped heap (the attach installs the
// hook below).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "repro/pmem/crash.hpp"
#include "repro/pmem/shadow.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace repro::pmem {

// How persistence instructions behave while a benchmark runs.
enum class Mode {
  shared_cache,   // execute real flush + fence instructions (emulated NVRAM)
  private_cache,  // persistence is free: count but do not execute
  count_only,     // deterministic instruction-count experiments
  shadow,         // count_only execution + shadow-NVM write-log tracking
  mmap,           // file-backed heap: clwb+sfence (msync fallback)
};

// Which persistence placement a detectable algorithm uses: the general
// transformation persists conservatively at every step; the hand-tuned
// optimized placement (the paper's "-Opt" series) elides provably
// redundant pwbs/pfences.
enum class PersistProfile { general, optimized };

namespace detail {
inline std::atomic<Mode>& mode_cell() {
  static std::atomic<Mode> m{Mode::shared_cache};
  return m;
}

inline std::atomic<bool>& coalescing_cell() {
  static std::atomic<bool> c{true};
  return c;
}
}  // namespace detail

inline Mode mode() { return detail::mode_cell().load(std::memory_order_relaxed); }
inline void set_mode(Mode m) {
  detail::mode_cell().store(m, std::memory_order_relaxed);
  // Shadow tracking follows the mode, so ModeGuard(Mode::shadow) is
  // the whole switch; callers that need a clean slate (the fuzzer,
  // tests) pair it with shadow::reset().
  shadow::set_enabled(m == Mode::shadow);
}

// Whether duplicate pwbs of one cache line are elided between fences.
// On by default; tests and ablations can switch it off to recover the
// seed's flush-immediately behaviour.
inline bool coalescing() {
  return detail::coalescing_cell().load(std::memory_order_relaxed);
}
inline void set_coalescing(bool on) {
  detail::coalescing_cell().store(on, std::memory_order_relaxed);
}

// Scoped mode switch used by the figure benches.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m) : saved_(mode()) { set_mode(m); }
  ~ModeGuard() { set_mode(saved_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  Mode saved_;
};

// Per-thread tallies of persistence instructions issued.  The harness
// snapshots these around a measured interval and normalises by the
// operation count.
struct Counters {
  std::uint64_t flushes = 0;    // pwb (as issued by the algorithm)
  std::uint64_t fences = 0;     // pfence (the paper's "pbarrier")
  std::uint64_t psyncs = 0;     // psync
  std::uint64_t coalesced = 0;  // pwbs elided by same-line coalescing

  Counters& operator+=(const Counters& o) {
    flushes += o.flushes;
    fences += o.fences;
    psyncs += o.psyncs;
    coalesced += o.coalesced;
    return *this;
  }
  Counters operator-(const Counters& o) const {
    return {flushes - o.flushes, fences - o.fences, psyncs - o.psyncs,
            coalesced - o.coalesced};
  }
};

namespace detail {
inline thread_local Counters tl_counters{};

inline constexpr std::size_t kFlushLineMask = ~std::uintptr_t{63};
inline constexpr std::size_t kFlushBufLines = 8;

// The per-thread coalescing window: cache lines with a pwb pending
// since the last fence.  Membership is tracked in every mode so the
// coalesced tally stays deterministic (Figures 1b/1c style); the
// write-backs themselves only execute in shared_cache mode.
struct FlushBuffer {
  std::uintptr_t lines[kFlushBufLines];
  std::size_t n = 0;
};
inline thread_local FlushBuffer tl_flushbuf{};

#if defined(__x86_64__) || defined(_M_X64)
// clwb keeps the line resident while starting its write-back — the
// right pwb mapping for a live mapped heap, where clflush would evict
// the line a structure is about to CAS again.  Availability is a CPUID
// bit (leaf 7, EBX bit 24); CPUs without it fall back to clflush.
inline bool cpu_has_clwb() {
  static const bool has = [] {
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (__get_cpuid_count(7, 0, &a, &b, &c, &d) == 0) return false;
    return ((b >> 24) & 1u) != 0;
  }();
  return has;
}

inline void clwb_line(std::uintptr_t line) {
  if (cpu_has_clwb()) {
    // clwb (%rax): encoded raw so the TU needs no -mclwb.
    asm volatile(".byte 0x66, 0x0f, 0xae, 0x30"
                 :
                 : "a"(reinterpret_cast<const void*>(line))
                 : "memory");
  } else {
    _mm_clflush(reinterpret_cast<const void*>(line));
  }
}
#endif

// msync fallback for hosts without cache write-back instructions: the
// mmap heap's attach installs a function that msyncs the mapped range,
// and fence()/psync() in mmap mode call it when no x86 sfence exists.
inline std::atomic<void (*)()>& msync_hook_cell() {
  static std::atomic<void (*)()> h{nullptr};
  return h;
}

inline void exec_flush(std::uintptr_t line) {
  const Mode m = mode();
  if (m == Mode::shared_cache) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_clflush(reinterpret_cast<const void*>(line));
#else
    (void)line;
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  } else if (m == Mode::mmap) {
#if defined(__x86_64__) || defined(_M_X64)
    clwb_line(line);
#else
    (void)line;
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
}

// Execute and clear every pending write-back of this thread's window.
inline void drain_flush_buffer() {
  FlushBuffer& b = tl_flushbuf;
  for (std::size_t i = 0; i < b.n; ++i) exec_flush(b.lines[i]);
  b.n = 0;
}
}  // namespace detail

inline Counters counters() { return detail::tl_counters; }
inline void reset_counters() { detail::tl_counters = Counters{}; }

// pwb: write back the cache line holding addr.  clflush is used rather
// than clwb/clflushopt so the binary runs on any x86-64; the cost model
// is pessimistic by a constant factor, which affects absolute
// throughput but not the algorithm ranking the paper reports.  With
// coalescing on, the write-back is deferred to the next fence and
// same-line duplicates in the window are elided.
inline void flush(const void* addr) {
  crash::on_instruction();  // may throw CrashUnwind while a plan is armed
  ++detail::tl_counters.flushes;
  if (shadow::enabled()) shadow::on_pwb(addr);
  const auto line =
      reinterpret_cast<std::uintptr_t>(addr) & detail::kFlushLineMask;
  if (coalescing()) {
    detail::FlushBuffer& b = detail::tl_flushbuf;
    for (std::size_t i = 0; i < b.n; ++i) {
      if (b.lines[i] == line) {
        ++detail::tl_counters.coalesced;  // duplicate in the window
        return;
      }
    }
    if (b.n < detail::kFlushBufLines) {
      b.lines[b.n++] = line;  // deferred to the next fence
      return;
    }
    // Window full: fall through and execute immediately (uncoalesced),
    // matching the seed's behaviour for the overflow.
  }
  detail::exec_flush(line);
}

inline void pwb(const void* addr) { flush(addr); }

// Whether `addr`'s line already has a write-back pending in THIS
// thread's coalescing window — i.e. a pwb this thread issued that its
// next fence will commit.  Lets a caller that needs "this word durable
// after my next fence" (IsbPolicy::expose) skip a redundant pwb
// instead of re-issuing one, keeping the paper's per-op instruction
// counts tight.  Always false with coalescing disabled (the window is
// bypassed), in which case the caller issues the pwb and counts it.
inline bool pwb_pending_mine(const void* addr) {
  const auto line =
      reinterpret_cast<std::uintptr_t>(addr) & detail::kFlushLineMask;
  const detail::FlushBuffer& b = detail::tl_flushbuf;
  for (std::size_t i = 0; i < b.n; ++i) {
    if (b.lines[i] == line) return true;
  }
  return false;
}

// pfence: order preceding pwbs before subsequent stores.  Pending
// coalesced write-backs execute here, at the window boundary.
inline void fence() {
  crash::on_instruction();
  ++detail::tl_counters.fences;
  detail::drain_flush_buffer();
  if (shadow::enabled()) shadow::on_fence();
  const Mode m = mode();
  if (m == Mode::shared_cache || m == Mode::mmap) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_sfence();
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (m == Mode::mmap) {
      if (auto* hook = detail::msync_hook_cell().load(
              std::memory_order_acquire)) {
        hook();
      }
    }
#endif
  }
}

// psync: drain — all earlier pwbs are durable once it returns.
inline void psync() {
  crash::on_instruction();
  ++detail::tl_counters.psyncs;
  detail::drain_flush_buffer();
  if (shadow::enabled()) shadow::on_fence();
  const Mode m = mode();
  if (m == Mode::shared_cache || m == Mode::mmap) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_sfence();
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (m == Mode::mmap) {
      if (auto* hook = detail::msync_hook_cell().load(
              std::memory_order_acquire)) {
        hook();
      }
    }
#endif
  }
}

// Uncounted, un-fuzzed range persistence for heap-internal metadata
// (header fields, root-slot publication, freshly-constructed root
// objects).  Deliberately NOT flush()/fence(): those count toward the
// per-op instruction tallies and toward the crash/kill countdowns, and
// heap bookkeeping must perturb neither — a {seed, kill_point} replay
// must land on the same *algorithm* instruction regardless of how many
// slabs the allocator happened to carve.
inline void persist_range_raw(const void* p, std::size_t bytes) {
  const auto lo =
      reinterpret_cast<std::uintptr_t>(p) & detail::kFlushLineMask;
  const auto hi = reinterpret_cast<std::uintptr_t>(p) + bytes;
#if defined(__x86_64__) || defined(_M_X64)
  for (std::uintptr_t line = lo; line < hi; line += 64) {
    detail::clwb_line(line);
  }
  _mm_sfence();
#else
  (void)lo;
  (void)hi;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (auto* hook =
          detail::msync_hook_cell().load(std::memory_order_acquire)) {
    hook();
  }
#endif
}

// Install/clear the msync fallback (mmap_heap.hpp's attach/detach).
inline void set_msync_hook(void (*hook)()) {
  detail::msync_hook_cell().store(hook, std::memory_order_release);
}

// A word that notionally lives in NVRAM.  Plain load/store/CAS plus
// persisted variants that issue the pwb (and optionally the pfence) the
// algorithms place after durable writes.  In shadow mode every
// mutation is additionally logged in the per-line write-log so a
// simulated crash can rewind the word to its last-committed value;
// construction is not logged (a cell's initial value models state
// durable before the crash plan started).
template <typename T>
class persist {
  static_assert(std::atomic<T>::is_always_lock_free,
                "persist<T> requires a lock-free atomic representation");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "shadow tracking stores one 8-byte word per cell");

 public:
  persist() = default;
  explicit persist(T v) : cell_(v) {}

  T load(std::memory_order mo = std::memory_order_acquire) const {
    return cell_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_release) {
    if (shadow::enabled()) shadow_log();
    cell_.store(v, mo);
  }

  // The defaults publish on success and observe on failure — the
  // strongest ordering any caller in ds/ actually needs; the previous
  // implicit seq_cst on every retry bought nothing.
  bool cas(T& expected, T desired,
           std::memory_order success = std::memory_order_acq_rel,
           std::memory_order failure = std::memory_order_acquire) {
    // Logged before the attempt: a failed CAS dirties nothing new (the
    // baseline captured is the still-current value), and logging after
    // a success would race the crash boundary.
    if (shadow::enabled()) shadow_log();
    return cell_.compare_exchange_strong(expected, desired, success,
                                         failure);
  }

  // Spurious-failure-tolerant variant for retry loops that re-issue the
  // CAS anyway (cheaper than cas on LL/SC architectures).
  bool cas_weak(T& expected, T desired,
                std::memory_order success = std::memory_order_acq_rel,
                std::memory_order failure = std::memory_order_acquire) {
    if (shadow::enabled()) shadow_log();
    return cell_.compare_exchange_weak(expected, desired, success,
                                       failure);
  }

  // Store then immediately write the line back.
  void store_flush(T v) {
    store(v, std::memory_order_release);
    flush(this);
  }
  // Store, write back, and order: the "durable linearization point"
  // idiom used by the general transformation.
  void store_persist(T v) {
    store_flush(v);
    fence();
  }

 private:
  static std::uint64_t to_bits(T v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T from_bits(std::uint64_t bits) {
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }
  static std::uint64_t shadow_load(void* cell) {
    return to_bits(static_cast<std::atomic<T>*>(cell)->load(
        std::memory_order_relaxed));
  }
  static void shadow_store(void* cell, std::uint64_t bits) {
    static_cast<std::atomic<T>*>(cell)->store(
        from_bits(bits), std::memory_order_relaxed);
  }
  void shadow_log() {
    // A store on a powered-off machine must not execute: once the
    // armed crash has fired, every thread's next tracked mutation
    // unwinds (crash::check throws) instead of racing the post-crash
    // verification with new volatile state.  Stores before the crash
    // are logged and proceed.
    crash::check();
    shadow::on_store(&cell_,
                     to_bits(cell_.load(std::memory_order_relaxed)),
                     &persist::shadow_load, &persist::shadow_store);
  }

  std::atomic<T> cell_{};
};

}  // namespace repro::pmem
