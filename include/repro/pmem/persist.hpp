// Simulated persistent-memory primitive layer.
//
// The paper's model (Izraelevitz et al. explicit epoch persistency) has
// three instructions: pwb (persist write-back / flush of one cache line),
// pfence (order pwbs against later stores), and psync (block until all
// earlier pwbs are durable).  On emulated NVRAM the real x86 instructions
// are executed so that their latency is paid; the paper additionally
// evaluates a private-cache model (persistence instructions free) and
// instruction-count experiments (Figures 1b/1c, 5, 6) where only the
// counts matter.  Mode selects between these three behaviours; every
// call is tallied in thread-local counters either way, which is what
// feeds barriers_per_op / flushes_per_op / psyncs_per_op in the harness.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace repro::pmem {

// How persistence instructions behave while a benchmark runs.
enum class Mode {
  shared_cache,   // execute real flush + fence instructions (emulated NVRAM)
  private_cache,  // persistence is free: count but do not execute
  count_only,     // deterministic instruction-count experiments
};

// Which persistence placement a detectable algorithm uses: the general
// transformation persists conservatively at every step; the hand-tuned
// optimized placement (the paper's "-Opt" series) elides provably
// redundant pwbs/pfences.
enum class PersistProfile { general, optimized };

namespace detail {
inline std::atomic<Mode>& mode_cell() {
  static std::atomic<Mode> m{Mode::shared_cache};
  return m;
}
}  // namespace detail

inline Mode mode() { return detail::mode_cell().load(std::memory_order_relaxed); }
inline void set_mode(Mode m) {
  detail::mode_cell().store(m, std::memory_order_relaxed);
}

// Scoped mode switch used by the figure benches.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m) : saved_(mode()) { set_mode(m); }
  ~ModeGuard() { set_mode(saved_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  Mode saved_;
};

// Per-thread tallies of persistence instructions issued.  The harness
// snapshots these around a measured interval and normalises by the
// operation count.
struct Counters {
  std::uint64_t flushes = 0;  // pwb
  std::uint64_t fences = 0;   // pfence (the paper's "pbarrier")
  std::uint64_t psyncs = 0;   // psync

  Counters& operator+=(const Counters& o) {
    flushes += o.flushes;
    fences += o.fences;
    psyncs += o.psyncs;
    return *this;
  }
  Counters operator-(const Counters& o) const {
    return {flushes - o.flushes, fences - o.fences, psyncs - o.psyncs};
  }
};

namespace detail {
inline thread_local Counters tl_counters{};
}  // namespace detail

inline Counters counters() { return detail::tl_counters; }
inline void reset_counters() { detail::tl_counters = Counters{}; }

// pwb: write back the cache line holding addr.  clflush is used rather
// than clwb/clflushopt so the binary runs on any x86-64; the cost model
// is pessimistic by a constant factor, which affects absolute throughput
// but not the algorithm ranking the paper reports.
inline void flush(const void* addr) {
  ++detail::tl_counters.flushes;
  if (mode() == Mode::shared_cache) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_clflush(addr);
#else
    (void)addr;
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
}

inline void pwb(const void* addr) { flush(addr); }

// pfence: order preceding pwbs before subsequent stores.
inline void fence() {
  ++detail::tl_counters.fences;
  if (mode() == Mode::shared_cache) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_sfence();
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
}

// psync: drain — all earlier pwbs are durable once it returns.
inline void psync() {
  ++detail::tl_counters.psyncs;
  if (mode() == Mode::shared_cache) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_sfence();
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
}

// A word that notionally lives in NVRAM.  Plain load/store/CAS plus
// persisted variants that issue the pwb (and optionally the pfence) the
// algorithms place after durable writes.
template <typename T>
class persist {
  static_assert(std::atomic<T>::is_always_lock_free,
                "persist<T> requires a lock-free atomic representation");

 public:
  persist() = default;
  explicit persist(T v) : cell_(v) {}

  T load(std::memory_order mo = std::memory_order_acquire) const {
    return cell_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_release) {
    cell_.store(v, mo);
  }
  bool cas(T& expected, T desired) {
    return cell_.compare_exchange_strong(expected, desired);
  }

  // Store then immediately write the line back.
  void store_flush(T v) {
    cell_.store(v, std::memory_order_release);
    flush(this);
  }
  // Store, write back, and order: the "durable linearization point"
  // idiom used by the general transformation.
  void store_persist(T v) {
    store_flush(v);
    fence();
  }

 private:
  std::atomic<T> cell_{};
};

}  // namespace repro::pmem
