// Hazard-pointer reclamation (Michael '04), the second scheme behind
// the Reclaimer concept.
//
// Where EBR (ebr.hpp) protects *everything reachable* for the duration
// of an epoch pin, hazard pointers protect *named pointers*: each
// thread slot owns a small array of hazard cells, and a traversal
// publishes the node it is about to dereference into one of them
// (Guard::protect), then re-reads the link it came from to validate
// the node was still reachable when the hazard became visible.  A
// retiring thread batches unlinked nodes per slot and, at a threshold,
// scans every slot's hazard cells: batch entries matching no hazard
// are freed, the rest stay parked.  The trade is the classic one —
// bounded garbage (at most kHpScanThreshold + hazards per slot) and no
// dependence on other threads' progress, against two seq_cst stores
// plus a validation re-read per traversal step.
//
// The protect/validate contract the cores implement (harris_core's
// search, msqueue_core's enqueue/dequeue): publish the candidate with
// protect(i, p) — a seq_cst store, so it is ordered before the re-read
// — then re-load the pointer p was read from; on mismatch restart the
// traversal.  If the re-read still returns p, then p was not unlinked
// before the hazard was visible, so any retirer's scan (whose batch
// entries were unlinked strictly before its hazard reads) must observe
// the hazard and keep p parked.  Guards clear their slot's hazards on
// outermost exit; EBR-style pinning-between-ops does not apply (there
// is no epoch to pin).
//
// Interplay with the rest of mem/: cells come from the same NodePool,
// retire goes through the same persist-before-retire flush+fence
// (detail::persist_retired), scans respect the process-wide
// ReclaimPause, and the domain registers the cross-scheme drain/walk
// hooks (pool.hpp) so the final resume_reclaim() flushes HP batches
// and the crash-during-reclaim scenario sees HP-parked cells.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::mem {

// Three hazards cover the deepest traversal in tree: Harris search
// rotates {left, cur, prev} (slots 0/1/2); the MS-queue uses two.
inline constexpr int kHazardsPerSlot = 3;
// Retire-batch size that triggers a scan.  Large enough that the
// O(kMaxThreads * kHazardsPerSlot) hazard sweep amortises to a few
// loads per retire, small enough to bound parked garbage per slot.
inline constexpr std::size_t kHpScanThreshold = 128;

class HpDomain {
 public:
  static HpDomain& instance() {
    static HpDomain d;
    return d;
  }

 private:
  struct Slot;

 public:
  // RAII operation scope.  Unlike the epoch guard there is nothing to
  // announce on entry; the dtor clears the slot's hazards on outermost
  // exit so a completed operation stops blocking anyone's scan.
  class Guard {
   public:
    // Tells the cores to emit the protect/validate re-reads.
    static constexpr bool kHazards = true;

    Guard() : slot_(HpDomain::instance().slots_[ds::thread_slot()]) {
      ++slot_.depth;
    }
    ~Guard() {
      if (--slot_.depth == 0) {
        for (auto& h : slot_.hazard) {
          h.store(nullptr, std::memory_order_release);
        }
      }
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    // Publish p as hazardous in cell i.  seq_cst: the store must be
    // globally visible before the caller's validation re-read, or a
    // concurrent scan could miss both the hazard and the re-read miss
    // the unlink.
    void protect(int i, const void* p) {
      slot_.hazard[i].store(const_cast<void*>(p),
                            std::memory_order_seq_cst);
    }

   private:
    HpDomain::Slot& slot_;
  };

  using Deleter = void (*)(void*);

  // Park an unlinked node on this slot's retire batch; scan when the
  // batch is full (unless a ReclaimPause holds everything frozen — the
  // batch just grows, and the final resume drains it).
  void retire(void* p, Deleter del, std::size_t bytes) {
    Slot& s = slots_[ds::thread_slot()];
    s.batch.push_back({p, del, bytes});
    ++detail::tl_stats.retires;
    if (s.batch.size() >= kHpScanThreshold && !reclaim_paused()) {
      scan(s);
    }
  }

  // Scan-and-free: snapshot every slot's hazards, free batch entries
  // no hazard names, keep the rest parked for the next scan.
  void scan(Slot& s) {
    if (reclaim_paused()) return;
    std::vector<void*>& hz = s.scan_scratch;
    hz.clear();
    for (const Slot& o : slots_) {
      for (const auto& h : o.hazard) {
        if (void* p = h.load(std::memory_order_seq_cst)) {
          hz.push_back(p);
        }
      }
    }
    std::sort(hz.begin(), hz.end());
    std::size_t kept = 0;
    for (Retired& r : s.batch) {
      if (std::binary_search(hz.begin(), hz.end(), r.p)) {
        s.batch[kept++] = r;
      } else {
        r.del(r.p);
        ++detail::tl_stats.reclaims;
      }
    }
    s.batch.resize(kept);
  }

  // Parked (retired, not yet freed) nodes on this thread's batch — the
  // HP analogue of EpochDomain::limbo_size().
  std::size_t batch_size() {
    return slots_[ds::thread_slot()].batch.size();
  }

  // Force a scan of this thread's batch (tests, teardown).  Entries
  // still hazarded by live guards stay parked — safety first.
  void quiesce() { scan(slots_[ds::thread_slot()]); }

  HpDomain(const HpDomain&) = delete;
  HpDomain& operator=(const HpDomain&) = delete;

 private:
  struct Retired {
    void* p;
    Deleter del;
    std::size_t bytes;
  };
  struct alignas(64) Slot {
    Slot() {
      for (auto& h : hazard) h.store(nullptr, std::memory_order_relaxed);
    }
    std::atomic<void*> hazard[kHazardsPerSlot];
    int depth = 0;  // guard nesting (owner thread only)
    std::vector<Retired> batch;
    std::vector<void*> scan_scratch;  // hazard snapshot, reused
  };

  HpDomain() {
    detail::register_reclaimer_hooks(&HpDomain::walk_parked,
                                     &HpDomain::drain_current_slot);
  }

  static void drain_current_slot() {
    HpDomain& d = instance();
    d.scan(d.slots_[ds::thread_slot()]);
  }
  static void walk_parked(void* ctx, detail::ParkedVisitor visit) {
    HpDomain& d = instance();
    for (Slot& s : d.slots_) {
      for (const Retired& r : s.batch) visit(ctx, r.p, r.bytes);
    }
  }

  Slot slots_[ds::kMaxThreads];
};

// Reclaimer facade: pool-backed allocation, hazard-pointer protected
// reclamation.  Same create/destroy/retire surface as EbrReclaimer;
// the cores additionally call Guard::protect at their traversal steps
// because kHazards is true.
struct HpReclaimer {
  using Guard = HpDomain::Guard;

  template <typename T, typename... Args>
  static T* create(Args&&... args) {
    return NodePool<T>::instance().create(std::forward<Args>(args)...);
  }

  template <typename T>
  static void destroy(T* p) {
    NodePool<T>::instance().destroy(p);
  }

  template <typename T>
  static void retire(T* p) {
    detail::persist_retired(p, sizeof(T));
    HpDomain::instance().retire(
        p,
        [](void* q) {
          NodePool<T>::instance().destroy(static_cast<T*>(q));
        },
        sizeof(T));
  }
};

}  // namespace repro::mem
