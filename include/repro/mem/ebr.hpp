// Epoch-based reclamation (EBR) for the lock-free structures.
//
// The classic three-epoch scheme (Fraser '04, the same shape as the
// setbench record managers): a global epoch counter, one announcement
// word per thread slot, and three per-slot limbo lists.  Every
// structure operation runs inside a Guard that announces the current
// epoch; a physically-unlinked node is retired into the limbo list
// tagged with the epoch at retire time, and a list tagged `t` may be
// reclaimed once the global epoch reaches `t + 2` — by then every guard
// that could have observed the node while it was linked has exited.
// Reclaimed cells go back to the retiring thread's NodePool shard
// (pool.hpp), so "freed" nodes are recycled hot instead of leaked.
//
// Grace-period advancement is amortised: every kAdvanceEvery retires a
// thread scans the announcement array (O(kMaxThreads), ~2 loads per
// retire amortised) and CASes the global epoch forward if every pinned
// thread has caught up.  A stalled thread therefore stalls reclamation
// but never safety; limbo growth between advances is bounded by the
// retire rate times the scan interval.
//
// ABA note: recycling node addresses reintroduces the classic CAS ABA
// hazard that the old leak-everything convention side-stepped.  The
// guard discipline closes it again — a cell cannot be handed out anew
// while any thread that might still compare against its old identity is
// pinned, which is exactly the use-after-free argument.
//
// Announcement cost (the DEBRA-style amortisation): publishing an
// announcement needs a store->load barrier (a seq_cst store), and on
// x86 locked operations also order pending clflush write-backs — paying
// that every operation puts DRAM write-back latency on the critical
// path of every single op in the shared-cache model (~20% of
// throughput, measured).  Guards therefore stay *pinned between
// operations*: exit only decrements the nesting depth, and entry
// re-announces (the expensive store) only when the global epoch moved
// or the slot was explicitly released.  The steady-state guard is two
// relaxed loads and a branch.  The trade-off is that an idle pinned
// thread stalls advancement (never safety) until it runs another
// operation, exits, or calls release_pin() — run_threads releases the
// driving thread's pin before each measured interval, and a thread's
// pin is cleared automatically at thread exit.
//
// Memory-order note: re-announcement stores and the epoch counter use
// seq_cst.  The reclaim path then has a full happens-before chain to
// every reader it must wait for: reader's quiescent store -> advance
// scan -> epoch CAS (RMWs form a release sequence) -> retirer's epoch
// load -> deleter run.  This is the canonical published EBR placement.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/mem/pool.hpp"
#include "repro/pmem/persist.hpp"

namespace repro::mem {

namespace detail {
// Persist-before-retire: flush (and fence) a node's lines before the
// node enters any scheme's limbo/retire list.  Once retired, a cell's
// next mutation is its *reinitialisation* by a future owner — if the
// last pre-retire stores were still pending in a write-back queue, a
// crash could rewind the cell to a torn image while a rewound durable
// link still reaches it (the unlink that freed it may itself be among
// the lost write-backs).  Fencing here pins the invariant the
// crash-during-reclaim scenario checks: a parked cell is always
// durably equal to its live contents.  REPRO_MUTATE_DROP_RETIRE_PERSIST
// is the scenario's mutation self-test: building with it elides
// exactly this flush+fence, and the reclaim-crash fuzzer must then
// report a parked cell with unpersisted stores.
inline void persist_retired(const void* p, std::size_t bytes) {
#ifndef REPRO_MUTATE_DROP_RETIRE_PERSIST
  const auto base = reinterpret_cast<std::uintptr_t>(p);
  for (std::uintptr_t a = base & ~std::uintptr_t{kCacheLine - 1};
       a < base + bytes; a += kCacheLine) {
    pmem::flush(reinterpret_cast<const void*>(a));
  }
  pmem::fence();
#else
  (void)p;
  (void)bytes;
#endif
}
}  // namespace detail

inline constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};
inline constexpr int kEpochLists = 3;
inline constexpr int kAdvanceEvery = 64;  // retires between advance scans

class EpochDomain {
 public:
  static EpochDomain& instance() {
    static EpochDomain d;
    return d;
  }

 private:
  struct Slot;

 public:
  // RAII critical section: pins the current epoch for this thread slot.
  // Re-entrant (an operation may nest another guarded operation, e.g.
  // the elimination stack calling into the exchanger).  The pin is NOT
  // dropped on destruction — it persists until the next entry observes
  // a newer epoch, the thread exits, or release_pin() is called — so
  // back-to-back operations pay no barrier (see the header comment).
  class Guard {
   public:
    Guard() : slot_(EpochDomain::instance().slots_[ds::thread_slot()]) {
      if (slot_.depth++ == 0) {
        EpochDomain& d = EpochDomain::instance();
        d.arm_exit_cleanup(slot_);
        const std::uint64_t e = d.epoch_.load(std::memory_order_relaxed);
        if (slot_.announce.load(std::memory_order_relaxed) != e) {
          // Epoch moved (or the slot was quiescent): publish with the
          // full barrier the grace-period argument needs.  A stale
          // relaxed epoch read only delays this refresh; the pin we
          // already hold keeps the old epoch's guarantee meanwhile.
          slot_.announce.store(e, std::memory_order_seq_cst);
        }
      }
    }
    ~Guard() { --slot_.depth; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    // Reclaimer-concept hook (see HpDomain::Guard for the real one):
    // the epoch pin already protects everything reachable, so EBR
    // needs no per-pointer hazards and kHazards == false lets the
    // cores compile out the protect/validate re-reads entirely.
    static constexpr bool kHazards = false;
    void protect(int, const void*) {}

   private:
    EpochDomain::Slot& slot_;
  };

  // Drop this thread's epoch pin (outside any Guard only): advancement
  // no longer waits on this thread until its next operation.  The
  // harness calls this on the driving thread before each measured
  // interval; tests call it (via quiesce()) before forcing grace
  // periods.
  void release_pin() {
    Slot& s = slots_[ds::thread_slot()];
    if (s.depth == 0) {
      s.announce.store(kQuiescent, std::memory_order_seq_cst);
    }
  }

  using Deleter = void (*)(void*);

  // Hand a physically-unlinked node to the reclaimer.  The deleter runs
  // on this thread once the grace period has elapsed (it typically
  // returns the cell to this thread's NodePool shard).  `bytes` is the
  // cell's size, recorded so the crash-during-reclaim walker can check
  // every line the parked node occupies.
  void retire(void* p, Deleter del, std::size_t bytes = kCacheLine) {
    Slot& s = slots_[ds::thread_slot()];
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    Limbo& l = s.limbo[e % kEpochLists];
    if (l.epoch != e) {
      // The list last collected nodes at epoch e - 3 (same index mod
      // 3), which is already two advances stale.  Drain it — unless a
      // ReclaimPause is in force: draining here unconditionally was
      // the pause-bypass bug (a cell could recycle in the middle of
      // crash verification).  The stale items are ripe by construction
      // (their grace period elapsed three advances ago), so they are
      // spliced onto the slot's epoch-free parked list and freed by
      // the first unpaused reclaim_ready — including the final
      // resume_reclaim()'s.
      if (reclaim_paused()) {
        s.parked.insert(s.parked.end(), l.items.begin(), l.items.end());
        l.items.clear();
      } else {
        reclaim(l);
      }
      l.epoch = e;
    }
    l.items.push_back({p, del, bytes});
    ++detail::tl_stats.retires;
    if (++s.retire_ticks >= kAdvanceEvery) {
      s.retire_ticks = 0;
      if (reclaim_paused()) return;  // park in limbo; drained on resume
      try_advance();
      reclaim_ready(s);
    }
  }

  // While paused, retired nodes stay in their limbo lists and no cell
  // is recycled — the crash engine relies on this so a rewound durable
  // link can never resurface as a recycled (re-initialised) node while
  // the post-crash image is being verified.  Pausing affects progress
  // only, never safety; nesting is allowed.
  // The pause depth is process-wide and shared by every reclamation
  // scheme (pool.hpp detail::pause_depth_cell): one ReclaimPause
  // freezes EBR, HP and POP recycling alike.
  bool reclaim_paused() const { return mem::reclaim_paused(); }
  void pause_reclaim() {
    detail::pause_depth_cell().fetch_add(1, std::memory_order_relaxed);
  }
  // Nested resumes only decrement; the *final* resume drains what this
  // thread parked during the pause (retire() defers both the advance
  // scan and reclaim_ready while paused, so without this a fuzz
  // iteration's garbage would sit in limbo until the next iteration's
  // retire tick — and a crash landing inside recover() under a nested
  // pause would leak the chain's whole footprint).  The drain runs
  // through the cross-scheme hook table, so whichever scheme parked
  // garbage during the pause (EBR limbo, HP batches, POP limbo) gets
  // its drain.  Opportunistic: with other threads pinned this reclaims
  // only what their progress allows.
  void resume_reclaim() {
    if (detail::pause_depth_cell().fetch_sub(
            1, std::memory_order_relaxed) == 1) {
      detail::drain_all_schemes();
    }
  }

  // Harness control for the adversarial crash scenarios (per-thread
  // death, stalled workers): force a slot's announcement quiescent so
  // an abandoned pin cannot stall epoch advancement forever.  Only safe
  // when the caller knows the slot's owner is dead or parked outside
  // any structure operation — the crash drivers call it for a lane
  // whose worker unwound via CrashUnwind before a fresh thread adopts
  // the slot.
  void reset_slot_pin(int slot) {
    if (slot < 0 || slot >= ds::kMaxThreads) return;
    slots_[slot].announce.store(kQuiescent, std::memory_order_seq_cst);
  }

  // One amortised advancement step: move the global epoch forward iff
  // every pinned thread has announced it.  Returns true on advance.
  bool try_advance() {
    if (reclaim_paused()) return false;  // epoch frozen under pause
    std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (int i = 0; i < ds::kMaxThreads; ++i) {
      const std::uint64_t a =
          slots_[i].announce.load(std::memory_order_seq_cst);
      if (a != kQuiescent && a != e) return false;
    }
    return epoch_.compare_exchange_strong(e, e + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  // Retired-but-not-yet-reclaimed nodes parked on this thread's slot
  // (limbo lists plus the pause-parked overflow).
  std::size_t limbo_size() {
    const Slot& s = slots_[ds::thread_slot()];
    std::size_t n = s.parked.size();
    for (const Limbo& l : s.limbo) n += l.items.size();
    return n;
  }

  // Drain everything this thread retired whose grace period can be
  // forced to elapse.  Must be called outside any Guard; used by tests
  // and teardown paths.  With other threads pinned this reclaims only
  // what their progress allows — safety never depends on it.
  void quiesce() {
    release_pin();
    for (int i = 0; i < 2 * kEpochLists; ++i) {
      try_advance();
    }
    reclaim_ready(slots_[ds::thread_slot()]);
  }

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

 private:
  struct Retired {
    void* p;
    Deleter del;
    std::size_t bytes;
  };
  struct Limbo {
    std::uint64_t epoch = 0;
    std::vector<Retired> items;
  };
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> announce{kQuiescent};
    int depth = 0;         // guard nesting (owner thread only)
    int retire_ticks = 0;  // retires since the last advance scan
    Limbo limbo[kEpochLists];
    // Already-ripe items displaced from a stale limbo list while a
    // ReclaimPause was in force; freed by the first unpaused
    // reclaim_ready with no grace check (their epoch elapsed before
    // they were parked).
    std::vector<Retired> parked;
  };

  EpochDomain() {
    detail::register_reclaimer_hooks(&EpochDomain::walk_parked,
                                     &EpochDomain::drain_current_slot);
  }

  // Cross-scheme hooks (pool.hpp): the final resume_reclaim drains
  // through these, and the crash-during-reclaim scenario walks every
  // parked cell through them.
  static void drain_current_slot() {
    EpochDomain& d = instance();
    d.try_advance();
    d.reclaim_ready(d.slots_[ds::thread_slot()]);
  }
  static void walk_parked(void* ctx, detail::ParkedVisitor visit) {
    EpochDomain& d = instance();
    for (Slot& s : d.slots_) {
      for (const Limbo& l : s.limbo) {
        for (const Retired& r : l.items) visit(ctx, r.p, r.bytes);
      }
      for (const Retired& r : s.parked) visit(ctx, r.p, r.bytes);
    }
  }

  // A thread that exits while pinned must not stall reclamation
  // forever: a thread_local sentinel clears the announcement on thread
  // exit.  It is (re)armed on guard entry, after ds::thread_slot()'s
  // own thread_local holder, so it runs — and clears the slot — before
  // the slot is released for reuse by another thread.
  void arm_exit_cleanup(Slot& s) {
    struct Cleanup {
      std::atomic<std::uint64_t>* announce = nullptr;
      ~Cleanup() {
        if (announce != nullptr) {
          announce->store(kQuiescent, std::memory_order_seq_cst);
        }
      }
    };
    thread_local Cleanup cleanup;
    cleanup.announce = &s.announce;
  }

  static void reclaim(Limbo& l) {
    for (const Retired& r : l.items) {
      r.del(r.p);
      ++detail::tl_stats.reclaims;
    }
    l.items.clear();
  }

  // Free every limbo list of `s` that is at least two epochs behind,
  // plus anything a pause displaced onto the parked list (ripe by
  // construction — no grace check needed).
  void reclaim_ready(Slot& s) {
    if (reclaim_paused()) return;
    if (!s.parked.empty()) {
      for (const Retired& r : s.parked) {
        r.del(r.p);
        ++detail::tl_stats.reclaims;
      }
      s.parked.clear();
    }
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (Limbo& l : s.limbo) {
      if (!l.items.empty() && l.epoch + 2 <= e) reclaim(l);
    }
  }

  // Epoch 0 is never used as a limbo tag's "stale" sentinel problem:
  // starting at kEpochLists keeps `l.epoch + 2 <= e` exact from the
  // first retire on.
  std::atomic<std::uint64_t> epoch_{kEpochLists};
  Slot slots_[ds::kMaxThreads];
};

// RAII reclaim pause (crash-engine iterations, teardown-sensitive
// tests): retired cells stay intact until the scope ends.
class ReclaimPause {
 public:
  ReclaimPause() { EpochDomain::instance().pause_reclaim(); }
  ~ReclaimPause() { EpochDomain::instance().resume_reclaim(); }
  ReclaimPause(const ReclaimPause&) = delete;
  ReclaimPause& operator=(const ReclaimPause&) = delete;
};

// ---------------------------------------------------------------------
// Reclaimer facades — the template parameter the cores take.
// ---------------------------------------------------------------------

// The production reclaimer: pool-backed allocation, epoch-protected
// reclamation.  Structure operations instantiate `Reclaimer::Guard` for
// their duration; unlinked nodes go through retire<T>() and resurface
// in the owning pool after their grace period.
struct EbrReclaimer {
  using Guard = EpochDomain::Guard;

  template <typename T, typename... Args>
  static T* create(Args&&... args) {
    return NodePool<T>::instance().create(std::forward<Args>(args)...);
  }

  // Immediate destruction: only for nodes that were never published
  // (lost-race allocations, destructor teardown of a quiesced
  // structure).
  template <typename T>
  static void destroy(T* p) {
    NodePool<T>::instance().destroy(p);
  }

  // Deferred destruction for published-then-unlinked nodes.  The
  // cell's lines are made durable *before* it enters limbo
  // (persist-before-retire — see detail::persist_retired), so a
  // rewound durable walk can never dereference a torn reclaimed cell.
  template <typename T>
  static void retire(T* p) {
    detail::persist_retired(p, sizeof(T));
    EpochDomain::instance().retire(
        p,
        [](void* q) {
          NodePool<T>::instance().destroy(static_cast<T*>(q));
        },
        sizeof(T));
  }
};

// The seed's original behaviour, kept as an ablation point: raw `new`
// per node, unlinked nodes leaked.  Registered under the `-leak`
// structure names so the reclamation win is measurable in-tree.
struct LeakReclaimer {
  struct Guard {
    static constexpr bool kHazards = false;
    void protect(int, const void*) {}
  };

  template <typename T, typename... Args>
  static T* create(Args&&... args) {
    ++detail::tl_stats.allocs;
    return new T(std::forward<Args>(args)...);
  }

  template <typename T>
  static void destroy(T* p) {
    delete p;
  }

  template <typename T>
  static void retire(T*) {
    ++detail::tl_stats.retires;  // counted, then leaked (seed semantics)
  }
};

}  // namespace repro::mem
