// Publish-on-ping epoch reclamation (the PPoPP'25 "POP" idea applied
// to the three-epoch scheme in ebr.hpp) — the third scheme behind the
// Reclaimer concept.
//
// EBR's steady-state guard cost is two loads and a branch: one of the
// *global* epoch counter (shared, invalidated on every advance) and
// one of the slot's own announcement.  ebr.hpp's header documents why
// the re-announcement store is expensive (~20% of throughput when paid
// per-op); POP removes the remaining shared-read too.  A POP guard
// never reads the global epoch on entry — it checks only two
// slot-local words: its announcement (is the slot quiescent?) and a
// `ping` flag that *reclaiming* threads set when they find the slot's
// announcement lagging.  Steady state is therefore entirely
// slot-local: no shared-cache-line traffic at all until someone
// actually needs this thread to move.  The asymmetry matches the
// workload — guard entries happen every operation, epoch advances once
// per kAdvanceEvery retires per thread.
//
// Safety is unchanged from EBR: an announcement, once published, is
// refreshed only at guard *entry* (outside any critical section), so a
// lagging announcement is conservative — it holds the epoch back,
// never lets reclamation run early.  try_advance refuses to advance
// past a lagging pinned slot and instead sets its ping; the slot
// re-announces (seq_cst) on its next operation, and the advance
// succeeds on a later scan.  The liveness trade is one extra
// advance-scan round-trip per epoch per lagging thread.
//
// Everything else — three limbo lists per slot, grace = two advances,
// persist-before-retire, the pause-parking fix, the shared
// process-wide ReclaimPause, the cross-scheme drain/walk hooks — is
// deliberately identical to EpochDomain so the matrix benchmarks
// isolate exactly one variable: how the announcement is kept fresh.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::mem {

class PopDomain {
 public:
  static PopDomain& instance() {
    static PopDomain d;
    return d;
  }

 private:
  struct Slot;

 public:
  // RAII operation scope.  Entry re-announces only when the slot is
  // quiescent or has been pinged by a reclaimer — the steady-state
  // path reads two slot-local words and branches, touching no shared
  // line.  Pins persist between operations exactly as in EBR.
  class Guard {
   public:
    Guard() : slot_(PopDomain::instance().slots_[ds::thread_slot()]) {
      if (slot_.depth++ == 0) {
        PopDomain& d = PopDomain::instance();
        d.arm_exit_cleanup(slot_);
        if (slot_.announce.load(std::memory_order_relaxed) ==
                kQuiescent ||
            slot_.ping.load(std::memory_order_relaxed) != 0) {
          slot_.ping.store(0, std::memory_order_relaxed);
          slot_.announce.store(
              d.epoch_.load(std::memory_order_relaxed),
              std::memory_order_seq_cst);
        }
      }
    }
    ~Guard() { --slot_.depth; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    static constexpr bool kHazards = false;
    void protect(int, const void*) {}

   private:
    PopDomain::Slot& slot_;
  };

  void release_pin() {
    Slot& s = slots_[ds::thread_slot()];
    if (s.depth == 0) {
      s.announce.store(kQuiescent, std::memory_order_seq_cst);
    }
  }

  using Deleter = void (*)(void*);

  // Identical shape to EpochDomain::retire, including the pause-parking
  // fix for the stale-limbo drain.
  void retire(void* p, Deleter del, std::size_t bytes = kCacheLine) {
    Slot& s = slots_[ds::thread_slot()];
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    Limbo& l = s.limbo[e % kEpochLists];
    if (l.epoch != e) {
      if (reclaim_paused()) {
        s.parked.insert(s.parked.end(), l.items.begin(), l.items.end());
        l.items.clear();
      } else {
        reclaim(l);
      }
      l.epoch = e;
    }
    l.items.push_back({p, del, bytes});
    ++detail::tl_stats.retires;
    if (++s.retire_ticks >= kAdvanceEvery) {
      s.retire_ticks = 0;
      if (reclaim_paused()) return;
      try_advance();
      reclaim_ready(s);
    }
  }

  bool reclaim_paused() const { return mem::reclaim_paused(); }

  void reset_slot_pin(int slot) {
    if (slot < 0 || slot >= ds::kMaxThreads) return;
    slots_[slot].announce.store(kQuiescent, std::memory_order_seq_cst);
  }

  // One advancement step.  Where EBR's scan just fails on a lagging
  // pinned slot (the slot will notice the moved epoch by itself on its
  // next entry), POP must *tell* the slot to refresh — that is the
  // ping.  The seq_cst ping store orders with the slot's next guard
  // entry; the refresh there re-establishes the same happens-before
  // chain EBR gets from re-reading the global epoch.
  bool try_advance() {
    if (reclaim_paused()) return false;
    std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    bool lagging = false;
    for (int i = 0; i < ds::kMaxThreads; ++i) {
      const std::uint64_t a =
          slots_[i].announce.load(std::memory_order_seq_cst);
      if (a != kQuiescent && a != e) {
        slots_[i].ping.store(1, std::memory_order_seq_cst);
        lagging = true;
      }
    }
    if (lagging) return false;
    return epoch_.compare_exchange_strong(e, e + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  std::size_t limbo_size() {
    const Slot& s = slots_[ds::thread_slot()];
    std::size_t n = s.parked.size();
    for (const Limbo& l : s.limbo) n += l.items.size();
    return n;
  }

  void quiesce() {
    release_pin();
    for (int i = 0; i < 2 * kEpochLists; ++i) {
      try_advance();
    }
    reclaim_ready(slots_[ds::thread_slot()]);
  }

  PopDomain(const PopDomain&) = delete;
  PopDomain& operator=(const PopDomain&) = delete;

 private:
  struct Retired {
    void* p;
    Deleter del;
    std::size_t bytes;
  };
  struct Limbo {
    std::uint64_t epoch = 0;
    std::vector<Retired> items;
  };
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> announce{kQuiescent};
    // Set by try_advance when this slot's announcement lags the epoch;
    // cleared by the slot's next guard entry, which re-announces.
    std::atomic<std::uint8_t> ping{0};
    int depth = 0;
    int retire_ticks = 0;
    Limbo limbo[kEpochLists];
    std::vector<Retired> parked;
  };

  PopDomain() {
    detail::register_reclaimer_hooks(&PopDomain::walk_parked,
                                     &PopDomain::drain_current_slot);
  }

  static void drain_current_slot() {
    PopDomain& d = instance();
    d.try_advance();
    d.reclaim_ready(d.slots_[ds::thread_slot()]);
  }
  static void walk_parked(void* ctx, detail::ParkedVisitor visit) {
    PopDomain& d = instance();
    for (Slot& s : d.slots_) {
      for (const Limbo& l : s.limbo) {
        for (const Retired& r : l.items) visit(ctx, r.p, r.bytes);
      }
      for (const Retired& r : s.parked) visit(ctx, r.p, r.bytes);
    }
  }

  void arm_exit_cleanup(Slot& s) {
    struct Cleanup {
      std::atomic<std::uint64_t>* announce = nullptr;
      ~Cleanup() {
        if (announce != nullptr) {
          announce->store(kQuiescent, std::memory_order_seq_cst);
        }
      }
    };
    thread_local Cleanup cleanup;
    cleanup.announce = &s.announce;
  }

  static void reclaim(Limbo& l) {
    for (const Retired& r : l.items) {
      r.del(r.p);
      ++detail::tl_stats.reclaims;
    }
    l.items.clear();
  }

  void reclaim_ready(Slot& s) {
    if (reclaim_paused()) return;
    if (!s.parked.empty()) {
      for (const Retired& r : s.parked) {
        r.del(r.p);
        ++detail::tl_stats.reclaims;
      }
      s.parked.clear();
    }
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (Limbo& l : s.limbo) {
      if (!l.items.empty() && l.epoch + 2 <= e) reclaim(l);
    }
  }

  std::atomic<std::uint64_t> epoch_{kEpochLists};
  Slot slots_[ds::kMaxThreads];
};

// Reclaimer facade: identical surface to EbrReclaimer, announcement
// kept fresh by pings instead of per-entry epoch reads.
struct PopReclaimer {
  using Guard = PopDomain::Guard;

  template <typename T, typename... Args>
  static T* create(Args&&... args) {
    return NodePool<T>::instance().create(std::forward<Args>(args)...);
  }

  template <typename T>
  static void destroy(T* p) {
    NodePool<T>::instance().destroy(p);
  }

  template <typename T>
  static void retire(T* p) {
    detail::persist_retired(p, sizeof(T));
    PopDomain::instance().retire(
        p,
        [](void* q) {
          NodePool<T>::instance().destroy(static_cast<T*>(q));
        },
        sizeof(T));
  }
};

}  // namespace repro::mem
