// Per-thread segregated node pools.
//
// Every structure in ds/ and baselines/ used to allocate nodes with raw
// `new` on the hot path and leak whatever it unlinked; update-heavy runs
// were therefore bounded by allocator contention and unbounded RSS
// growth rather than by the persistence instructions the paper
// measures.  NodePool<T> replaces that: each thread slot owns a shard
// holding a private free list plus a bump pointer into the current
// slab.  Slabs are cache-line-aligned 64 KiB blocks carved into
// tightly-packed fixed-size cells, so consecutive allocations land on
// the same lines and a list traversal touches a fraction of the cache
// footprint malloc'd nodes would.  Freed cells go back to the freeing
// thread's shard and are handed out again before any slab grows — in
// steady state the structure runs entirely out of recycled nodes
// (reuse_ratio -> 1 in the harness).
//
// Concurrency contract: a shard is touched only by the thread currently
// owning its slot (ds::thread_slot()).  Slot hand-off between threads
// is synchronised by the slot table's acq_rel exchange, so plain
// (non-atomic) shard fields are race-free.  Cross-thread frees do not
// exist: epoch reclamation (ebr.hpp) runs a node's deleter on the
// thread that retired it, and that deleter returns the cell to the
// *running* thread's shard.  Slabs are never returned to the OS while
// the process runs — the pool's RSS is bounded by the high-watermark of
// live nodes, which the EBR grace period keeps O(live structure size).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "repro/ds/detectable.hpp"

namespace repro::mem {

inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kSlabBytes = std::size_t{1} << 16;  // 64 KiB

// Per-thread tallies of memory-subsystem events, snapshotted by the
// harness around a measured interval exactly like pmem::Counters.
struct Stats {
  std::uint64_t allocs = 0;    // pool cells handed out
  std::uint64_t reuses = 0;    // allocs served from a free list
  std::uint64_t retires = 0;   // nodes handed to the reclaimer
  std::uint64_t reclaims = 0;  // retired nodes recycled into a pool

  Stats& operator+=(const Stats& o) {
    allocs += o.allocs;
    reuses += o.reuses;
    retires += o.retires;
    reclaims += o.reclaims;
    return *this;
  }
  Stats operator-(const Stats& o) const {
    return {allocs - o.allocs, reuses - o.reuses, retires - o.retires,
            reclaims - o.reclaims};
  }
};

namespace detail {
inline thread_local Stats tl_stats{};

// Slab source override, installed by pmem::MmapHeap::attach(): when
// non-null, pool slabs are carved from the persistent mapped arena
// instead of the volatile heap, so the node links the structures write
// through persist<> survive a process kill.  A null return (arena
// exhausted) falls back to the volatile path — allocation never fails
// differently because a heap happens to be attached.
inline std::atomic<void* (*)(std::size_t)>& slab_source_cell() {
  static std::atomic<void* (*)(std::size_t)> s{nullptr};
  return s;
}

// Process-wide count of pool cells currently handed out (all pools, all
// node types).  One relaxed RMW per alloc/free; the bounded-RSS test
// asserts this stays O(live keys) under an update-only churn.
inline std::atomic<std::int64_t>& outstanding_cell() {
  static std::atomic<std::int64_t> c{0};
  return c;
}

// Process-wide reclamation pause depth, shared by every reclamation
// scheme (EBR, HP, POP).  While positive, no scheme recycles a retired
// cell — the crash engine relies on one switch freezing all of them,
// whatever reclaimer the structure under test was instantiated with.
inline std::atomic<int>& pause_depth_cell() {
  static std::atomic<int> d{0};
  return d;
}

// Cross-scheme hook table.  Each reclamation domain registers itself
// once (at construction): a drain function the *final* resume runs so
// a fuzz iteration's parked garbage is freed no matter which scheme
// parked it, and a parked-cell walker the crash-during-reclaim
// scenario uses to assert every cell sitting in a limbo/retire list is
// durably clean at crash time.  Slots are claimed by CAS on the walker
// (two domains may first-construct concurrently); both fields are
// plain function pointers so registration needs no allocation.
inline constexpr int kMaxReclaimerSchemes = 4;
using DrainFn = void (*)();
using ParkedVisitor = void (*)(void* ctx, const void* cell,
                               std::size_t bytes);
using ParkedWalkFn = void (*)(void* ctx, ParkedVisitor visit);
struct ReclaimerHooks {
  std::atomic<ParkedWalkFn> walk{nullptr};  // claim marker
  std::atomic<DrainFn> drain{nullptr};
};
inline ReclaimerHooks* reclaimer_hooks() {
  static ReclaimerHooks h[kMaxReclaimerSchemes];
  return h;
}
inline void register_reclaimer_hooks(ParkedWalkFn walk, DrainFn drain) {
  ReclaimerHooks* hs = reclaimer_hooks();
  for (int i = 0; i < kMaxReclaimerSchemes; ++i) {
    ParkedWalkFn expected = nullptr;
    if (hs[i].walk.compare_exchange_strong(expected, walk,
                                           std::memory_order_acq_rel)) {
      hs[i].drain.store(drain, std::memory_order_release);
      return;
    }
  }
}
inline void drain_all_schemes() {
  ReclaimerHooks* hs = reclaimer_hooks();
  for (int i = 0; i < kMaxReclaimerSchemes; ++i) {
    if (DrainFn fn = hs[i].drain.load(std::memory_order_acquire)) fn();
  }
}
}  // namespace detail

// True while any ReclaimPause (any scheme's pause) is in force.
inline bool reclaim_paused() {
  return detail::pause_depth_cell().load(std::memory_order_relaxed) > 0;
}

// Visit every cell currently parked in any scheme's limbo/retire lists
// (all thread slots).  Single-threaded verification use only — the
// crash drivers call it after a simulated crash unwound, with every
// worker dead or parked.
inline void for_each_parked_cell(void* ctx, detail::ParkedVisitor v) {
  detail::ReclaimerHooks* hs = detail::reclaimer_hooks();
  for (int i = 0; i < detail::kMaxReclaimerSchemes; ++i) {
    if (detail::ParkedWalkFn fn =
            hs[i].walk.load(std::memory_order_acquire)) {
      fn(ctx, v);
    }
  }
}

inline Stats stats() { return detail::tl_stats; }
inline void reset_stats() { detail::tl_stats = Stats{}; }

// Live (handed-out, not yet freed) cells across every pool.
inline std::int64_t outstanding_blocks() {
  return detail::outstanding_cell().load(std::memory_order_relaxed);
}

// Install (attach) or clear (detach) the persistent slab source.
inline void set_slab_source(void* (*fn)(std::size_t)) {
  detail::slab_source_cell().store(fn, std::memory_order_release);
}

// Process-wide directory of every pool slab's address range.  The
// crash engine's durable-image walks validate each pointer they are
// about to dereference against it: after a simulated crash a rewound
// link may target memory that was never durably initialised, and
// "some pool's slab" is the strongest claim such a pointer can still
// honour.  Registration is once per 64 KiB slab (cold path); owns() is
// a linear scan over a handful of ranges, only called while verifying
// a crash, never on an operation's hot path.
//
// Slabs need not be malloc'd: ranges carved from a mapped persistent
// heap register through the same add().  A *recovered* process never
// saw the killed writer's per-slab registrations (they died with it),
// so pmem::MmapHeap::attach() re-registers the arena's used extent
// wholesale — without that, every durable walk after a real kill would
// reject the very first mapped node it reached.
//
// The vector is kept sorted by base with adjacent/overlapping extents
// coalesced: consecutive slabs carved from a mapped arena (or a lucky
// allocator run) collapse into one range, and owns() binary-searches.
// Nightly 50k-point fuzz runs register thousands of slabs and every
// durable-walk pointer check pays one lookup — the old append +
// linear-scan form made that O(slabs) per checked pointer.
class SlabDirectory {
 public:
  static SlabDirectory& instance() {
    static SlabDirectory d;
    return d;
  }

  void add(const void* base, std::size_t bytes) {
    const auto lo = reinterpret_cast<std::uintptr_t>(base);
    const auto hi = lo + bytes;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::lower_bound(
        ranges_.begin(), ranges_.end(), lo,
        [](const Range& r, std::uintptr_t v) { return r.lo < v; });
    if (it != ranges_.begin() && (it - 1)->hi >= lo) {
      --it;                        // touches/overlaps predecessor
      if (it->hi >= hi) return;    // already covered
      it->hi = hi;
    } else {
      it = ranges_.insert(it, {lo, hi});
    }
    // Absorb successors the (possibly extended) range now reaches.
    auto next = it + 1;
    while (next != ranges_.end() && next->lo <= it->hi) {
      if (next->hi > it->hi) it->hi = next->hi;
      next = ranges_.erase(next);
    }
  }

  // Whether p points into some registered slab, at line alignment —
  // every pool cell starts on a cache line, so anything unaligned is
  // not a node address.
  bool owns(const void* p) const {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    if ((a & (kCacheLine - 1)) != 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), a,
        [](std::uintptr_t v, const Range& r) { return v < r.lo; });
    if (it == ranges_.begin()) return false;
    return a < (it - 1)->hi;  // a >= (it-1)->lo by the search
  }

  // Coalesced extent count; the adjacency-merge unit test pins it.
  std::size_t range_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ranges_.size();
  }

  SlabDirectory(const SlabDirectory&) = delete;
  SlabDirectory& operator=(const SlabDirectory&) = delete;

 private:
  struct Range {
    std::uintptr_t lo, hi;
  };
  SlabDirectory() = default;
  mutable std::mutex mu_;
  std::vector<Range> ranges_;
};

template <typename T>
class NodePool {
  static_assert(alignof(T) <= kCacheLine,
                "pool slabs are aligned to one cache line");

 public:
  static NodePool& instance() {
    static NodePool p;
    return p;
  }

  // Allocate a cell and construct a T in it.  A throwing constructor
  // returns the cell to the free list instead of leaking it: node
  // constructors issue shadow-logged stores (QueueNode), which unwind
  // with CrashUnwind once a simulated crash has latched — without the
  // rollback every crashed fuzz iteration would leak cells and drift
  // the outstanding-blocks accounting.
  template <typename... Args>
  T* create(Args&&... args) {
    void* cell = alloc_cell();
    ++detail::tl_stats.allocs;
    detail::outstanding_cell().fetch_add(1, std::memory_order_relaxed);
    try {
      return ::new (cell) T(std::forward<Args>(args)...);
    } catch (...) {
      auto* fc = reinterpret_cast<FreeCell*>(cell);
      Shard& sh = shards_[ds::thread_slot()];
      fc->next = sh.free;
      sh.free = fc;
      detail::outstanding_cell().fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
  }

  // Destroy a T and return its cell to the calling thread's free list.
  void destroy(T* p) {
    p->~T();
    auto* cell = reinterpret_cast<FreeCell*>(p);
    Shard& sh = shards_[ds::thread_slot()];
    cell->next = sh.free;
    sh.free = cell;
    detail::outstanding_cell().fetch_sub(1, std::memory_order_relaxed);
  }

  // Slabs allocated so far (monotone; slabs are retained for reuse).
  std::size_t slab_count() {
    std::lock_guard<std::mutex> lock(slabs_mu_);
    return slabs_.size() + mapped_slabs_;
  }

  // Slabs carved from a mapped persistent heap (subset of slab_count).
  std::size_t mapped_slab_count() {
    std::lock_guard<std::mutex> lock(slabs_mu_);
    return mapped_slabs_;
  }

  // Accounting surface for the bounded-RSS / no-waste tests.
  static constexpr std::size_t cell_bytes() { return kCellBytes; }
  static constexpr std::size_t slab_payload_bytes() {
    return kSlabPayload;
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

 private:
  struct FreeCell {
    FreeCell* next;
  };

  // Cell size keeps successive bump allocations correctly aligned and
  // large enough to overlay the free-list link on dead cells.  Cells
  // are padded to a full cache line: the structures pwb the lines their
  // nodes live on, and clflush *evicts* — packing several live nodes
  // per line would make every persisted update evict its neighbours
  // (and false-share their CAS targets).  Line-granular cells are what
  // real PM allocators hand out for exactly this reason.
  static constexpr std::size_t kAlign =
      alignof(T) > alignof(FreeCell) ? alignof(T) : alignof(FreeCell);
  static constexpr std::size_t kPayloadBytes =
      ((sizeof(T) > sizeof(FreeCell) ? sizeof(T) : sizeof(FreeCell)) +
       kAlign - 1) /
      kAlign * kAlign;
  static constexpr std::size_t kCellBytes =
      (kPayloadBytes + kCacheLine - 1) / kCacheLine * kCacheLine;
  static_assert(kCellBytes <= kSlabBytes,
                "node type larger than one pool slab");

  // Slabs are requested as an exact multiple of the cell size.  When
  // kCellBytes does not divide 64 KiB, requesting the full kSlabBytes
  // would strand the tail bytes: the bump window never hands them out
  // (they cannot hold a whole cell) and on the mmap heap the arena's
  // bump allocator never gets them back — a permanent per-slab leak of
  // arena bytes.  Trimming the request leaves them with the allocator
  // that can still use them.
  static constexpr std::size_t kSlabPayload =
      kSlabBytes / kCellBytes * kCellBytes;

  struct alignas(kCacheLine) Shard {
    FreeCell* free = nullptr;    // recycled cells, LIFO (cache-hot first)
    std::byte* bump = nullptr;   // next fresh cell in the current slab
    std::byte* bump_end = nullptr;
  };

  NodePool() = default;

  ~NodePool() {
    // Process exit: return the malloc'd slabs.  Nothing dereferences
    // pool memory during static destruction (structures are all
    // function-scoped and limbo lists only hold pointers, never touch
    // them).  Mapped slabs belong to the heap file, not this pool —
    // operator-deleting one would hand mmap'd pages to the allocator.
    for (void* s : slabs_) {
      ::operator delete(s, std::align_val_t{kCacheLine});
    }
  }

  void* alloc_cell() {
    Shard& sh = shards_[ds::thread_slot()];
    if (sh.free != nullptr) {
      FreeCell* cell = sh.free;
      sh.free = cell->next;
      ++detail::tl_stats.reuses;
      return cell;
    }
    if (static_cast<std::size_t>(sh.bump_end - sh.bump) < kCellBytes) {
      // Salvage the outgoing slab before abandoning it: any whole cell
      // still in the bump window goes to the free list instead of
      // leaking with the slab.  The kSlabPayload trim makes the window
      // an exact multiple of the cell size, so this loop is empty on
      // the trimmed path — it guards extents a source handed out that
      // the trim never saw.
      while (static_cast<std::size_t>(sh.bump_end - sh.bump) >=
             kCellBytes) {
        auto* fc = reinterpret_cast<FreeCell*>(sh.bump);
        sh.bump += kCellBytes;
        fc->next = sh.free;
        sh.free = fc;
      }
      std::byte* slab = nullptr;
      bool mapped = false;
      if (auto* src = detail::slab_source_cell().load(
              std::memory_order_acquire)) {
        slab = static_cast<std::byte*>(src(kSlabPayload));
        mapped = slab != nullptr;
      }
      if (slab == nullptr) {
        slab = static_cast<std::byte*>(
            ::operator new(kSlabPayload, std::align_val_t{kCacheLine}));
      }
      {
        std::lock_guard<std::mutex> lock(slabs_mu_);
        if (mapped) {
          ++mapped_slabs_;
        } else {
          slabs_.push_back(slab);
        }
      }
      SlabDirectory::instance().add(slab, kSlabPayload);
      sh.bump = slab;
      sh.bump_end = slab + kSlabPayload;
    }
    std::byte* cell = sh.bump;
    sh.bump += kCellBytes;
    return cell;
  }

  Shard shards_[ds::kMaxThreads];
  std::mutex slabs_mu_;
  std::vector<void*> slabs_;       // volatile (malloc'd) slabs only
  std::size_t mapped_slabs_ = 0;   // slabs carved from a mapped heap
};

}  // namespace repro::mem
