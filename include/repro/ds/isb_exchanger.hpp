// Recoverable exchanger (Section 6): two threads swap values through a
// single slot.  Each attempt is announced through the shared Detectable
// API; the thread that claims a waiting partner persists the matched
// pair before either side returns, so a recovering thread can tell from
// its descriptor whether its exchange took effect and what it received.
//
// Exchange nodes are owned by their poster: after a node is resolved
// (matched and read, or withdrawn) the poster retires it through the
// epoch reclaimer — a concurrent claimer may still hold the pointer
// inside its own guard, so the grace period covers the hand-off and the
// cell is recycled instead of leaked.
#pragma once

#include <atomic>
#include <cstdint>

#include "repro/ds/detectable.hpp"
#include "repro/ds/policies.hpp"
#include "repro/mem/ebr.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace repro::ds {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#endif
}

template <typename Reclaimer = mem::EbrReclaimer>
class IsbExchangerT {
 public:
  IsbExchangerT() = default;
  IsbExchangerT(const IsbExchangerT&) = delete;
  IsbExchangerT& operator=(const IsbExchangerT&) = delete;

  // Tries for at most `attempts` rounds to pair with another thread;
  // on success returns {true, partner's value}.
  DequeueResult exchange(std::uint64_t value, int attempts) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::exchange,
                    static_cast<std::int64_t>(value),
                    PersistProfile::optimized);
    DequeueResult r{false, 0};
    Node* mine = nullptr;
    for (int i = 0; i < attempts && !r.ok; ++i) {
      Node* cur = slot_.load(std::memory_order_acquire);
      if (cur == nullptr) {
        if (mine == nullptr) {
          mine = Reclaimer::template create<Node>(value);
        }
        Node* expected = nullptr;
        if (!slot_.compare_exchange_strong(expected, mine,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          continue;
        }
        // Posted; wait a bounded while for a partner.
        for (int j = 0; j < attempts; ++j) {
          if (mine->matched.load(std::memory_order_acquire)) break;
          cpu_relax();
        }
        if (mine->matched.load(std::memory_order_acquire)) {
          r = {true, mine->answer.load(std::memory_order_acquire)};
        } else {
          Node* expm = mine;
          if (!slot_.compare_exchange_strong(expm, nullptr,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            // A claimer got there first; the match is imminent.
            while (!mine->matched.load(std::memory_order_acquire)) {
              cpu_relax();
            }
            r = {true, mine->answer.load(std::memory_order_acquire)};
          }
        }
        // Resolved either way (matched or withdrawn): a concurrent
        // claimer may still hold the pointer, so defer the free.
        Reclaimer::template retire<Node>(mine);
        mine = nullptr;
      } else if (slot_.compare_exchange_strong(
                     cur, nullptr, std::memory_order_acq_rel,
                     std::memory_order_acquire)) {
        // Claimed a waiting partner: publish our value to them and
        // persist the matched pair — the exchange's linearization.
        // The poster owns (and will retire) cur.
        cur->answer.store(value, std::memory_order_release);
        cur->matched.store(true, std::memory_order_release);
        pmem::flush(cur);
        pmem::fence();
        r = {true, cur->offered};
      }
      cpu_relax();
    }
    // An allocated-but-never-posted node was seen by no one.
    if (mine != nullptr) Reclaimer::template destroy<Node>(mine);
    op.commit(r.ok, r.value);
    return r;
  }

  Recovered recover(int slot) const { return board_.recover(slot); }

 private:
  struct Node {
    explicit Node(std::uint64_t v) : offered(v) {}
    std::uint64_t offered;
    std::atomic<std::uint64_t> answer{0};
    std::atomic<bool> matched{false};
  };

  std::atomic<Node*> slot_{nullptr};
  AnnouncementBoard board_;
};

using IsbExchanger = IsbExchangerT<>;

}  // namespace repro::ds
