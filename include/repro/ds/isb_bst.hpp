// Recoverable binary search tree (Section 6 feasibility structure).
//
// Internal BST in which the physical shape only grows: a key is
// logically removed by CAS-ing a tombstone flag on its node and revived
// by flipping it back, so every update is a single-word linearization
// point — exactly the shape the tracking transformation wants.  Updates
// announce through the shared Detectable API and persist the one line
// they modified; find() uses the read-only optimization and issues no
// persistence instructions.
//
// Nodes come from the per-thread pool; since the tree never physically
// unlinks, nothing is retired during operations — only lost-race
// allocations are destroyed in place and the destructor returns the
// whole shape to the pool.
#pragma once

#include <atomic>
#include <cstdint>

#include "repro/ds/detectable.hpp"
#include "repro/ds/policies.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::ds {

template <typename Reclaimer = mem::EbrReclaimer>
class IsbBstT {
 public:
  explicit IsbBstT(PersistProfile profile = PersistProfile::general)
      : profile_(profile) {}
  IsbBstT(const IsbBstT&) = delete;
  IsbBstT& operator=(const IsbBstT&) = delete;

  ~IsbBstT() { destroy(root_.load(std::memory_order_relaxed)); }

  bool insert(std::int64_t key) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::insert, key, profile_);
    bool ok;
    while (true) {
      std::atomic<Node*>* link = &root_;
      Node* cur = link->load(std::memory_order_acquire);
      while (cur != nullptr && cur->key != key) {
        link = key < cur->key ? &cur->left : &cur->right;
        cur = link->load(std::memory_order_acquire);
      }
      if (cur != nullptr) {
        // Key node exists: revive it if tombstoned.
        bool dead = true;
        ok = cur->dead.compare_exchange_strong(
            dead, false, std::memory_order_acq_rel,
            std::memory_order_acquire);
        if (ok) persist_update(&cur->dead, cur);
        break;
      }
      Node* node = Reclaimer::template create<Node>(key);
      Node* expected = nullptr;
      if (link->compare_exchange_strong(expected, node,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        persist_update(link, node);
        ok = true;
        break;
      }
      // Lost the race; the node was never published.
      Reclaimer::template destroy<Node>(node);
    }
    op.commit(ok, ok ? 1 : 0);
    return ok;
  }

  bool erase(std::int64_t key) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::erase, key, profile_);
    Node* cur = locate(key);
    bool ok = false;
    if (cur != nullptr) {
      bool dead = false;
      ok = cur->dead.compare_exchange_strong(dead, true,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
      if (ok) persist_update(&cur->dead, nullptr);
    }
    op.commit(ok, ok ? 1 : 0);
    return ok;
  }

  bool find(std::int64_t key) const {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    const Node* cur = locate(key);
    return cur != nullptr && !cur->dead.load(std::memory_order_acquire);
  }

  Recovered recover(int slot) const { return board_.recover(slot); }

 private:
  struct Node {
    explicit Node(std::int64_t k) : key(k) {}
    const std::int64_t key;
    std::atomic<bool> dead{false};
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
  };

  Node* locate(std::int64_t key) const {
    Node* cur = root_.load(std::memory_order_acquire);
    while (cur != nullptr && cur->key != key) {
      cur = (key < cur->key ? cur->left : cur->right)
                .load(std::memory_order_acquire);
    }
    return cur;
  }

  void persist_update(const void* primary, const void* secondary) {
    pmem::flush(primary);
    if (profile_ == PersistProfile::general) {
      if (secondary != nullptr) pmem::flush(secondary);
      pmem::fence();
    }
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.load(std::memory_order_relaxed));
    destroy(n->right.load(std::memory_order_relaxed));
    Reclaimer::template destroy<Node>(n);
  }

  PersistProfile profile_;
  std::atomic<Node*> root_{nullptr};
  AnnouncementBoard board_;
};

using IsbBst = IsbBstT<>;

}  // namespace repro::ds
