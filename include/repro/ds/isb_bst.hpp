// Recoverable binary search tree (Section 6 feasibility structure).
//
// Internal BST in which the physical shape only grows: a key is
// logically removed by CAS-ing a tombstone flag on its node and revived
// by flipping it back, so every update is a single-word linearization
// point — exactly the shape the tracking transformation wants.  Updates
// announce through the shared Detectable API and persist the one line
// they modified; find() uses the read-only optimization and issues no
// persistence instructions.
#pragma once

#include <atomic>
#include <cstdint>

#include "repro/ds/detectable.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

class IsbBst {
 public:
  explicit IsbBst(PersistProfile profile = PersistProfile::general)
      : profile_(profile) {}
  IsbBst(const IsbBst&) = delete;
  IsbBst& operator=(const IsbBst&) = delete;

  ~IsbBst() { destroy(root_.load(std::memory_order_relaxed)); }

  bool insert(std::int64_t key) {
    DetectableOp op(board_, OpKind::insert, key, profile_);
    bool ok;
    while (true) {
      std::atomic<Node*>* link = &root_;
      Node* cur = link->load(std::memory_order_acquire);
      while (cur != nullptr && cur->key != key) {
        link = key < cur->key ? &cur->left : &cur->right;
        cur = link->load(std::memory_order_acquire);
      }
      if (cur != nullptr) {
        // Key node exists: revive it if tombstoned.
        bool dead = true;
        ok = cur->dead.compare_exchange_strong(dead, false);
        if (ok) persist_update(&cur->dead, cur);
        break;
      }
      Node* node = new Node{key};
      Node* expected = nullptr;
      if (link->compare_exchange_strong(expected, node)) {
        persist_update(link, node);
        ok = true;
        break;
      }
      delete node;  // lost the race; retry from the new subtree
    }
    op.commit(ok, ok ? 1 : 0);
    return ok;
  }

  bool erase(std::int64_t key) {
    DetectableOp op(board_, OpKind::erase, key, profile_);
    Node* cur = locate(key);
    bool ok = false;
    if (cur != nullptr) {
      bool dead = false;
      ok = cur->dead.compare_exchange_strong(dead, true);
      if (ok) persist_update(&cur->dead, nullptr);
    }
    op.commit(ok, ok ? 1 : 0);
    return ok;
  }

  bool find(std::int64_t key) const {
    const Node* cur = locate(key);
    return cur != nullptr && !cur->dead.load(std::memory_order_acquire);
  }

  Recovered recover(int slot) const { return board_.recover(slot); }

 private:
  struct Node {
    explicit Node(std::int64_t k) : key(k) {}
    const std::int64_t key;
    std::atomic<bool> dead{false};
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
  };

  Node* locate(std::int64_t key) const {
    Node* cur = root_.load(std::memory_order_acquire);
    while (cur != nullptr && cur->key != key) {
      cur = (key < cur->key ? cur->left : cur->right)
                .load(std::memory_order_acquire);
    }
    return cur;
  }

  void persist_update(const void* primary, const void* secondary) {
    pmem::flush(primary);
    if (profile_ == PersistProfile::general) {
      if (secondary != nullptr) pmem::flush(secondary);
      pmem::fence();
    }
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.load(std::memory_order_relaxed));
    destroy(n->right.load(std::memory_order_relaxed));
    delete n;
  }

  PersistProfile profile_;
  std::atomic<Node*> root_{nullptr};
  AnnouncementBoard board_;
};

}  // namespace repro::ds
