// The shared "detectable operation" API.
//
// Every recoverable structure in ds/ announces each update in a
// per-thread operation descriptor before touching the structure and
// commits its response into the same descriptor afterwards.  After a
// (simulated) crash, recover() reads the descriptor back and tells the
// owning thread whether its last operation took effect and what it
// returned — the paper's definition of detectable recovery.  Keeping
// announce/commit/recover here means IsbList, IsbQueue, DtList, the
// BST, the skiplist, the stack and the exchanger all share one
// implementation of the recovery protocol instead of re-deriving it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "repro/pmem/persist.hpp"

namespace repro::ds {

using pmem::PersistProfile;

// Unified queue/stack response: `ok` is false when the container was
// observed empty.  Every queue in ds/ and baselines/ returns this from
// dequeue(), including the volatile MS-queue baseline.
struct DequeueResult {
  bool ok = false;
  std::uint64_t value = 0;
};

enum class OpKind : std::uint64_t {
  none = 0,
  insert,
  erase,
  find,
  enqueue,
  dequeue,
  push,
  pop,
  exchange,
};

enum class OpStatus : std::uint64_t { idle = 0, pending, done };

// Fixed upper bound on concurrently announcing threads; descriptors are
// indexed by a process-wide thread slot.  Slots are recycled when a
// thread exits, so any number of threads may run over a process's
// lifetime — but more than kMaxThreads *live* at once is a hard error
// (two live threads sharing a descriptor would corrupt recovery state
// silently).
inline constexpr int kMaxThreads = 128;

namespace detail {
inline std::atomic<bool>* slot_table() {
  static std::atomic<bool> used[kMaxThreads];
  return used;
}
}  // namespace detail

inline int thread_slot() {
  struct Holder {
    int id;
    Holder() : id(-1) {
      std::atomic<bool>* used = detail::slot_table();
      for (int i = 0; i < kMaxThreads; ++i) {
        if (!used[i].exchange(true, std::memory_order_acq_rel)) {
          id = i;
          return;
        }
      }
      std::fprintf(stderr,
                   "repro: more than %d concurrent threads announcing "
                   "operations\n",
                   kMaxThreads);
      std::abort();
    }
    ~Holder() {
      detail::slot_table()[id].store(false, std::memory_order_release);
    }
  };
  thread_local const Holder holder;
  return holder.id;
}

// One cache line of notionally-persistent announcement state per
// thread.  The response is two separate words (ok + result) so the
// full 64-bit value space survives recovery intact.
struct alignas(64) OpDesc {
  pmem::persist<std::uint64_t> seq{0};     // per-thread operation counter
  pmem::persist<std::uint64_t> kind{0};    // OpKind
  pmem::persist<std::int64_t> key{0};      // operand (key / value)
  pmem::persist<std::uint64_t> status{0};  // OpStatus
  pmem::persist<std::uint64_t> ok{0};      // committed success flag
  pmem::persist<std::uint64_t> result{0};  // committed response value
};

// What a recovering thread learns from its descriptor.
struct Recovered {
  std::uint64_t seq = 0;
  OpKind kind = OpKind::none;
  std::int64_t key = 0;
  bool completed = false;      // commit reached the descriptor
  bool ok = false;             // operation's boolean response
  std::uint64_t result = 0;    // operation's value (valid when completed)
};

// The per-structure array of descriptors (the paper's Info structures).
class AnnouncementBoard {
 public:
  OpDesc& mine() { return slots_[thread_slot()]; }
  const OpDesc& slot(int i) const { return slots_[i]; }

  Recovered recover(int slot) const {
    const OpDesc& d = slots_[slot];
    Recovered r;
    r.seq = d.seq.load();
    r.kind = static_cast<OpKind>(d.kind.load());
    r.key = d.key.load();
    r.completed =
        static_cast<OpStatus>(d.status.load()) == OpStatus::done;
    r.ok = d.ok.load() != 0;
    r.result = d.result.load();
    return r;
  }

 private:
  OpDesc slots_[kMaxThreads];
};

// RAII announce/commit for one detectable operation.
//
// Persistence placement by profile (this is the Isb vs Isb-Opt split the
// figures plot):
//   general   — the announcement itself is flushed and fenced before the
//               structure is touched, and the commit is flushed and
//               fenced before the final psync: 2 pwb + 2 pfence + 1
//               psync of descriptor traffic per operation.
//   optimized — the announcement write stays in the store buffer (a
//               crash before the structure's durable CAS makes the op a
//               no-op either way, so persisting it early is redundant);
//               only the commit is flushed, with a leading pfence that
//               orders the structure's pending write-backs before the
//               "done" record: 1 pwb + 2 pfence + 1 psync.
//
// Structure-specific pwbs (the modified link, the new node) are issued
// by the caller between announce and commit.
class DetectableOp {
 public:
  DetectableOp(AnnouncementBoard& board, OpKind kind, std::int64_t key,
               PersistProfile profile, bool persist_this_op = true)
      : d_(board.mine()), profile_(profile), persisted_(persist_this_op) {
    d_.seq.store(d_.seq.load(std::memory_order_relaxed) + 1);
    d_.kind.store(static_cast<std::uint64_t>(kind));
    d_.key.store(key);
    d_.status.store(static_cast<std::uint64_t>(OpStatus::pending));
    if (persisted_ && profile_ == PersistProfile::general) {
      pmem::flush(&d_);
      pmem::fence();
    }
  }

  // Record the response and make the whole operation durable.  The
  // effect must be durable before the "done" record is: the general
  // profile got that ordering from the pfence its policy issues after
  // every structural update, but the optimized placement leaves the
  // structure's pwbs pending, so an adversarial crash (shadow-NVM
  // mode, unordered write-backs) could persist the response while
  // losing the effect — a detectability violation the crash fuzzer
  // finds immediately.  The leading pfence closes that window.
  void commit(bool ok, std::uint64_t result) {
    if (persisted_ && profile_ == PersistProfile::optimized) {
      pmem::fence();
    }
#ifdef REPRO_MUTATE_DROP_MSYNC
    // Mutation self-test for the fork-kill harness (killfuzz.hpp): in
    // the mmap backend the commit's pwb/pfence/psync mapping is what
    // orders the response words before the durable "done" record.
    // Eliding that mapping permits the write-back carrying `done` to
    // reach the file ahead of the response; a real SIGKILL cannot
    // reorder a single thread's stores, so the mutated build emulates
    // the permitted reorder explicitly — status first, then a
    // persistence boundary (where an armed kill lands), then the
    // response.  A kill in that window leaves a descriptor that
    // durably says done with a stale response, which the kill
    // verifier must flag.
    if (pmem::mode() == pmem::Mode::mmap) {
      d_.status.store(static_cast<std::uint64_t>(OpStatus::done));
      if (persisted_) {
        pmem::flush(&d_);
        pmem::psync();
      }
      d_.ok.store(ok ? 1 : 0);
      d_.result.store(result);
      if (persisted_) pmem::fence();
      committed_ = true;
      return;
    }
#endif
    d_.ok.store(ok ? 1 : 0);
    d_.result.store(result);
    d_.status.store(static_cast<std::uint64_t>(OpStatus::done));
    if (persisted_) {
      pmem::flush(&d_);
      pmem::fence();
      pmem::psync();
    }
    committed_ = true;
  }

  // An uncommitted descriptor left behind models a crash mid-operation;
  // recover() will report it as not completed.
  ~DetectableOp() = default;

  DetectableOp(const DetectableOp&) = delete;
  DetectableOp& operator=(const DetectableOp&) = delete;

  bool committed() const { return committed_; }

 private:
  OpDesc& d_;
  PersistProfile profile_;
  bool persisted_;
  bool committed_ = false;
};

// No-op persistence policy: instantiating a core with it yields the
// original volatile structure (the Harris-LL / MS-Queue baselines).
struct NullPolicy {
  void op_start(OpKind, std::int64_t, bool) {}
  void visit(const void*, bool) {}
  void pre_publish(const void*) {}
  void pre_cas(const void*) {}
  void post_update(const void*, const void*) {}
  // A durable word is about to become reachable through a shared hot
  // pointer (the queue's tail swing): tracking policies must make it
  // durable *now*, or effects other threads durably commit on top of
  // it are orphaned by a crash (see MsQueueCore::enqueue).
  void expose(const void*) {}
  void op_end(bool, std::uint64_t, bool) {}
};

}  // namespace repro::ds
