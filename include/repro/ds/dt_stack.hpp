// Recoverable Treiber stack with optional elimination (Section 6's
// direct-tracking elimination stack).  Every push/pop announces through
// the Detectable API and persists the top-of-stack line it modifies.
// With Config::elimination, a contended CAS retries through a
// recoverable exchanger instead: a push offering its value can cancel
// against a pop, and both complete without touching the stack.
//
// Popped nodes are leaked; node addresses are therefore never reused
// and the classic Treiber ABA hazard does not arise.
#pragma once

#include <atomic>
#include <cstdint>

#include "repro/ds/detectable.hpp"
#include "repro/ds/isb_exchanger.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

class DtStack {
 public:
  struct Config {
    bool elimination = false;
  };

  DtStack() = default;
  explicit DtStack(Config c) : cfg_(c) {}
  DtStack(const DtStack&) = delete;
  DtStack& operator=(const DtStack&) = delete;

  ~DtStack() {
    Node* n = top_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nx = n->next;
      delete n;
      n = nx;
    }
  }

  void push(std::uint64_t value) {
    DetectableOp op(board_, OpKind::push,
                    static_cast<std::int64_t>(value),
                    PersistProfile::general);
    Node* node = new Node{value, nullptr};
    while (true) {
      Node* old = top_.load(std::memory_order_acquire);
      node->next = old;
      if (top_.compare_exchange_strong(old, node)) {
        pmem::flush(&top_);
        pmem::fence();
        break;
      }
      if (cfg_.elimination) {
        // Contended: offer the value to a concurrent pop.
        ElimOp* offer = new ElimOp{true, value};
        const auto ex =
            exchanger_.exchange(reinterpret_cast<std::uint64_t>(offer),
                                kElimSpin);
        if (ex.ok && !reinterpret_cast<ElimOp*>(ex.value)->is_push) {
          delete node;  // a pop consumed the value directly
          break;
        }
      }
    }
    op.commit(true, value);
  }

  DequeueResult pop() {
    DetectableOp op(board_, OpKind::pop, 0, PersistProfile::general);
    DequeueResult r{false, 0};
    while (true) {
      Node* old = top_.load(std::memory_order_acquire);
      if (old == nullptr) break;  // observed empty
      if (top_.compare_exchange_strong(old, old->next)) {
        pmem::flush(&top_);
        pmem::fence();
        r = {true, old->value};
        break;
      }
      if (cfg_.elimination) {
        ElimOp* offer = new ElimOp{false, 0};
        const auto ex =
            exchanger_.exchange(reinterpret_cast<std::uint64_t>(offer),
                                kElimSpin);
        if (ex.ok) {
          const ElimOp* other = reinterpret_cast<ElimOp*>(ex.value);
          if (other->is_push) {
            r = {true, other->value};
            break;
          }
        }
      }
    }
    op.commit(r.ok, r.value);
    return r;
  }

  Recovered recover(int slot) const { return board_.recover(slot); }

 private:
  struct Node {
    std::uint64_t value;
    Node* next;  // immutable once the node is linked
  };

  // Elimination protocol: both sides exchange pointers to an ElimOp
  // descriptor (never a raw value, so the full 64-bit value space is
  // preserved); a pairing only cancels when a push meets a pop.  The
  // descriptors are leaked like every other published node.
  struct ElimOp {
    bool is_push;
    std::uint64_t value;
  };
  static constexpr int kElimSpin = 64;

  Config cfg_;
  std::atomic<Node*> top_{nullptr};
  AnnouncementBoard board_;
  IsbExchanger exchanger_;
};

}  // namespace repro::ds
