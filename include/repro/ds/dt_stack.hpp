// Recoverable Treiber stack with optional elimination (Section 6's
// direct-tracking elimination stack).  Every push/pop announces through
// the Detectable API and persists the top-of-stack line it modifies.
// With Config::elimination, a contended CAS retries through a
// recoverable exchanger instead: a push offering its value can cancel
// against a pop, and both complete without touching the stack.
//
// Popped nodes are retired through the epoch reclaimer and recycled
// into the pool.  The classic Treiber ABA hazard that address reuse
// would reintroduce is closed by the epoch guard around each operation:
// a node's cell cannot be handed out again while any thread that read
// its old identity is still pinned.  Elimination descriptors are
// likewise retired (never destroyed in place) because the partner
// dereferences them inside its own guard.
#pragma once

#include <atomic>
#include <cstdint>

#include "repro/ds/detectable.hpp"
#include "repro/ds/isb_exchanger.hpp"
#include "repro/ds/policies.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::ds {

template <typename Reclaimer = mem::EbrReclaimer>
class DtStackT {
 public:
  struct Config {
    bool elimination = false;
  };

  DtStackT() = default;
  explicit DtStackT(Config c) : cfg_(c) {}
  DtStackT(const DtStackT&) = delete;
  DtStackT& operator=(const DtStackT&) = delete;

  ~DtStackT() {
    Node* n = top_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nx = n->next;
      Reclaimer::template destroy<Node>(n);
      n = nx;
    }
  }

  void push(std::uint64_t value) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::push,
                    static_cast<std::int64_t>(value),
                    PersistProfile::general);
    Node* node = Reclaimer::template create<Node>(value, nullptr);
    while (true) {
      Node* old = top_.load(std::memory_order_acquire);
      node->next = old;
      if (top_.compare_exchange_strong(old, node,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        pmem::flush(&top_);
        pmem::fence();
        break;
      }
      if (cfg_.elimination) {
        // Contended: offer the value to a concurrent pop.
        ElimOp* offer = Reclaimer::template create<ElimOp>(true, value);
        const auto ex =
            exchanger_.exchange(reinterpret_cast<std::uint64_t>(offer),
                                kElimSpin);
        const bool eliminated =
            ex.ok && !reinterpret_cast<ElimOp*>(ex.value)->is_push;
        if (ex.ok) {
          // A partner holds the pointer and may still be reading it
          // inside its guard: defer the free past the grace period.
          Reclaimer::template retire<ElimOp>(offer);
        } else {
          Reclaimer::template destroy<ElimOp>(offer);  // never seen
        }
        if (eliminated) {
          Reclaimer::template destroy<Node>(node);  // pop took the value
          break;
        }
      }
    }
    op.commit(true, value);
  }

  DequeueResult pop() {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::pop, 0, PersistProfile::general);
    DequeueResult r{false, 0};
    while (true) {
      Node* old = top_.load(std::memory_order_acquire);
      if (old == nullptr) break;  // observed empty
      if (top_.compare_exchange_strong(old, old->next,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        pmem::flush(&top_);
        pmem::fence();
        r = {true, old->value};
        // This CAS (uniquely) unlinked old: retire it for recycling.
        Reclaimer::template retire<Node>(old);
        break;
      }
      if (cfg_.elimination) {
        ElimOp* offer = Reclaimer::template create<ElimOp>(false, 0);
        const auto ex =
            exchanger_.exchange(reinterpret_cast<std::uint64_t>(offer),
                                kElimSpin);
        if (ex.ok) {
          const ElimOp* other = reinterpret_cast<ElimOp*>(ex.value);
          const bool matched_push = other->is_push;
          const std::uint64_t v = other->value;
          Reclaimer::template retire<ElimOp>(offer);
          if (matched_push) {
            r = {true, v};
            break;
          }
        } else {
          Reclaimer::template destroy<ElimOp>(offer);
        }
      }
    }
    op.commit(r.ok, r.value);
    return r;
  }

  Recovered recover(int slot) const { return board_.recover(slot); }

 private:
  struct Node {
    Node(std::uint64_t v, Node* n) : value(v), next(n) {}
    std::uint64_t value;
    Node* next;  // immutable once the node is linked
  };

  // Elimination protocol: both sides exchange pointers to an ElimOp
  // descriptor (never a raw value, so the full 64-bit value space is
  // preserved); a pairing only cancels when a push meets a pop.
  struct ElimOp {
    ElimOp(bool p, std::uint64_t v) : is_push(p), value(v) {}
    bool is_push;
    std::uint64_t value;
  };
  static constexpr int kElimSpin = 64;

  Config cfg_;
  std::atomic<Node*> top_{nullptr};
  AnnouncementBoard board_;
  IsbExchangerT<Reclaimer> exchanger_;
};

using DtStack = DtStackT<>;

}  // namespace repro::ds
