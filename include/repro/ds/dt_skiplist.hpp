// Recoverable skiplist under direct tracking (Section 6 feasibility
// structure).  Same tombstone scheme as the BST — towers are only ever
// added, membership is the tombstone flag, and erase/revive are
// single-word CASes — layered over a standard lock-free skiplist
// insert: the bottom-level link CAS linearizes a new key, upper levels
// are linked best-effort.  In the direct-tracking style, traversals
// persist every tombstoned node they cross, and every update persists
// the link or flag it wrote plus its descriptor.
//
// Towers come from the per-thread pool; the structure never physically
// unlinks, so only lost-race allocations are destroyed during
// operations and the destructor returns the whole shape to the pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "repro/ds/detectable.hpp"
#include "repro/ds/policies.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::ds {

template <typename Reclaimer = mem::EbrReclaimer>
class DtSkipListT {
 public:
  DtSkipListT() {
    head_ = Reclaimer::template create<Node>(
        std::numeric_limits<std::int64_t>::min(), kMaxLevel - 1);
    tail_ = Reclaimer::template create<Node>(
        std::numeric_limits<std::int64_t>::max(), kMaxLevel - 1);
    for (int i = 0; i < kMaxLevel; ++i) {
      head_->next[i].store(tail_, std::memory_order_relaxed);
    }
  }
  DtSkipListT(const DtSkipListT&) = delete;
  DtSkipListT& operator=(const DtSkipListT&) = delete;

  ~DtSkipListT() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0].load(std::memory_order_relaxed);
      Reclaimer::template destroy<Node>(n);
      n = nx;  // tail's next is nullptr, ending the walk
    }
  }

  bool insert(std::int64_t key) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::insert, key,
                    PersistProfile::general);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    bool ok;
    while (true) {
      Node* found = search(key, preds, succs);
      if (found != nullptr) {
        bool dead = true;
        ok = found->dead.compare_exchange_strong(
            dead, false, std::memory_order_acq_rel,
            std::memory_order_acquire);
        if (ok) persist_word(&found->dead);
        break;
      }
      if (succs[0] != tail_ && succs[0]->key == key) {
        ok = false;  // live duplicate
        break;
      }
      const int top = random_level();
      Node* node = Reclaimer::template create<Node>(key, top);
      node->next[0].store(succs[0], std::memory_order_relaxed);
      Node* expected = succs[0];
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, node, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        // Bottom-level race; the node was never published.
        Reclaimer::template destroy<Node>(node);
        continue;  // retry from a fresh search
      }
      persist_word(&preds[0]->next[0]);
      // Best-effort tower: a failed CAS just re-searches for fresh
      // preds/succs; the key is already linearized at level 0.
      for (int lvl = 1; lvl <= top; ++lvl) {
        while (true) {
          node->next[lvl].store(succs[lvl], std::memory_order_relaxed);
          Node* exp = succs[lvl];
          if (preds[lvl]->next[lvl].compare_exchange_strong(
                  exp, node, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            break;
          }
          search(key, preds, succs);
        }
      }
      ok = true;
      break;
    }
    op.commit(ok, ok ? 1 : 0);
    return ok;
  }

  bool erase(std::int64_t key) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    DetectableOp op(board_, OpKind::erase, key, PersistProfile::general);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    search(key, preds, succs);
    bool ok = false;
    Node* cur = succs[0];
    if (cur != tail_ && cur->key == key) {
      bool dead = false;
      ok = cur->dead.compare_exchange_strong(dead, true,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
      if (ok) persist_word(&cur->dead);
    }
    op.commit(ok, ok ? 1 : 0);
    return ok;
  }

  bool find(std::int64_t key) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    search(key, preds, succs);
    Node* cur = succs[0];
    return cur != tail_ && cur->key == key &&
           !cur->dead.load(std::memory_order_acquire);
  }

  Recovered recover(int slot) const { return board_.recover(slot); }

 private:
  static constexpr int kMaxLevel = 16;

  struct Node {
    Node(std::int64_t k, int t) : key(k), top(t) {
      for (int i = 0; i < kMaxLevel; ++i) {
        next[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    const std::int64_t key;
    const int top;
    std::atomic<bool> dead{false};
    std::atomic<Node*> next[kMaxLevel];
  };

  // Fills preds/succs at every level; returns the node matching `key`
  // if it exists and is tombstoned (insert revives it in place), else
  // nullptr.  succs[0] is the first node with key >= `key`.
  Node* search(std::int64_t key, Node** preds, Node** succs) {
    Node* pred = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      Node* cur = pred->next[lvl].load(std::memory_order_acquire);
      while (cur != tail_ && cur->key < key) {
        if (cur->dead.load(std::memory_order_acquire)) {
          // Direct tracking: persist tombstoned nodes we cross.
          pmem::flush(cur);
          pmem::fence();
        }
        pred = cur;
        cur = pred->next[lvl].load(std::memory_order_acquire);
      }
      preds[lvl] = pred;
      succs[lvl] = cur;
    }
    Node* cand = succs[0];
    if (cand != tail_ && cand->key == key &&
        cand->dead.load(std::memory_order_acquire)) {
      return cand;
    }
    return nullptr;
  }

  void persist_word(const void* addr) {
    pmem::flush(addr);
    pmem::fence();
  }

  static int random_level() {
    thread_local std::uint64_t state =
        0x9E3779B97F4A7C15ull * (thread_slot() + 1);
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    int lvl = 0;
    while ((state >> lvl & 1) != 0 && lvl < kMaxLevel - 1) ++lvl;
    return lvl;
  }

  Node* head_;
  Node* tail_;
  AnnouncementBoard board_;
};

using DtSkipList = DtSkipListT<>;

}  // namespace repro::ds
