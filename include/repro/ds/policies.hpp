// Persistence policies: the detectable-recovery transformations the
// paper compares, expressed against the hook concept defined in
// harris_core.hpp / msqueue_core.hpp.  Each policy decides where
// pwb/pfence/psync are issued and what per-thread recovery metadata is
// maintained; the list and queue cores supply the traversal/CAS logic.
//
//   IsbPolicy      — the paper's tracking approach: one announcement
//                    descriptor per thread (detectable.hpp), a constant
//                    number of persistence instructions per operation,
//                    and the Algorithm-2 read-only optimization.
//   DtPolicy       — direct tracking: like ISB but additionally
//                    persists every logically-deleted node the search
//                    traverses, so its barrier count grows with update
//                    concurrency.
//   CapsulesPolicy — the capsules transformation (Ben-David et al.):
//                    execution is chopped into persistent continuation
//                    capsules; the general variant checkpoints at every
//                    shared read, the optimized variant only at helping
//                    points and CASes, and the normalized variant pays
//                    the extra capsule boundaries of the normalized
//                    three-phase form.
//   LogPolicy      — per-thread operation log (the log-queue baseline):
//                    an intent record is persisted before the operation
//                    and completed after it.
#pragma once

#include <cstdint>
#include <optional>

#include "repro/ds/detectable.hpp"

namespace repro::ds {

class IsbPolicy {
 public:
  struct Options {
    PersistProfile profile = PersistProfile::general;
    bool read_only_opt = true;
  };

  IsbPolicy() = default;
  explicit IsbPolicy(Options o) : opt_(o) {}

  void op_start(OpKind kind, std::int64_t key, bool read_only) {
    PerThread& t = tls_[thread_slot()];
    t.read_only = read_only;
    // Algorithm 2: a read-only operation that finds the structure
    // unchanged needs no durable trace at all.
    const bool persist_op = !(read_only && opt_.read_only_opt);
    t.op.emplace(board_, kind, key, opt_.profile, persist_op);
  }

  void visit(const void*, bool) {}
  void pre_cas(const void*) {}

  // A freshly initialised node is about to be published by a CAS: its
  // contents must be durable before any durable pointer to it exists,
  // or a crash could leave a link into never-persisted memory.  Both
  // profiles pay the pwb+pfence here — it is not one of the redundant
  // instructions the optimized placement may elide.
  void pre_publish(const void* node) {
    const PerThread& t = tls_[thread_slot()];
    if (t.read_only && opt_.read_only_opt) return;
    pmem::flush(node);
    pmem::fence();
  }

  void post_update(const void* primary, const void*) {
    const PerThread& t = tls_[thread_slot()];
    if (t.read_only && opt_.read_only_opt) return;  // helping during a read
    pmem::flush(primary);
    if (opt_.profile == PersistProfile::general) {
      // The general transformation orders every written line
      // immediately; the tuned placement coalesces the link's
      // write-back into the commit's ordering fence.
      pmem::fence();
    }
  }

  // The link behind a tail swing must be durable before any thread
  // can build on it: the concurrent crash fuzzer caught the torn
  // durable chain a pending write-back leaves behind (an in-flight
  // enqueuer's link lost while every later thread's fenced effects
  // hang off it, durably unreachable).  On the success path
  // post_update just pwb'd the word, so only the ordering fence is
  // owed (+1 pfence per enqueue); on the helping path — a stalled
  // enqueuer's link, observed but never ours to pwb — the full
  // pwb+pfence fires, and only under contention.
  void expose(const void* addr) {
    if (!pmem::pwb_pending_mine(addr)) pmem::flush(addr);
    pmem::fence();
  }

  void op_end(bool ok, std::uint64_t result, bool) {
    PerThread& t = tls_[thread_slot()];
    if (t.op) {
      t.op->commit(ok, result);
      t.op.reset();
    }
  }

  AnnouncementBoard& board() { return board_; }
  const AnnouncementBoard& board() const { return board_; }

 private:
  struct alignas(64) PerThread {
    bool read_only = false;
    std::optional<DetectableOp> op;
  };

  Options opt_;
  AnnouncementBoard board_;
  PerThread tls_[kMaxThreads];
};

class DtPolicy {
 public:
  DtPolicy() = default;
  explicit DtPolicy(PersistProfile profile) : profile_(profile) {}

  void op_start(OpKind kind, std::int64_t key, bool) {
    tls_[thread_slot()].op.emplace(board_, kind, key, profile_);
  }

  // Direct tracking persists every logically-deleted node it reads so
  // that recovery can replay the helping it may have performed: one
  // pwb+pfence per marked node traversed.  This is the term that grows
  // with update concurrency in Figures 1b/1c.
  void visit(const void* node, bool marked) {
    if (marked) {
      pmem::flush(node);
      pmem::fence();
    }
  }

  void pre_cas(const void*) {}

  // See IsbPolicy::pre_publish: node contents durable before the link.
  void pre_publish(const void* node) {
    pmem::flush(node);
    pmem::fence();
  }

  void post_update(const void* primary, const void*) {
    pmem::flush(primary);
    // REPRO_MUTATE_DROP_PFENCE is the crash engine's mutation
    // self-test: building with it elides exactly this ordering fence,
    // and the fuzzer must then report a detectability violation (the
    // commit record can persist while the structural update is lost).
#ifndef REPRO_MUTATE_DROP_PFENCE
    pmem::fence();
#endif
  }

  // See IsbPolicy::expose.
  void expose(const void* addr) {
    if (!pmem::pwb_pending_mine(addr)) pmem::flush(addr);
    pmem::fence();
  }

  void op_end(bool ok, std::uint64_t result, bool) {
    PerThread& t = tls_[thread_slot()];
    if (t.op) {
      t.op->commit(ok, result);
      t.op.reset();
    }
  }

  AnnouncementBoard& board() { return board_; }

 private:
  struct alignas(64) PerThread {
    std::optional<DetectableOp> op;
  };

  PersistProfile profile_ = PersistProfile::general;
  AnnouncementBoard board_;
  PerThread tls_[kMaxThreads];
};

class CapsulesPolicy {
 public:
  enum class Variant { general, optimized, normalized };

  CapsulesPolicy() = default;
  explicit CapsulesPolicy(Variant v) : variant_(v) {}

  void op_start(OpKind kind, std::int64_t key, bool) {
    Capsule& c = tls_[thread_slot()].cap;
    c.kind.store(static_cast<std::uint64_t>(kind));
    c.key.store(key);
    c.phase.store(0);
    checkpoint(c);
  }

  void visit(const void* node, bool marked) {
    Capsule& c = tls_[thread_slot()].cap;
    if (variant_ == Variant::optimized) {
      // The optimized construction only closes a capsule where the
      // continuation is not idempotent: helping a marked node.
      if (marked) checkpoint(c);
    } else {
      // General (and normalized) capsules persist the continuation at
      // every shared-memory read, so the cost scales with the length
      // of the traversal.
      (void)node;
      checkpoint(c);
    }
  }

  // Capsule continuations already checkpoint around the CAS; the new
  // node's line persists with the capsule machinery, so no extra
  // pre-publication instructions are counted for this transformation.
  void pre_publish(const void*) {}

  // Capsules recovery replays from the persisted continuation, not
  // from structure reachability, so exposure needs no extra
  // instructions (keeping the paper's instruction counts intact).
  void expose(const void*) {}

  void pre_cas(const void*) {
    Capsule& c = tls_[thread_slot()].cap;
    checkpoint(c);
    if (variant_ == Variant::normalized) {
      // The normalized form splits every CAS into the
      // generator/execution/wrap-up stages, each a capsule boundary.
      checkpoint(c);
      checkpoint(c);
    }
  }

  void post_update(const void* primary, const void*) {
    pmem::flush(primary);
    pmem::fence();
  }

  void op_end(bool ok, std::uint64_t result, bool) {
    Capsule& c = tls_[thread_slot()].cap;
    c.ok.store(ok ? 1 : 0);
    c.result.store(result);
    pmem::flush(&c);
    pmem::fence();
    pmem::psync();
  }

 private:
  struct alignas(64) Capsule {
    pmem::persist<std::uint64_t> kind{0};
    pmem::persist<std::int64_t> key{0};
    pmem::persist<std::uint64_t> phase{0};
    pmem::persist<std::uint64_t> ok{0};
    pmem::persist<std::uint64_t> result{0};
  };
  struct alignas(64) PerThread {
    Capsule cap;
  };

  void checkpoint(Capsule& c) {
    c.phase.store(c.phase.load(std::memory_order_relaxed) + 1);
    pmem::flush(&c);
    pmem::fence();
  }

  Variant variant_ = Variant::general;
  PerThread tls_[kMaxThreads];
};

// Per-thread intent log, as used by the log-queue baseline: persist the
// operation record before touching the structure, complete it after.
class LogPolicy {
 public:
  void op_start(OpKind kind, std::int64_t key, bool) {
    Entry& e = tls_[thread_slot()].entry;
    e.seq.store(e.seq.load(std::memory_order_relaxed) + 1);
    e.kind.store(static_cast<std::uint64_t>(kind));
    e.value.store(static_cast<std::uint64_t>(key));
    e.done.store(0);
    pmem::flush(&e);
    pmem::fence();
  }

  void visit(const void*, bool) {}
  void pre_publish(const void*) {}
  void pre_cas(const void*) {}
  // Log recovery replays from the per-thread operation log, not from
  // structure reachability: no exposure instructions (paper counts
  // intact).
  void expose(const void*) {}

  void post_update(const void* primary, const void*) {
    pmem::flush(primary);
    pmem::fence();
  }

  void op_end(bool ok, std::uint64_t result, bool) {
    Entry& e = tls_[thread_slot()].entry;
    e.ok.store(ok ? 1 : 0);
    e.value.store(result);
    e.done.store(1);
    pmem::flush(&e);
    pmem::fence();
    pmem::psync();
  }

 private:
  struct alignas(64) Entry {
    pmem::persist<std::uint64_t> seq{0};
    pmem::persist<std::uint64_t> kind{0};
    pmem::persist<std::uint64_t> ok{0};
    pmem::persist<std::uint64_t> value{0};
    pmem::persist<std::uint64_t> done{0};
  };
  struct alignas(64) PerThread {
    Entry entry;
  };

  PerThread tls_[kMaxThreads];
};

}  // namespace repro::ds
