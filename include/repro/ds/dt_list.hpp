// Harris list under the direct-tracking transformation ("DT" /
// "DT-Opt" in the figures): like ISB it announces in a per-thread
// descriptor, but it additionally persists every logically-deleted node
// the search traverses, so its persistence cost grows with update
// concurrency instead of staying constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "repro/ds/harris_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

template <typename Reclaimer = mem::EbrReclaimer>
class DtListT {
 public:
  explicit DtListT(PersistProfile profile = PersistProfile::general)
      : core_(profile) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  Recovered recover(int slot) const {
    return core_.policy().board().recover(slot);
  }

  // Crash-engine enumeration of the (durable, post-crash) logical
  // contents; see HarrisListCore::durable_keys.
  bool snapshot_keys(std::vector<std::int64_t>& out) const {
    return core_.durable_keys(out);
  }

  std::size_t size_slow() const { return core_.size_slow(); }

 private:
  mutable HarrisListCore<DtPolicy, Reclaimer> core_;
};

using DtList = DtListT<>;

}  // namespace repro::ds
