// The paper's detectable lock-free linked list: Harris's list under the
// tracking (info-structure based) transformation.  Config::profile
// selects between the general persistence placement ("Isb" in the
// figures) and the hand-tuned one ("Isb-Opt"); Config::read_only_opt
// toggles the Algorithm-2 optimization that lets find() complete
// without any persistence instructions.  The Reclaimer parameter picks
// the memory subsystem (mem::EbrReclaimer by default; LeakReclaimer is
// the seed's leak-everything ablation, registered as "Isb-leak").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "repro/ds/harris_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

template <typename Reclaimer = mem::EbrReclaimer>
class IsbListT {
 public:
  struct Config {
    PersistProfile profile = PersistProfile::general;
    bool read_only_opt = true;
  };

  IsbListT() : IsbListT(Config{}) {}
  explicit IsbListT(Config c)
      : core_(IsbPolicy::Options{c.profile, c.read_only_opt}) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  // Detectable recovery: what thread `slot` would learn about its last
  // operation after a crash.
  Recovered recover(int slot) const {
    return core_.policy().board().recover(slot);
  }

  // Crash-engine enumeration of the (durable, post-crash) logical
  // contents; see HarrisListCore::durable_keys.
  bool snapshot_keys(std::vector<std::int64_t>& out) const {
    return core_.durable_keys(out);
  }

  std::size_t size_slow() const { return core_.size_slow(); }

 private:
  mutable HarrisListCore<IsbPolicy, Reclaimer> core_;
};

using IsbList = IsbListT<>;

}  // namespace repro::ds
