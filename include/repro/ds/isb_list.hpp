// The paper's detectable lock-free linked list: Harris's list under the
// tracking (info-structure based) transformation.  Config::profile
// selects between the general persistence placement ("Isb" in the
// figures) and the hand-tuned one ("Isb-Opt"); Config::read_only_opt
// toggles the Algorithm-2 optimization that lets find() complete
// without any persistence instructions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "repro/ds/harris_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

class IsbList {
 public:
  struct Config {
    PersistProfile profile = PersistProfile::general;
    bool read_only_opt = true;
  };

  IsbList() : IsbList(Config{}) {}
  explicit IsbList(Config c)
      : core_(IsbPolicy::Options{c.profile, c.read_only_opt}) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  // Detectable recovery: what thread `slot` would learn about its last
  // operation after a crash.
  Recovered recover(int slot) const {
    return core_.policy().board().recover(slot);
  }

  std::size_t size_slow() const { return core_.size_slow(); }

 private:
  mutable HarrisListCore<IsbPolicy> core_;
};

}  // namespace repro::ds
