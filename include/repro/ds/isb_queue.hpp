// The paper's detectable lock-free queue: the Michael-Scott queue under
// the tracking transformation.  The evaluated "Isb-Queue" series uses
// the tuned persistence placement; the general one is available for
// instruction-count comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "repro/ds/msqueue_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

template <typename Reclaimer = mem::EbrReclaimer>
class IsbQueueT {
 public:
  explicit IsbQueueT(PersistProfile profile = PersistProfile::optimized)
      : core_(IsbPolicy::Options{profile, /*read_only_opt=*/true}) {}

  void enqueue(std::uint64_t value) { core_.enqueue(value); }
  DequeueResult dequeue() { return core_.dequeue(); }

  Recovered recover(int slot) const {
    return core_.policy().board().recover(slot);
  }

  // Crash-engine enumeration of the (durable, post-crash) contents,
  // front to back; see MsQueueCore::durable_values.
  bool snapshot_values(std::vector<std::uint64_t>& out) const {
    return core_.durable_values(out);
  }

 private:
  mutable MsQueueCore<IsbPolicy, Reclaimer> core_;
};

using IsbQueue = IsbQueueT<>;

}  // namespace repro::ds
