// Harris lock-free linked list, parameterised by a persistence policy
// and a memory reclaimer.
//
// The paper evaluates one underlying list (Harris's marked-pointer list)
// under several detectable-recovery transformations that differ only in
// *where* they place pwb/pfence/psync and what per-thread recovery
// metadata they maintain.  The core therefore owns all traversal and CAS
// logic exactly once and surfaces the transformation points as policy
// hooks:
//
//   op_start(kind, key, read_only)      — operation announced
//   visit(node, marked)                 — node traversed during search
//   pre_cas(addr)                       — about to attempt a CAS
//   post_update(primary, secondary)     — a structural CAS succeeded
//   op_end(ok, result, read_only)       — operation response decided
//
// The algorithm itself lives in HarrisOps: static functions over an
// explicit (head, tail) *segment* — a head sentinel, a tail sentinel,
// and the chain between them.  HarrisListCore runs them over its single
// segment; the Harris-Michael hash map (hm_hashtable.hpp) runs them
// over one segment per bucket, sharing one policy and one tail
// sentinel, so every persistence transformation transfers to the hash
// map without a line of new CAS logic.
//
// baselines::HarrisList instantiates the core with the no-op policy;
// the ISB, DT and Capsules lists instantiate it with their respective
// policies (see isb_list.hpp / dt_list.hpp / baselines/capsules_list.hpp).
//
// Memory management (the Reclaimer parameter, default mem::EbrReclaimer):
// nodes come from the per-thread pool, every operation runs inside an
// epoch guard, and each physically-unlinked node is retired exactly once
// — by the thread whose CAS removed it from the list (erase's unlink CAS
// or search's marked-chain snip; expected-value CAS semantics make the
// winner unique).  After its grace period a retired node is recycled
// into the owning pool instead of leaked.  mem::LeakReclaimer recovers
// the seed's leak-everything behaviour for ablation runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::ds {

// One list cell; shared by every policy instantiation so all Harris
// variants draw from (and recycle into) the same node pool.  The link
// is a pmem::persist word: it is the state the persistence policies
// flush, so in shadow-NVM mode its mutations route through the
// write-log and a simulated crash can rewind it to the durable image.
// Construction is not logged (a node's initial fields model its state
// before it was ever published); outside shadow mode persist<> is a
// plain atomic.
struct ListNode {
  ListNode(std::int64_t k, ListNode* n) : key(k), next(n) {}
  std::int64_t key;
  pmem::persist<ListNode*> next;
};

// ---------------------------------------------------------------------
// The algorithm layer: Harris search/insert/erase/find over one
// (head, tail) segment.  Each entry point brackets itself with the
// policy's op_start/op_end and an epoch guard, so a caller owning many
// segments (the hash map) announces exactly one operation per call —
// the detectability contract is per *operation*, not per segment.
// ---------------------------------------------------------------------
template <typename Policy, typename Reclaimer = mem::EbrReclaimer>
struct HarrisOps {
  using Node = ListNode;

  static bool is_marked(Node* p) {
    return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
  }
  static Node* mark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) |
                                   1u);
  }
  static Node* unmark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }

  static bool insert(Node* head, Node* tail, Policy& policy,
                     std::int64_t key) {
    typename Reclaimer::Guard guard;
    policy.op_start(OpKind::insert, key, false);
    Node* node = nullptr;
    bool ok = false;
    while (true) {
      Node* left = nullptr;
      Node* right = search(head, tail, policy, guard, key, &left);
      if (right != tail && right->key == key) {
        ok = false;
        break;
      }
      if (node == nullptr) {
        node = Reclaimer::template create<Node>(key, nullptr);
      }
      node->next.store(right, std::memory_order_relaxed);
      // Persist the initialised node before any durable link to it can
      // exist (see the policies' pre_publish contract).
      policy.pre_publish(node);
      policy.pre_cas(&left->next);
      Node* expected = right;
      if (left->next.cas(expected, node)) {
        policy.post_update(&left->next, node);
        ok = true;
        break;
      }
    }
    if (!ok && node != nullptr) {
      Reclaimer::template destroy<Node>(node);  // never linked
    }
    policy.op_end(ok, ok ? 1 : 0, false);
    return ok;
  }

  static bool erase(Node* head, Node* tail, Policy& policy,
                    std::int64_t key) {
    typename Reclaimer::Guard guard;
    policy.op_start(OpKind::erase, key, false);
    bool ok = false;
    while (true) {
      Node* left = nullptr;
      Node* right = search(head, tail, policy, guard, key, &left);
      if (right == tail || right->key != key) {
        ok = false;
        break;
      }
      Node* right_next = right->next.load(std::memory_order_acquire);
      if (!is_marked(right_next)) {
        policy.pre_cas(&right->next);
        Node* expected = right_next;
        // Logical deletion: set the mark bit on right's next pointer.
        if (right->next.cas(expected, mark(right_next))) {
          policy.post_update(&right->next, nullptr);
          // Best-effort physical unlink; search() will finish the job
          // if this fails.
          policy.pre_cas(&left->next);
          Node* expl = right;
          if (left->next.cas(expl, right_next)) {
            policy.post_update(&left->next, nullptr);
            // This CAS (uniquely) unlinked right: it is ours to retire.
            Reclaimer::template retire<Node>(right);
          }
          ok = true;
          break;
        }
      }
    }
    policy.op_end(ok, ok ? 1 : 0, false);
    return ok;
  }

  static bool find(Node* head, Node* tail, Policy& policy,
                   std::int64_t key) {
    typename Reclaimer::Guard guard;
    policy.op_start(OpKind::find, key, true);
    Node* left = nullptr;
    Node* right = search(head, tail, policy, guard, key, &left);
    const bool ok = (right != tail && right->key == key);
    policy.op_end(ok, ok ? 1 : 0, true);
    return ok;
  }

  // Harris search: returns the first unmarked node with key >= `key`
  // and its unmarked predecessor, unlinking (and retiring) any marked
  // chain in between.
  //
  // Under a hazard-pointer reclaimer (Guard::kHazards) every step runs
  // the protect/validate protocol: the candidate is published in a
  // hazard cell, then the link it was read from is re-read — a
  // mismatch means the candidate may already be unlinked (and past a
  // scan), so the traversal restarts.  Three hazard cells suffice:
  // slot 0 pins `left` (the CAS target after the search returns) and
  // slots 1/2 alternate between the current node and its source, so
  // the node a link was read *from* stays protected while the node it
  // points *to* is validated.  Epoch reclaimers compile all of it out
  // (kHazards == false).
  static Node* search(Node* head, Node* tail, Policy& policy,
                      typename Reclaimer::Guard& guard,
                      std::int64_t key, Node** left_node) {
    (void)guard;
    while (true) {
      Node* left = head;
      Node* left_next = head->next.load(std::memory_order_acquire);
      Node* t = head;
      Node* t_next = left_next;
      [[maybe_unused]] int hz = 1;
      bool restart = false;
      // Phase 1: advance until the first unmarked node with key >= key,
      // remembering the last unmarked predecessor.
      do {
        if (!is_marked(t_next)) {
          left = t;
          left_next = t_next;
          if constexpr (Reclaimer::Guard::kHazards) {
            // t is already covered by a rotating slot; slot 0 keeps it
            // covered after the rotation moves on.
            guard.protect(0, left);
          }
        }
        [[maybe_unused]] Node* src = t;
        [[maybe_unused]] Node* link = t_next;
        t = unmark(t_next);
        if (t == tail) break;
        if constexpr (Reclaimer::Guard::kHazards) {
          guard.protect(hz, t);
          // Validate: src (head, or protected by the other rotating
          // slot) must still link to t exactly as first read, or t may
          // already be unlinked — and reclaimed the moment our hazard
          // store lost the race with a scan.
          if (src->next.load(std::memory_order_acquire) != link) {
            restart = true;
            break;
          }
          hz ^= 3;  // 1 <-> 2: keep t protected while its successor is
                    // validated against it next iteration
        }
        t_next = t->next.load(std::memory_order_acquire);
        policy.visit(t, is_marked(t_next));
      } while (is_marked(t_next) || t->key < key);
      if (restart) continue;
      Node* right = t;

      // Phase 2: adjacent — done, unless right got marked meanwhile.
      if (left_next == right) {
        if (right != tail &&
            is_marked(right->next.load(std::memory_order_acquire))) {
          continue;
        }
        *left_node = left;
        return right;
      }

      // Phase 3: snip out the marked chain between left and right.
      policy.pre_cas(&left->next);
      Node* expected = left_next;
      if (left->next.cas(expected, right)) {
        policy.post_update(&left->next, nullptr);
        // The snip succeeded, so this thread exclusively owns the
        // marked chain [left_next, right): retire each node once.
        for (Node* p = unmark(left_next); p != right;) {
          Node* nx = unmark(p->next.load(std::memory_order_relaxed));
          Reclaimer::template retire<Node>(p);
          p = nx;
        }
        if (right != tail &&
            is_marked(right->next.load(std::memory_order_acquire))) {
          continue;
        }
        *left_node = left;
        return right;
      }
    }
  }

  // Crash-time enumeration of one segment: appends the logical
  // (unmarked) keys reachable from `head` (exclusive) up to `tail`, in
  // link order.  After a simulated crash the links physically hold the
  // durable image, so an ordinary traversal reads durable truth — but
  // a detectability bug can leave a durable link into memory that was
  // never durably initialised, so the walk is defensive: each candidate
  // node must be a pool cell (mem::SlabDirectory) and the walk shares a
  // caller-owned step budget capping cycles across *all* of a caller's
  // segments.  Returns false — a verification failure, not UB — on any
  // anomaly.  Single-threaded: call with no concurrent mutators.
  static bool durable_segment(Node* head, Node* tail,
                              std::vector<std::int64_t>& out,
                              std::size_t& steps,
                              std::size_t max_steps) {
    Node* c = unmark(head->next.load());
    while (c != tail) {
      if (++steps > max_steps) return false;  // cycle / runaway chain
      if (!mem::SlabDirectory::instance().owns(c)) return false;
      Node* nx = c->next.load();
      if (!is_marked(nx)) out.push_back(c->key);
      c = unmark(nx);
    }
    return true;
  }

  // Unmarked-node count of one segment; only meaningful while no other
  // thread mutates.
  static std::size_t size_segment(Node* head, Node* tail) {
    std::size_t n = 0;
    for (Node* c = unmark(head->next.load()); c != tail;
         c = unmark(c->next.load())) {
      if (!is_marked(c->next.load())) ++n;
    }
    return n;
  }

  // Teardown: destroys every node linked from `head` (inclusive) until
  // `stop` (exclusive; pass nullptr to run off the end of the chain) —
  // including marked (logically-deleted but not yet physically
  // unlinked) nodes, which the unmark() walk reaches like any other
  // cell.  Unlinked nodes are not the destructor's to free: their
  // unlinker retired them and the epoch reclaimer returns them to the
  // pool independently of the structure's lifetime.
  static void destroy_segment(Node* head, Node* stop) {
    Node* n = head;
    while (n != stop) {
      Node* nx = unmark(n->next.load(std::memory_order_relaxed));
      Reclaimer::template destroy<Node>(n);
      n = nx;
    }
  }
};

template <typename Policy, typename Reclaimer = mem::EbrReclaimer>
class HarrisListCore {
 public:
  // Policies hold atomics (announcement boards, capsules) and cannot be
  // moved, so the core constructs its policy in place.
  template <typename... Args>
  explicit HarrisListCore(Args&&... args)
      : policy_(std::forward<Args>(args)...) {
    head_ = Reclaimer::template create<Node>(
        std::numeric_limits<std::int64_t>::min(), nullptr);
    tail_ = Reclaimer::template create<Node>(
        std::numeric_limits<std::int64_t>::max(), nullptr);
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~HarrisListCore() { Ops::destroy_segment(head_, nullptr); }

  HarrisListCore(const HarrisListCore&) = delete;
  HarrisListCore& operator=(const HarrisListCore&) = delete;

  bool insert(std::int64_t key) {
    return Ops::insert(head_, tail_, policy_, key);
  }

  bool erase(std::int64_t key) {
    return Ops::erase(head_, tail_, policy_, key);
  }

  bool find(std::int64_t key) {
    return Ops::find(head_, tail_, policy_, key);
  }

  // Crash-time enumeration for the crash engine: collects the logical
  // (unmarked) keys reachable from head_, in order; see
  // HarrisOps::durable_segment for the defensive-walk contract.
  bool durable_keys(std::vector<std::int64_t>& out,
                    std::size_t max_steps = 1u << 20) const {
    out.clear();
    std::size_t steps = 0;
    return Ops::durable_segment(head_, tail_, out, steps, max_steps);
  }

  // Unmarked-node count; only meaningful while no other thread mutates.
  std::size_t size_slow() const {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    return Ops::size_segment(head_, tail_);
  }

  Policy& policy() { return policy_; }

 private:
  using Node = ListNode;
  using Ops = HarrisOps<Policy, Reclaimer>;

  Node* head_;
  Node* tail_;
  Policy policy_;
};

}  // namespace repro::ds
