// Harris lock-free linked list, parameterised by a persistence policy.
//
// The paper evaluates one underlying list (Harris's marked-pointer list)
// under several detectable-recovery transformations that differ only in
// *where* they place pwb/pfence/psync and what per-thread recovery
// metadata they maintain.  The core therefore owns all traversal and CAS
// logic exactly once and surfaces the transformation points as policy
// hooks:
//
//   op_start(kind, key, read_only)      — operation announced
//   visit(node, marked)                 — node traversed during search
//   pre_cas(addr)                       — about to attempt a CAS
//   post_update(primary, secondary)     — a structural CAS succeeded
//   op_end(ok, result, read_only)       — operation response decided
//
// baselines::HarrisList instantiates it with the no-op policy; the ISB,
// DT and Capsules lists instantiate it with their respective policies
// (see isb_list.hpp / dt_list.hpp / baselines/capsules_list.hpp).
//
// Removed nodes are leaked: safe memory reclamation is orthogonal to the
// persistence cost the benchmarks measure (the paper's artifact does the
// same) and a proper epoch reclaimer is tracked in ROADMAP.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

#include "repro/ds/detectable.hpp"

namespace repro::ds {

template <typename Policy>
class HarrisListCore {
 public:
  // Policies hold atomics (announcement boards, capsules) and cannot be
  // moved, so the core constructs its policy in place.
  template <typename... Args>
  explicit HarrisListCore(Args&&... args)
      : policy_(std::forward<Args>(args)...) {
    head_ = new Node{std::numeric_limits<std::int64_t>::min(), nullptr};
    tail_ = new Node{std::numeric_limits<std::int64_t>::max(), nullptr};
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~HarrisListCore() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = unmark(n->next.load(std::memory_order_relaxed));
      delete n;
      n = nx;
    }
  }

  HarrisListCore(const HarrisListCore&) = delete;
  HarrisListCore& operator=(const HarrisListCore&) = delete;

  bool insert(std::int64_t key) {
    policy_.op_start(OpKind::insert, key, false);
    Node* node = nullptr;
    bool ok = false;
    while (true) {
      Node* left = nullptr;
      Node* right = search(key, &left);
      if (right != tail_ && right->key == key) {
        ok = false;
        break;
      }
      if (node == nullptr) node = new Node{key, nullptr};
      node->next.store(right, std::memory_order_relaxed);
      policy_.pre_cas(&left->next);
      Node* expected = right;
      if (left->next.compare_exchange_strong(expected, node)) {
        policy_.post_update(&left->next, node);
        ok = true;
        break;
      }
    }
    if (!ok && node != nullptr) delete node;  // never linked
    policy_.op_end(ok, ok ? 1 : 0, false);
    return ok;
  }

  bool erase(std::int64_t key) {
    policy_.op_start(OpKind::erase, key, false);
    bool ok = false;
    while (true) {
      Node* left = nullptr;
      Node* right = search(key, &left);
      if (right == tail_ || right->key != key) {
        ok = false;
        break;
      }
      Node* right_next = right->next.load(std::memory_order_acquire);
      if (!is_marked(right_next)) {
        policy_.pre_cas(&right->next);
        Node* expected = right_next;
        // Logical deletion: set the mark bit on right's next pointer.
        if (right->next.compare_exchange_strong(expected,
                                                mark(right_next))) {
          policy_.post_update(&right->next, nullptr);
          // Best-effort physical unlink; search() will finish the job
          // if this fails.
          policy_.pre_cas(&left->next);
          Node* expl = right;
          if (left->next.compare_exchange_strong(expl, right_next)) {
            policy_.post_update(&left->next, nullptr);
          }
          ok = true;
          break;
        }
      }
    }
    policy_.op_end(ok, ok ? 1 : 0, false);
    return ok;
  }

  bool find(std::int64_t key) {
    policy_.op_start(OpKind::find, key, true);
    Node* left = nullptr;
    Node* right = search(key, &left);
    const bool ok = (right != tail_ && right->key == key);
    policy_.op_end(ok, ok ? 1 : 0, true);
    return ok;
  }

  // Unmarked-node count; only meaningful while no other thread mutates.
  std::size_t size_slow() const {
    std::size_t n = 0;
    for (Node* c = unmark(head_->next.load()); c != tail_;
         c = unmark(c->next.load())) {
      if (!is_marked(c->next.load())) ++n;
    }
    return n;
  }

  Policy& policy() { return policy_; }

 private:
  struct Node {
    std::int64_t key;
    std::atomic<Node*> next;
  };

  static bool is_marked(Node* p) {
    return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
  }
  static Node* mark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) |
                                   1u);
  }
  static Node* unmark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }

  // Harris search: returns the first unmarked node with key >= `key`
  // and its unmarked predecessor, unlinking any marked chain in
  // between.
  Node* search(std::int64_t key, Node** left_node) {
    while (true) {
      Node* left = head_;
      Node* left_next = head_->next.load(std::memory_order_acquire);
      Node* t = head_;
      Node* t_next = left_next;
      // Phase 1: advance until the first unmarked node with key >= key,
      // remembering the last unmarked predecessor.
      do {
        if (!is_marked(t_next)) {
          left = t;
          left_next = t_next;
        }
        t = unmark(t_next);
        if (t == tail_) break;
        t_next = t->next.load(std::memory_order_acquire);
        policy_.visit(t, is_marked(t_next));
      } while (is_marked(t_next) || t->key < key);
      Node* right = t;

      // Phase 2: adjacent — done, unless right got marked meanwhile.
      if (left_next == right) {
        if (right != tail_ &&
            is_marked(right->next.load(std::memory_order_acquire))) {
          continue;
        }
        *left_node = left;
        return right;
      }

      // Phase 3: snip out the marked chain between left and right.
      policy_.pre_cas(&left->next);
      Node* expected = left_next;
      if (left->next.compare_exchange_strong(expected, right)) {
        policy_.post_update(&left->next, nullptr);
        if (right != tail_ &&
            is_marked(right->next.load(std::memory_order_acquire))) {
          continue;
        }
        *left_node = left;
        return right;
      }
    }
  }

  Node* head_;
  Node* tail_;
  Policy policy_;
};

}  // namespace repro::ds
