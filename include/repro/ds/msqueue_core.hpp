// Michael-Scott lock-free queue, parameterised by the same persistence
// policy concept as HarrisListCore (see harris_core.hpp).  MsQueue,
// IsbQueue, LogQueue and CapsulesQueue are all instantiations of this
// core; they differ only in the pwb/pfence/psync placement and the
// per-thread recovery metadata their policies maintain.
//
// Dequeued nodes are leaked (see the reclamation note in
// harris_core.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "repro/ds/detectable.hpp"

namespace repro::ds {

template <typename Policy>
class MsQueueCore {
 public:
  // Policies hold atomics and cannot be moved; construct in place.
  template <typename... Args>
  explicit MsQueueCore(Args&&... args)
      : policy_(std::forward<Args>(args)...) {
    Node* dummy = new Node{0, nullptr};
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueueCore() {
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  MsQueueCore(const MsQueueCore&) = delete;
  MsQueueCore& operator=(const MsQueueCore&) = delete;

  void enqueue(std::uint64_t value) {
    policy_.op_start(OpKind::enqueue, static_cast<std::int64_t>(value),
                     false);
    Node* node = new Node{value, nullptr};
    while (true) {
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = last->next.load(std::memory_order_acquire);
      policy_.visit(last, false);
      if (last != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        policy_.pre_cas(&last->next);
        Node* expected = nullptr;
        if (last->next.compare_exchange_strong(expected, node)) {
          // The link CAS is the (durable) linearization point; the tail
          // swing below is volatile bookkeeping that recovery rebuilds.
          policy_.post_update(&last->next, node);
          Node* expl = last;
          tail_.compare_exchange_strong(expl, node);
          break;
        }
      } else {
        Node* expl = last;  // help a stalled enqueuer
        tail_.compare_exchange_strong(expl, next);
      }
    }
    policy_.op_end(true, value, false);
  }

  DequeueResult dequeue() {
    policy_.op_start(OpKind::dequeue, 0, false);
    DequeueResult r;
    while (true) {
      Node* first = head_.load(std::memory_order_acquire);
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = first->next.load(std::memory_order_acquire);
      policy_.visit(first, false);
      if (first != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        r = {false, 0};  // observed empty
        break;
      }
      if (first == last) {
        Node* expl = last;  // tail lagging: help
        tail_.compare_exchange_strong(expl, next);
        continue;
      }
      const std::uint64_t value = next->value;
      policy_.pre_cas(&head_);
      Node* expf = first;
      if (head_.compare_exchange_strong(expf, next)) {
        policy_.post_update(&head_, nullptr);
        r = {true, value};
        break;
      }
    }
    policy_.op_end(r.ok, r.value, false);
    return r;
  }

  Policy& policy() { return policy_; }

 private:
  struct Node {
    std::uint64_t value;
    std::atomic<Node*> next;
  };

  alignas(64) std::atomic<Node*> head_;
  alignas(64) std::atomic<Node*> tail_;
  Policy policy_;
};

}  // namespace repro::ds
