// Michael-Scott lock-free queue, parameterised by the same persistence
// policy concept as HarrisListCore (see harris_core.hpp) and the same
// memory reclaimer.  MsQueue, IsbQueue, LogQueue and CapsulesQueue are
// all instantiations of this core; they differ only in the
// pwb/pfence/psync placement and the per-thread recovery metadata their
// policies maintain.
//
// A dequeue retires the node it uninstalled from head_ (the old dummy)
// once its head CAS succeeds — the winner of that CAS is unique, so
// each node is retired exactly once and recycled into the pool after
// its epoch grace period.  The epoch guard around each operation is
// also what makes node reuse ABA-safe: head_/tail_/next CASes can only
// observe a recycled address after every thread that read the old
// identity has gone quiescent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/mem/ebr.hpp"

namespace repro::ds {

// One queue cell; shared by every policy instantiation so all MS-queue
// variants draw from the same node pool.  Both words are pmem::persist
// cells and the constructor initialises them through store() rather
// than member-init: persist<T> construction is never shadow-logged,
// but these stores are, so a node created while a crash plan is armed
// has durable baseline 0/nullptr until pre_publish flushes it.  That
// is what makes an elided pre_publish *visible* to the crash engine —
// a durable link can then reach a node whose payload rewinds to zero
// (the REPRO_MUTATE_DROP_PREPUBLISH self-test relies on it).  Pool
// cells are cache-line-aligned, so one pwb of the node covers both
// words.
struct QueueNode {
  QueueNode(std::uint64_t v, QueueNode* n) {
    value.store(v, std::memory_order_relaxed);
    next.store(n, std::memory_order_relaxed);
  }
  pmem::persist<std::uint64_t> value;
  pmem::persist<QueueNode*> next;
};

template <typename Policy, typename Reclaimer = mem::EbrReclaimer>
class MsQueueCore {
 public:
  // Policies hold atomics and cannot be moved; construct in place.
  template <typename... Args>
  explicit MsQueueCore(Args&&... args)
      : policy_(std::forward<Args>(args)...) {
    Node* dummy = Reclaimer::template create<Node>(0, nullptr);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  // Teardown: everything reachable from head_ — the current dummy plus
  // all still-enqueued nodes — is freed here; every *dequeued* node was
  // already retired by its dequeuer and is reclaimed independently of
  // this structure's lifetime (audited against the list destructor:
  // neither can skip a linked node, and neither touches unlinked ones).
  ~MsQueueCore() {
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      Reclaimer::template destroy<Node>(n);
      n = nx;
    }
  }

  MsQueueCore(const MsQueueCore&) = delete;
  MsQueueCore& operator=(const MsQueueCore&) = delete;

  void enqueue(std::uint64_t value) {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    policy_.op_start(OpKind::enqueue, static_cast<std::int64_t>(value),
                     false);
    Node* node = Reclaimer::template create<Node>(value, nullptr);
    // Persist the initialised node before any durable link to it can
    // exist; its fields never change afterwards, so once is enough
    // even across CAS retries.  REPRO_MUTATE_DROP_PREPUBLISH is the
    // concurrent crash fuzzer's mutation self-test: eliding exactly
    // this call lets a durable link reach a node whose payload was
    // never persisted, and the fuzzer must report it.
#ifndef REPRO_MUTATE_DROP_PREPUBLISH
    policy_.pre_publish(node);
#endif
    while (true) {
      Node* last = tail_.load(std::memory_order_acquire);
      if constexpr (Reclaimer::Guard::kHazards) {
        // Protect-then-validate before the first dereference of last:
        // if tail_ still holds it after the (seq_cst) hazard store,
        // last was not yet uninstalled, so no scan can free it while
        // the hazard stands.
        guard.protect(0, last);
        if (last != tail_.load(std::memory_order_acquire)) continue;
      }
      Node* next = last->next.load(std::memory_order_acquire);
      policy_.visit(last, false);
      if (last != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        policy_.pre_cas(&last->next);
        Node* expected = nullptr;
        if (last->next.cas(expected, node)) {
          // The link CAS is the (durable) linearization point; the tail
          // swing below is volatile bookkeeping that recovery rebuilds.
          policy_.post_update(&last->next, node);
          // Persist-link-before-tail-swing: once tail_ points at this
          // node, other threads will append behind it and durably
          // commit — if this link were still pending in a write-back
          // queue, a crash would orphan every one of their effects
          // (the durable chain would break here).  The concurrent
          // crash fuzzer found exactly that tear; see expose() in the
          // policies and the durable-queue literature (Friedman et
          // al.) for the rule.
          policy_.expose(&last->next);
          Node* expl = last;
          tail_.cas(expl, node);
          break;
        }
      } else {
        // Helping a stalled enqueuer: the observed link may still be
        // volatile-only (the enqueuer crashed or was preempted before
        // exposing it).  Persist it before swinging tail past it, or
        // the chain built on top of it is durably unreachable.
        policy_.expose(&last->next);
        Node* expl = last;  // help a stalled enqueuer
        tail_.cas(expl, next);
      }
    }
    policy_.op_end(true, value, false);
  }

  DequeueResult dequeue() {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    policy_.op_start(OpKind::dequeue, 0, false);
    DequeueResult r;
    while (true) {
      Node* first = head_.load(std::memory_order_acquire);
      if constexpr (Reclaimer::Guard::kHazards) {
        // Protect first before dereferencing its next link (below).
        guard.protect(0, first);
        if (first != head_.load(std::memory_order_acquire)) continue;
      }
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = first->next.load(std::memory_order_acquire);
      policy_.visit(first, false);
      if (first != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        r = {false, 0};  // observed empty
        break;
      }
      if (first == last) {
        // Same rule as the enqueue helper: never swing tail past a
        // link that is not yet durable.
        policy_.expose(&first->next);
        Node* expl = last;  // tail lagging: help
        tail_.cas(expl, next);
        continue;
      }
      if constexpr (Reclaimer::Guard::kHazards) {
        // Protect next before reading its value: head_ still holding
        // first means first was not uninstalled, so next is still the
        // first real node — reachable, hence not retired.
        guard.protect(1, next);
        if (first != head_.load(std::memory_order_acquire)) continue;
      }
      const std::uint64_t value =
          next->value.load(std::memory_order_acquire);
      policy_.pre_cas(&head_);
      Node* expf = first;
      if (head_.cas(expf, next)) {
        policy_.post_update(&head_, nullptr);
        // This CAS (uniquely) uninstalled `first` as the dummy.
        Reclaimer::template retire<Node>(first);
        r = {true, value};
        break;
      }
    }
    policy_.op_end(r.ok, r.value, false);
    return r;
  }

  // Crash-time enumeration for the crash engine: the values reachable
  // from the durable head (the node after the dummy onward), front to
  // back.  Same defensive contract as HarrisListCore::durable_keys —
  // pointer-validated against the pool directory and step-capped; the
  // (volatile, recovery-rebuilt) tail is deliberately ignored.
  // Single-threaded: call with no concurrent mutators.
  bool durable_values(std::vector<std::uint64_t>& out,
                      std::size_t max_steps = 1u << 20) const {
    out.clear();
    Node* dummy = head_.load();
    if (!mem::SlabDirectory::instance().owns(dummy)) return false;
    Node* c = dummy->next.load();
    std::size_t steps = 0;
    while (c != nullptr) {
      if (++steps > max_steps) return false;  // cycle / runaway chain
      if (!mem::SlabDirectory::instance().owns(c)) return false;
      out.push_back(c->value.load());
      c = c->next.load();
    }
    return true;
  }

  Policy& policy() { return policy_; }

 private:
  using Node = QueueNode;

  alignas(64) pmem::persist<Node*> head_;
  alignas(64) pmem::persist<Node*> tail_;
  Policy policy_;
};

}  // namespace repro::ds
