// Detectable Harris-Michael hash map: fixed power-of-two bucket array,
// each bucket an independent Harris-list segment driven by the shared
// HarrisOps algorithm layer (harris_core.hpp).  Because the buckets
// reuse the list's search/CAS logic verbatim, every persistence policy
// (IsbPolicy, DtPolicy, NullPolicy for the volatile baseline) transfers
// unchanged — the tracking transformation is per *operation*, and an
// operation here is one announce + one bucket-segment traversal.
//
// Topology: one head sentinel per bucket (key INT64_MIN) and ONE tail
// sentinel (key INT64_MAX) shared by every bucket — the tail's link is
// never mutated, so sharing it is race-free and keeps the durable walk
// termination condition identical to the flat list's.  The head
// sentinels live in pool-allocated directory blocks (HmBucketBlock)
// referenced from an inline pointer array in the map object:
//
//   HmHashMapCore ── blocks_[i] ──> HmBucketBlock ── heads[j] ──> sentinel ─> … ─> tail
//
// Every piece — blocks, sentinels, nodes — comes from the Reclaimer's
// node pool, so when a pmem::MmapHeap is attached the whole directory
// is carved from the mapped arena and the raw pointers rebase
// identically in every process that maps the heap file: a map object
// created with MmapHeap::root<IsbHashMapT<>>() recovers per-bucket in a
// fresh process exactly like the flat list does (harness/killfuzz.hpp
// Family::hm_map).  The map object itself is vtable-free with no
// heap-owning members, the requirement for heap roots.
//
// The bucket directory is immutable after construction (fixed bucket
// count, no resizing): only the sentinels' next links — pmem::persist
// cells like every Harris link — mutate, so shadow-NVM crash rewind and
// the mmap durability backend both see exactly the flat list's write
// set, one segment at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "repro/ds/harris_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::ds {

// One directory block of bucket-head sentinels.  Blocks are pool cells
// (4 KiB + padding, well under the 64 KiB slab ceiling) so they land in
// the mmap arena when a heap is attached.  Entries are written once at
// map construction and never again; construction is not logged, like
// node construction.
struct HmBucketBlock {
  static constexpr int kBits = 9;  // 512 heads per block
  static constexpr std::size_t kHeads = std::size_t{1} << kBits;
  HmBucketBlock() {
    for (auto& h : heads) h = nullptr;
  }
  ListNode* heads[kHeads];
};

template <typename Policy, typename Reclaimer = mem::EbrReclaimer>
class HmHashMapCore {
 public:
  static constexpr int kMinBucketBits = 0;
  static constexpr int kMaxBucketBits = 15;  // 32768 buckets
  static constexpr std::size_t kMaxBlocks =
      (std::size_t{1} << kMaxBucketBits) >> HmBucketBlock::kBits;

  // Policies hold atomics (announcement boards) and cannot be moved, so
  // the map constructs its policy in place from the trailing args.
  template <typename... Args>
  explicit HmHashMapCore(int bucket_bits, Args&&... args)
      : policy_(std::forward<Args>(args)...) {
    if (bucket_bits < kMinBucketBits) bucket_bits = kMinBucketBits;
    if (bucket_bits > kMaxBucketBits) bucket_bits = kMaxBucketBits;
    nbuckets_ = std::size_t{1} << bucket_bits;
    tail_ = Reclaimer::template create<Node>(
        std::numeric_limits<std::int64_t>::max(), nullptr);
    for (auto& b : blocks_) b = nullptr;
    const std::size_t nblocks =
        (nbuckets_ + HmBucketBlock::kHeads - 1) >> HmBucketBlock::kBits;
    for (std::size_t b = 0; b < nblocks; ++b) {
      blocks_[b] = Reclaimer::template create<HmBucketBlock>();
    }
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      // The sentinel's link is ctor-initialised to the shared tail:
      // construction is unlogged, so an empty bucket IS the durable
      // baseline a crash rewinds to.
      blocks_[i >> HmBucketBlock::kBits]
          ->heads[i & (HmBucketBlock::kHeads - 1)] =
          Reclaimer::template create<Node>(
              std::numeric_limits<std::int64_t>::min(), tail_);
    }
  }

  ~HmHashMapCore() {
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      Ops::destroy_segment(head_at(i), tail_);
    }
    Reclaimer::template destroy<Node>(tail_);
    for (auto& b : blocks_) {
      if (b != nullptr) Reclaimer::template destroy<HmBucketBlock>(b);
    }
  }

  HmHashMapCore(const HmHashMapCore&) = delete;
  HmHashMapCore& operator=(const HmHashMapCore&) = delete;

  bool insert(std::int64_t key) {
    return Ops::insert(head_of(key), tail_, policy_, key);
  }

  bool erase(std::int64_t key) {
    return Ops::erase(head_of(key), tail_, policy_, key);
  }

  bool find(std::int64_t key) {
    return Ops::find(head_of(key), tail_, policy_, key);
  }

  // Crash-time enumeration for the crash engine: concatenates the
  // per-bucket defensive walks in bucket order.  Bucket order is
  // deterministic (the same image always walks the same way — the
  // chain fuzzer's idempotence re-walk relies on that) but not sorted;
  // every consumer of durable contents (crashfuzz set_equals, the
  // durable-linearizability checker, killfuzz verify_list) compares
  // order-insensitively.  The step budget is shared across buckets so
  // a cycle through any bucket's chain still terminates the walk.
  bool durable_keys(std::vector<std::int64_t>& out,
                    std::size_t max_steps = std::size_t{1} << 22) const {
    out.clear();
    std::size_t steps = 0;
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      Node* h = head_at(i);
      if (h == nullptr) return false;  // torn directory
      if (!Ops::durable_segment(h, tail_, out, steps, max_steps)) {
        return false;
      }
    }
    return true;
  }

  // Unmarked-node count; only meaningful while no other thread mutates.
  std::size_t size_slow() const {
    [[maybe_unused]] typename Reclaimer::Guard guard;
    std::size_t n = 0;
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      n += Ops::size_segment(head_at(i), tail_);
    }
    return n;
  }

  Policy& policy() { return policy_; }
  std::size_t bucket_count() const { return nbuckets_; }

 private:
  using Node = ListNode;
  using Ops = HarrisOps<Policy, Reclaimer>;

  // SplitMix64 finalizer: full-avalanche mixing so dense integer key
  // ranges (the benchmarks draw uniform/zipfian keys from [1, range])
  // spread over the power-of-two bucket mask.
  std::size_t bucket_of(std::int64_t key) const {
    std::uint64_t x =
        static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (nbuckets_ - 1);
  }

  Node* head_at(std::size_t i) const {
    const HmBucketBlock* b = blocks_[i >> HmBucketBlock::kBits];
    return b == nullptr ? nullptr
                        : b->heads[i & (HmBucketBlock::kHeads - 1)];
  }

  Node* head_of(std::int64_t key) const {
    return head_at(bucket_of(key));
  }

  Policy policy_;
  std::size_t nbuckets_ = 1;
  Node* tail_ = nullptr;
  HmBucketBlock* blocks_[kMaxBlocks];
};

// ---------------------------------------------------------------------
// Paper-facing wrappers, mirroring isb_list.hpp / dt_list.hpp.
// ---------------------------------------------------------------------

// The tracking (info-structure based) transformation over the hash map:
// "Isb-HashMap" / "Isb-HashMap-Opt" in the registry.
template <typename Reclaimer = mem::EbrReclaimer>
class IsbHashMapT {
 public:
  struct Config {
    PersistProfile profile = PersistProfile::general;
    bool read_only_opt = true;
    int bucket_bits = 13;  // 8192 buckets
  };

  IsbHashMapT() : IsbHashMapT(Config{}) {}
  explicit IsbHashMapT(Config c)
      : core_(c.bucket_bits,
              IsbPolicy::Options{c.profile, c.read_only_opt}) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  // Detectable recovery: what thread `slot` would learn about its last
  // operation after a crash.
  Recovered recover(int slot) const {
    return core_.policy().board().recover(slot);
  }

  // Crash-engine enumeration of the (durable, post-crash) logical
  // contents; see HmHashMapCore::durable_keys.
  bool snapshot_keys(std::vector<std::int64_t>& out) const {
    return core_.durable_keys(out);
  }

  std::size_t size_slow() const { return core_.size_slow(); }
  std::size_t bucket_count() const { return core_.bucket_count(); }

 private:
  mutable HmHashMapCore<IsbPolicy, Reclaimer> core_;
};

using IsbHashMap = IsbHashMapT<>;

// Direct tracking over the hash map ("DT-HashMap"): persists every
// logically-deleted node the bucket search traverses.
template <typename Reclaimer = mem::EbrReclaimer>
class DtHashMapT {
 public:
  explicit DtHashMapT(PersistProfile profile = PersistProfile::general,
                      int bucket_bits = 13)
      : core_(bucket_bits, profile) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  Recovered recover(int slot) const {
    return core_.policy().board().recover(slot);
  }

  bool snapshot_keys(std::vector<std::int64_t>& out) const {
    return core_.durable_keys(out);
  }

  std::size_t size_slow() const { return core_.size_slow(); }
  std::size_t bucket_count() const { return core_.bucket_count(); }

 private:
  mutable HmHashMapCore<DtPolicy, Reclaimer> core_;
};

using DtHashMap = DtHashMapT<>;

// Volatile baseline ("Harris-HashMap"): the untransformed Harris-
// Michael table, the yardstick persistence overhead is measured from.
// No recover()/snapshot surface — like the Harris-LL baseline it is
// not detectable and the fuzzers skip its contents check.
template <typename Reclaimer = mem::EbrReclaimer>
class HarrisHashMapT {
 public:
  explicit HarrisHashMapT(int bucket_bits = 13)
      : core_(bucket_bits) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  std::size_t size_slow() const { return core_.size_slow(); }
  std::size_t bucket_count() const { return core_.bucket_count(); }

 private:
  mutable HmHashMapCore<NullPolicy, Reclaimer> core_;
};

using HarrisHashMap = HarrisHashMapT<>;

}  // namespace repro::ds
