// The original (volatile) Michael-Scott queue.  Conforms to the same
// queue concept as every recoverable queue — dequeue() returns the
// unified DequeueResult — so the bench adapters need no special case.
#pragma once

#include "repro/ds/msqueue_core.hpp"

namespace repro::baselines {

using MsQueue = repro::ds::MsQueueCore<repro::ds::NullPolicy>;

}  // namespace repro::baselines
