// The original (volatile) Michael-Scott queue.  Conforms to the same
// queue concept as every recoverable queue — dequeue() returns the
// unified DequeueResult — so the bench adapters need no special case.
// MsQueueLeaky is the seed's leak-everything ablation ("MS-Queue-leak").
#pragma once

#include "repro/ds/msqueue_core.hpp"

namespace repro::baselines {

template <typename Reclaimer = repro::mem::EbrReclaimer>
using MsQueueT = repro::ds::MsQueueCore<repro::ds::NullPolicy, Reclaimer>;

using MsQueue = MsQueueT<>;
using MsQueueLeaky = MsQueueT<repro::mem::LeakReclaimer>;

}  // namespace repro::baselines
