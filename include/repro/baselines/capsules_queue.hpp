// Michael-Scott queue under the capsules transformation.  Figure 7
// plots Variant::general and Variant::normalized (the normalized
// three-phase form pays extra capsule boundaries per CAS);
// Variant::optimized is available for completeness.
#pragma once

#include <cstdint>

#include "repro/ds/msqueue_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::baselines {

template <typename Reclaimer = repro::mem::EbrReclaimer>
class CapsulesQueueT {
 public:
  using Variant = repro::ds::CapsulesPolicy::Variant;

  explicit CapsulesQueueT(Variant v = Variant::general) : core_(v) {}

  void enqueue(std::uint64_t value) { core_.enqueue(value); }
  repro::ds::DequeueResult dequeue() { return core_.dequeue(); }

 private:
  repro::ds::MsQueueCore<repro::ds::CapsulesPolicy, Reclaimer> core_;
};

using CapsulesQueue = CapsulesQueueT<>;

}  // namespace repro::baselines
