// The original (volatile, non-recoverable) Harris lock-free list: the
// no-op-policy instantiation of the shared core.  Included in Figure 4
// to show the raw cost each detectable transformation adds.
// HarrisListLeaky keeps the seed's raw-new / leak-everything allocation
// as an ablation point ("Harris-LL-leak") so the memory subsystem's win
// stays measurable in-tree.
#pragma once

#include "repro/ds/harris_core.hpp"

namespace repro::baselines {

template <typename Reclaimer = repro::mem::EbrReclaimer>
using HarrisListT = repro::ds::HarrisListCore<repro::ds::NullPolicy, Reclaimer>;

using HarrisList = HarrisListT<>;
using HarrisListLeaky = HarrisListT<repro::mem::LeakReclaimer>;

}  // namespace repro::baselines
