// The original (volatile, non-recoverable) Harris lock-free list: the
// no-op-policy instantiation of the shared core.  Included in Figure 4
// to show the raw cost each detectable transformation adds.
#pragma once

#include "repro/ds/harris_core.hpp"

namespace repro::baselines {

using HarrisList = repro::ds::HarrisListCore<repro::ds::NullPolicy>;

}  // namespace repro::baselines
