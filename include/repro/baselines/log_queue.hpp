// Log-queue baseline: the Michael-Scott queue made recoverable by a
// per-thread persistent intent log — each operation persists a log
// record before touching the queue and completes it afterwards, costing
// one more pwb/pfence pair per operation than the tracking queue.
#pragma once

#include <cstdint>

#include "repro/ds/msqueue_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::baselines {

template <typename Reclaimer = repro::mem::EbrReclaimer>
class LogQueueT {
 public:
  LogQueueT() = default;

  void enqueue(std::uint64_t value) { core_.enqueue(value); }
  repro::ds::DequeueResult dequeue() { return core_.dequeue(); }

 private:
  repro::ds::MsQueueCore<repro::ds::LogPolicy, Reclaimer> core_;
};

using LogQueue = LogQueueT<>;

}  // namespace repro::baselines
