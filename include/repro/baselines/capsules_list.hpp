// Harris list under the capsules transformation (Ben-David et al.),
// the paper's main point of comparison for lists.  Variant::general
// checkpoints a persistent continuation capsule at every shared read;
// Variant::optimized only at helping points and CASes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "repro/ds/harris_core.hpp"
#include "repro/ds/policies.hpp"

namespace repro::baselines {

template <typename Reclaimer = repro::mem::EbrReclaimer>
class CapsulesListT {
 public:
  using Variant = repro::ds::CapsulesPolicy::Variant;

  explicit CapsulesListT(Variant v = Variant::general) : core_(v) {}

  bool insert(std::int64_t key) { return core_.insert(key); }
  bool erase(std::int64_t key) { return core_.erase(key); }
  bool find(std::int64_t key) { return core_.find(key); }

  std::size_t size_slow() const { return core_.size_slow(); }

 private:
  repro::ds::HarrisListCore<repro::ds::CapsulesPolicy, Reclaimer> core_;
};

using CapsulesList = CapsulesListT<>;

}  // namespace repro::baselines
