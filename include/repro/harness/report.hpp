// Paper-style table output: one aligned row per data point, mirroring
// the quantities plotted in the figures so a run's stdout can be
// eyeballed against the paper directly.  These primitives back the
// TableSink in sinks.hpp; benches talk to sinks, not to this layer.
#pragma once

#include <cstdio>
#include <string>

#include "repro/harness/runner.hpp"

namespace repro::harness {

inline void print_figure_header(const std::string& figure,
                                const std::string& what) {
  std::printf("\n== %s — %s ==\n", figure.c_str(), what.c_str());
  std::fflush(stdout);
}

inline void print_columns() {
  std::printf("%-18s %-40s %8s %14s %13s %13s %11s %9s %9s %6s\n",
              "algo", "scenario", "threads", "ops/sec", "pwb/op",
              "pbarrier/op", "psync/op", "coal/op", "alloc/op", "reuse");
  std::fflush(stdout);
}

// The thread count comes from the (self-contained) RunResult.
inline void print_row(const std::string& algo, const std::string& scenario,
                      const RunResult& r) {
  std::printf("%-18s %-40s %8d %14.0f %13.2f %13.2f %11.2f %9.2f %9.2f "
              "%6.2f\n",
              algo.c_str(), scenario.c_str(), r.threads, r.ops_per_sec,
              r.flushes_per_op, r.barriers_per_op, r.psyncs_per_op,
              r.coalesced_pwb_per_op, r.allocs_per_op, r.reuse_ratio);
  std::fflush(stdout);
}

}  // namespace repro::harness
