// Durable-linearizability checker for concurrent crash histories.
//
// The core is a Wing & Gong-style linearizability search: depth-first
// enumeration of linearization orders over a recorded concurrent
// history, pruned by (a) real-time precedence — an operation may only
// linearize next if no other un-linearized operation *responded*
// before it was invoked — and (b) memoization of visited
// (linearized-set, abstract-state, cut-placed) triples, which is what
// keeps the search polynomial-ish on the mostly-sequential histories
// short operations produce.  Sequential specifications are built in
// for the four registry kinds: set (insert/erase/find over keys),
// queue (FIFO), stack (LIFO), and exchanger (two overlapping exchanges
// linearize as a pair that swaps values; a timed-out exchange
// linearizes alone).
//
// The durable extension is the paper's detectability contract lifted
// to concurrent histories.  Operations pending at the crash (invoke
// without response) carry a verdict derived from their thread's
// recovery descriptor:
//
//   must     — the descriptor reports the op completed-with-response:
//              it MUST appear in the linearization, with exactly that
//              response; for queue/stack kinds an effectful must op
//              additionally sits inside the durable cut (see check()
//              for why the set family is exempt).  A durable commit
//              record whose effect is missing from the durable image
//              becomes "no valid linearization", the lost-effect bugs
//              the mutation self-tests plant.
//   may      — announced but not committed (or never announced): the
//              op may or may not have taken effect; the search is free
//              to include it (response derived from the sequential
//              spec at its linearization point) or leave it out.
//   must_not — the model asserts the op left no trace: it is excluded
//              from the search, so a durable image that contains its
//              effect cannot be explained and fails.  (Our structures'
//              descriptor-only recover() never proves this — a pwb'd
//              but unfenced effect can survive an adversarial crash —
//              so the fuzz driver maps only done→must, else→may;
//              must_not is exercised by the golden-history tests and
//              available to stricter recovery models.)
//
// Completed operations (response observed before the crash) always
// linearize with their observed response.
//
// The durable-image constraint (check_durable) is *buffered* durable
// linearizability: the accepted linearization L must contain a cut —
// a position after which the abstract state equals exactly the walked
// durable contents — such that every must-verdict effectful op lies
// inside the cut prefix, and every effectful op after the cut is
// unconstrained (its effect was volatile-only and died with the
// cache).  The cut may not be the end of L: these structures persist
// a new node before publishing it but do not flush links on *read*
// (pre_cas is a no-op in the Isb/DT policies), so a thread can
// complete an operation — even return a response — built on another
// thread's not-yet-durable link, and a crash then rewinds that whole
// suffix.  That suffix is still required to be linearizable (the
// responses really were returned), it just sits after the cut.  What
// the paper's detectability contract pins down is the descriptor:
// done-with-response implies the effect reached the durable image,
// which is exactly the must-inside-the-cut rule.
//
// Verdicts are a deterministic function of the history: the search
// visits moves in index order and the memo table only prunes, so the
// same events always produce the same verdict (the corpus replay test
// pins this).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/harness/history.hpp"

namespace repro::harness::lin {

inline constexpr std::uint64_t kNever = ~std::uint64_t{0};

enum class Pending {
  completed,  // response observed in the history
  must,       // pending at crash, descriptor says completed-with-response
  may,        // pending at crash, outcome unknown
  must_not,   // pending at crash, modelled as having left no trace
};

enum class Semantics { set, queue, stack, exchanger };

struct Op {
  int lane = -1;             // recording thread (diagnostics)
  std::uint64_t id = 0;      // per-lane op index (diagnostics)
  ds::OpKind kind = ds::OpKind::none;
  std::int64_t input = 0;    // key / offered value
  std::uint64_t invoke_ts = 0;
  std::uint64_t response_ts = kNever;  // kNever → pending at crash
  bool ok = false;           // observed or descriptor-reported response
  std::uint64_t result = 0;
  Pending pending = Pending::completed;

  bool fixed_response() const {
    return pending == Pending::completed || pending == Pending::must;
  }
};

struct Spec {
  Semantics kind = Semantics::set;
  std::vector<std::int64_t> initial_keys;     // set
  std::vector<std::uint64_t> initial_values;  // queue front..back / stack bottom..top
  // When set, the linearization must contain a cut whose prefix state
  // equals exactly this durable image, with every must-effectful op
  // inside the prefix (buffered durable linearizability — see the
  // header comment).
  bool check_durable = false;
  std::vector<std::int64_t> durable_keys;
  std::vector<std::uint64_t> durable_values;
  // DFS node budget; exhausting it yields Verdict::budget_exhausted,
  // never a violation.
  std::uint64_t max_states = 1'000'000;
};

enum class Verdict { linearizable, violation, budget_exhausted };

struct Result {
  Verdict verdict = Verdict::linearizable;
  std::uint64_t states = 0;   // DFS nodes explored
  std::string what;           // reason, on violation
  std::vector<int> witness;   // accepting linearization (op indices)
  // Position of the durable cut in `witness` (ops [0, cut) are the
  // durable prefix); -1 when no durable check ran.
  int cut = -1;
};

namespace detail {

// Abstract sequential state; only the member matching Spec::kind is
// used.  Kept small so per-move copies are cheap.
struct SeqState {
  std::vector<std::int64_t> keys;   // sorted
  std::deque<std::uint64_t> fifo;   // front..back
  std::vector<std::uint64_t> lifo;  // bottom..top

  bool has_key(std::int64_t k) const {
    return std::binary_search(keys.begin(), keys.end(), k);
  }
  void add_key(std::int64_t k) {
    keys.insert(std::lower_bound(keys.begin(), keys.end(), k), k);
  }
  void del_key(std::int64_t k) {
    keys.erase(std::lower_bound(keys.begin(), keys.end(), k));
  }
};

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t state_hash(const SeqState& st) {
  std::uint64_t h = 0x5EED;
  for (std::int64_t k : st.keys) {
    h = mix(h, static_cast<std::uint64_t>(k));
  }
  h = mix(h, 0xF1F0);
  for (std::uint64_t v : st.fifo) h = mix(h, v);
  h = mix(h, 0x11F0);
  for (std::uint64_t v : st.lifo) h = mix(h, v);
  return h;
}

using Mask = std::array<std::uint64_t, 2>;  // up to 128 ops

struct MemoKey {
  Mask mask;
  std::uint64_t state;
  bool cut;
  bool operator==(const MemoKey& o) const {
    return mask == o.mask && state == o.state && cut == o.cut;
  }
};
struct MemoHash {
  std::size_t operator()(const MemoKey& k) const {
    return static_cast<std::size_t>(
        mix(mix(k.mask[0], k.mask[1]), k.state + (k.cut ? 0x9E37 : 0)));
  }
};

inline bool bit(const Mask& m, int i) {
  return (m[static_cast<std::size_t>(i) / 64] >>
          (static_cast<std::size_t>(i) % 64)) &
         1u;
}
inline void set_bit(Mask& m, int i) {
  m[static_cast<std::size_t>(i) / 64] |=
      std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
}
inline bool subset(const Mask& sub, const Mask& of) {
  return (sub[0] & of[0]) == sub[0] && (sub[1] & of[1]) == sub[1];
}

// Whether a fixed-response op changes the abstract state (a failed
// mutation and every find leave it untouched; reads need no durable
// trace, so the cut rule only binds effectful ops).
inline bool effectful(Semantics sem, const Op& op) {
  if (!op.ok) return false;
  switch (sem) {
    case Semantics::set:
      return op.kind == ds::OpKind::insert || op.kind == ds::OpKind::erase;
    case Semantics::queue:
      return op.kind == ds::OpKind::enqueue ||
             op.kind == ds::OpKind::dequeue;
    case Semantics::stack:
      return op.kind == ds::OpKind::push || op.kind == ds::OpKind::pop;
    case Semantics::exchanger:
      return false;  // no durable abstract state
  }
  return false;
}

// Applies `op` to `st` under the spec's sequential semantics.
// Fixed-response ops must reproduce their recorded response; open
// (may-pending) ops take whatever response the spec implies.  Returns
// false when the recorded response is impossible in this state.
// Exchanges are handled by the pair logic in the searcher, not here.
inline bool apply(Semantics sem, const Op& op, SeqState& st) {
  switch (sem) {
    case Semantics::set: {
      const bool present = st.has_key(op.input);
      bool expect = false;
      switch (op.kind) {
        case ds::OpKind::insert: expect = !present; break;
        case ds::OpKind::erase:
        case ds::OpKind::find: expect = present; break;
        default: return false;
      }
      if (op.fixed_response() && op.ok != expect) return false;
      if (expect && op.kind == ds::OpKind::insert) st.add_key(op.input);
      if (expect && op.kind == ds::OpKind::erase) st.del_key(op.input);
      return true;
    }
    case Semantics::queue: {
      if (op.kind == ds::OpKind::enqueue) {
        if (op.fixed_response() && !op.ok) return false;
        st.fifo.push_back(static_cast<std::uint64_t>(op.input));
        return true;
      }
      if (op.kind != ds::OpKind::dequeue) return false;
      if (st.fifo.empty()) {
        return !op.fixed_response() || !op.ok;
      }
      if (op.fixed_response() &&
          (!op.ok || op.result != st.fifo.front())) {
        return false;
      }
      st.fifo.pop_front();
      return true;
    }
    case Semantics::stack: {
      if (op.kind == ds::OpKind::push) {
        if (op.fixed_response() && !op.ok) return false;
        st.lifo.push_back(static_cast<std::uint64_t>(op.input));
        return true;
      }
      if (op.kind != ds::OpKind::pop) return false;
      if (st.lifo.empty()) {
        return !op.fixed_response() || !op.ok;
      }
      if (op.fixed_response() &&
          (!op.ok || op.result != st.lifo.back())) {
        return false;
      }
      st.lifo.pop_back();
      return true;
    }
    case Semantics::exchanger:
      // Only timed-out exchanges linearize alone.
      return op.kind == ds::OpKind::exchange &&
             (!op.fixed_response() || !op.ok);
  }
  return false;
}

struct Search {
  const std::vector<Op>& ops;
  const Spec& spec;
  std::vector<int> live;  // indices not dropped as must_not
  Mask required{};        // completed + must ops
  Mask must_eff{};        // must ops whose fixed response is effectful
  std::unordered_set<MemoKey, MemoHash> seen;
  std::uint64_t states = 0;
  bool exhausted = false;
  std::vector<int> order;
  std::size_t best_depth = 0;
  int cut_pos = -1;
  // spec.durable_keys, sorted once up front: durable_matches runs at
  // every DFS node until the cut is placed, so sorting there would be
  // an allocation + O(k log k) in the checker's hottest loop.
  std::vector<std::int64_t> durable_keys_sorted;

  bool durable_matches(const SeqState& st) const {
    switch (spec.kind) {
      case Semantics::set:
        return st.keys == durable_keys_sorted;
      case Semantics::queue:
        return std::equal(st.fifo.begin(), st.fifo.end(),
                          spec.durable_values.begin(),
                          spec.durable_values.end());
      case Semantics::stack:
        return st.lifo == spec.durable_values;
      case Semantics::exchanger:
        return true;
    }
    return true;
  }

  // Two exchanges may pair iff they overlap in real time and the
  // recorded responses (where fixed) cross-match the offered values.
  bool pairable(const Op& a, const Op& b) const {
    if (a.kind != ds::OpKind::exchange ||
        b.kind != ds::OpKind::exchange) {
      return false;
    }
    if (!(a.invoke_ts < b.response_ts && b.invoke_ts < a.response_ts)) {
      return false;
    }
    if (a.fixed_response() &&
        (!a.ok ||
         a.result != static_cast<std::uint64_t>(b.input))) {
      return false;
    }
    if (b.fixed_response() &&
        (!b.ok ||
         b.result != static_cast<std::uint64_t>(a.input))) {
      return false;
    }
    return true;
  }

  // `cut` — whether the durable cut has already been placed on this
  // path; once placed, must-effectful ops may no longer linearize
  // (their effect is durable, so it belongs to the prefix).
  bool dfs(Mask done, const SeqState& st, bool cut) {
    if (++states > spec.max_states) {
      exhausted = true;
      return false;
    }
    // Terminal: every required op linearized, and (when the durable
    // image is being checked) the cut placed somewhere on the path.
    if (subset(required, done) && (cut || !spec.check_durable)) {
      return true;
    }
    // Try placing the cut here: the prefix linearized so far must
    // contain every must-effectful op and reproduce the durable image.
    if (spec.check_durable && !cut && subset(must_eff, done) &&
        durable_matches(st)) {
      cut_pos = static_cast<int>(order.size());
      if (dfs(done, st, true)) return true;
      cut_pos = -1;
    }
    if (!seen.insert({done, state_hash(st), cut}).second) return false;

    // Real-time frontier: the earliest response among un-linearized
    // ops; anything invoked after it is blocked.  (An op's own
    // response cannot precede its invoke, so including i itself in the
    // minimum is harmless.)
    std::uint64_t min_resp = kNever;
    for (int i : live) {
      if (!bit(done, i)) min_resp = std::min(min_resp, ops[i].response_ts);
    }

    for (int i : live) {
      if (bit(done, i) || ops[i].invoke_ts > min_resp) continue;
      if (cut && bit(must_eff, i)) continue;  // durable effect after cut
      const Op& a = ops[i];
      if (spec.kind == Semantics::exchanger &&
          a.kind == ds::OpKind::exchange) {
        if (a.fixed_response() && a.ok) {
          // A successful exchange linearizes as a pair with a partner
          // whose offer it received.  Fixed-fixed pairs are initiated
          // from the lower index only.
          for (int j : live) {
            if (j == i || bit(done, j)) continue;
            const Op& b = ops[j];
            if (b.invoke_ts > min_resp) continue;
            if (b.fixed_response() && (j < i || !b.ok)) continue;
            if (!pairable(a, b)) continue;
            Mask d2 = done;
            set_bit(d2, i);
            set_bit(d2, j);
            order.push_back(i);
            order.push_back(j);
            best_depth = std::max(best_depth, order.size());
            if (dfs(d2, st, cut)) return true;
            order.pop_back();
            order.pop_back();
          }
          continue;
        }
        if (!a.fixed_response()) continue;  // open: pairs only
        // fall through: a timed-out exchange linearizes alone
      }
      SeqState st2 = st;
      if (!apply(spec.kind, a, st2)) continue;
      Mask d2 = done;
      set_bit(d2, i);
      order.push_back(i);
      best_depth = std::max(best_depth, order.size());
      if (dfs(d2, st2, cut)) return true;
      order.pop_back();
    }
    return false;
  }
};

}  // namespace detail

inline Result check(const std::vector<Op>& ops, const Spec& spec) {
  Result res;
  if (ops.size() > 128) {
    res.verdict = Verdict::budget_exhausted;
    res.what = "history larger than the checker's 128-op mask";
    return res;
  }

  detail::Search s{ops, spec, {}, {}, {}, {}, 0, false, {}, 0, -1, {}};
  s.durable_keys_sorted = spec.durable_keys;
  std::sort(s.durable_keys_sorted.begin(), s.durable_keys_sorted.end());
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    const Op& op = ops[static_cast<std::size_t>(i)];
    if (op.pending == Pending::must_not) {
      continue;  // excluded: its effect must be unexplainable
    }
    s.live.push_back(i);
    if (op.fixed_response()) {
      detail::set_bit(s.required, i);
      // The must-inside-the-cut rule ("descriptor committed ⇒ effect
      // durable") is enforced only for the kinds whose structures can
      // honour it.  The queue earns it through the persist-link-
      // before-tail-swing rule (MsQueueCore + IsbPolicy::expose): no
      // thread can durably commit on top of an unfenced link.  The
      // set family cannot: a constant-persistence tracking list lets
      // thread B insert after a node whose *incoming* link is another
      // thread's still-unfenced CAS, and if B's commit record then
      // persists while that upstream link is lost, B's effect is
      // durably unreachable through no fault of B's own placement —
      // closing that window needs link-and-persist (flush-on-read,
      // David et al.), which would forfeit the paper's constant
      // persistence-instruction bound.  For sets a must op therefore
      // still pins the descriptor's exact response in the
      // linearization, but not its durability; the single-threaded
      // fuzzer (crashfuzz.hpp D1-D4), where no cross-thread hostage
      // exists, keeps enforcing effect-durability exactly.
      if (op.pending == Pending::must &&
          (spec.kind == Semantics::queue ||
           spec.kind == Semantics::stack) &&
          detail::effectful(spec.kind, op)) {
        detail::set_bit(s.must_eff, i);
      }
    }
  }

  detail::SeqState init;
  init.keys = spec.initial_keys;
  std::sort(init.keys.begin(), init.keys.end());
  if (spec.kind == Semantics::queue) {
    init.fifo.assign(spec.initial_values.begin(),
                     spec.initial_values.end());
  } else if (spec.kind == Semantics::stack) {
    init.lifo = spec.initial_values;
  }

  const bool ok = s.dfs({}, init, false);
  res.states = s.states;
  if (ok) {
    res.verdict = Verdict::linearizable;
    res.witness = s.order;
    res.cut = spec.check_durable ? s.cut_pos : -1;
    return res;
  }
  if (s.exhausted) {
    res.verdict = Verdict::budget_exhausted;
    res.what = "checker state budget exhausted";
    return res;
  }
  res.verdict = Verdict::violation;
  char buf[176];
  std::snprintf(buf, sizeof(buf),
                "no valid linearization%s: %zu ops (%zu required), "
                "deepest prefix %zu, %llu states explored",
                spec.check_durable ? " with a durable cut" : "",
                ops.size(),
                static_cast<std::size_t>(
                    __builtin_popcountll(s.required[0]) +
                    __builtin_popcountll(s.required[1])),
                s.best_depth,
                static_cast<unsigned long long>(s.states));
  res.what = buf;
  return res;
}

// Builds checker ops from a flat event list (e.g. a parsed history
// dump): one Op per invoke event, completed when its response event
// exists, otherwise pending with the default `may` verdict (the fuzz
// driver upgrades verdicts from the recovery descriptors afterwards).
// Events of one lane must appear in program order; lanes may be
// interleaved arbitrarily (a merged, timestamp-sorted dump is fine).
inline std::vector<Op> ops_from_events(
    const std::vector<HistoryEvent>& events) {
  std::vector<Op> out;
  // Per-lane index of the op awaiting its response.
  std::vector<int> open;
  for (const HistoryEvent& e : events) {
    if (e.type == EventType::crash) continue;
    if (e.lane >= static_cast<int>(open.size())) {
      open.resize(static_cast<std::size_t>(e.lane) + 1, -1);
    }
    if (e.type == EventType::invoke) {
      Op op;
      op.lane = e.lane;
      op.id = e.op;
      op.kind = e.kind;
      op.input = e.input;
      op.invoke_ts = e.ts;
      op.pending = Pending::may;
      open[static_cast<std::size_t>(e.lane)] =
          static_cast<int>(out.size());
      out.push_back(op);
    } else {
      const int idx = open[static_cast<std::size_t>(e.lane)];
      if (idx < 0) continue;  // response without invoke: malformed line
      Op& op = out[static_cast<std::size_t>(idx)];
      op.response_ts = e.ts;
      op.ok = e.ok;
      op.result = e.result;
      op.pending = Pending::completed;
      open[static_cast<std::size_t>(e.lane)] = -1;
    }
  }
  return out;
}

inline std::vector<Op> ops_from_history(const HistoryRecorder& h) {
  return ops_from_events(h.merged());
}

// Resolves a lane's pending op in place to a completed one — the
// stalled-thread scenario's shape: a worker parked across a crash and
// recovery resumes afterwards and finally responds.  The op keeps its
// invoke, gains a response at `response_ts`, and its verdict becomes
// `completed` with {ok, result} (overriding any must/may verdict a
// recovery descriptor assigned while it was parked).  Returns false if
// the lane has no pending op.
inline bool resolve_pending(std::vector<Op>& ops, int lane,
                            std::uint64_t response_ts, bool ok,
                            std::uint64_t result) {
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (it->lane == lane && it->response_ts == kNever) {
      it->response_ts = response_ts;
      it->ok = ok;
      it->result = result;
      it->pending = Pending::completed;
      return true;
    }
  }
  return false;
}

}  // namespace repro::harness::lin
