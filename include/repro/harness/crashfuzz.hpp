// Crash-point fuzzers: the dynamic half of the crash-simulation
// engine.  Two drivers share the shadow-NVM machinery:
//
//   fuzz_one / fuzz_structure — the deterministic single-threaded
//     driver (below), verifying the descriptor-level detectability
//     contract D1-D4 against an exact op-by-op model.
//   concurrent_fuzz_one / concurrent_fuzz_structure — the
//     multi-threaded driver (end of this header): N racing workers
//     recorded into a history (harness/history.hpp), a crash armed at
//     a persistence-instruction boundary that lands on whichever
//     thread issues it, and the durable image verified by the
//     durable-linearizability checker (harness/linearize.hpp).
//
// One single-threaded fuzz iteration builds a fresh structure,
// prefills it, switches the pmem layer into shadow-NVM mode, arms a
// crash at a PRNG-chosen persistence-instruction boundary
// (pmem/crash.hpp), and drives a deterministic single-threaded
// workload until the crash fires.  The
// simulated power failure then rewinds every tracked word to the
// durable image (pmem/shadow.hpp, adversarial fidelity: write-backs
// pending at the crash complete or not per the same PRNG), and the
// verifier replays AnnouncementBoard::recover() against that image and
// checks the detectability contract:
//
//   D1  The durable descriptor matches exactly one operation the
//       thread ran: the last durably-committed one, or the in-flight
//       one.  Anything else is a lost or duplicated commit.
//   D2  If it names a completed (pre-crash) operation, it must carry
//       that operation's full response (kind, key, ok, result), and
//       every later completed operation must have been a find — the
//       only operations entitled to leave no durable trace (the
//       read-only optimization).
//   D3  If it names the in-flight operation as done, the response must
//       be the one the durable contents imply — completed-with-
//       response XOR not-applied, never "completed" with the effect
//       lost.
//   D4  The durable contents (lists: logical key walk; queues: value
//       walk) must equal the model after the last completed operation,
//       with or without the in-flight operation's effect — no lost or
//       duplicated effects, and the walk itself must be well-formed
//       (no durable links into never-persisted memory, no cycles).
//
// Structures without a snapshot surface (BST/skiplist/stack/
// exchanger) are verified against D1-D2 and the D3 response-shape
// rules only.
//
// Determinism: everything derives from {seed, iteration}; a reported
// failure's {structure, seed, crash_point} triple replays bit-for-bit
// through fuzz_one() (the REPRO_SEED satellite feeds the same base
// seed to benches and tests).  Reclamation is paused for the span of
// an iteration so a rewound durable link can never target a recycled
// cell; after verification the crash is undone (shadow::uncrash) and
// the structure torn down through the normal destructor path — a real
// crash never runs destructors, but a simulation has to.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/harness/history.hpp"
#include "repro/harness/linearize.hpp"
#include "repro/harness/registry.hpp"
#include "repro/harness/runner.hpp"
#include "repro/harness/workload.hpp"
#include "repro/mem/ebr.hpp"
#include "repro/mem/hp.hpp"
#include "repro/mem/pop.hpp"
#include "repro/pmem/crash.hpp"
#include "repro/pmem/persist.hpp"
#include "repro/pmem/shadow.hpp"

namespace repro::harness {

// Which adversarial crash family an iteration runs (README "Crash
// scenarios").  single_crash is the PR 4/5 behaviour: one full-system
// stop, one recovery pass.  The single-threaded driver additionally
// understands repeated_crash; the concurrent driver understands
// thread_death and stalled_thread.
enum class ScenarioKind {
  single_crash,    // one full-system stop, one recovery pass
  repeated_crash,  // chained crashes landing inside recovery (K <= 4)
  thread_death,    // one thread dies; survivors race on; slot adopted
  stalled_thread,  // a worker parks across crash+recovery, resumes late
  reclaim_crash,   // erase-heavy mix; parked cells checked for durability
};

inline const char* scenario_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::repeated_crash: return "repeated-crash";
    case ScenarioKind::thread_death: return "thread-death";
    case ScenarioKind::stalled_thread: return "stalled-thread";
    case ScenarioKind::reclaim_crash: return "reclaim-crash";
    default: return "single-crash";
  }
}

// REPRO_SCENARIO parsing (bench drivers).  Returns false on an
// unknown name, leaving `out` untouched.
inline bool scenario_from_name(const std::string& name,
                               ScenarioKind& out) {
  for (ScenarioKind k :
       {ScenarioKind::single_crash, ScenarioKind::repeated_crash,
        ScenarioKind::thread_death, ScenarioKind::stalled_thread,
        ScenarioKind::reclaim_crash}) {
    if (name == scenario_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

// The crash-schedule dimension of an ExperimentSpec: how many crash
// points to fuzz per structure, and where they land.
struct CrashPlan {
  std::uint64_t seed = 0;  // 0 → global_seed() (REPRO_SEED)
  // Fixed crash point: the n-th persistence instruction of every
  // iteration.  0 → drawn per iteration from [1, max_events].
  std::uint64_t after_n_events = 0;
  int points = 0;           // fuzz iterations per structure; 0 → off
  std::uint64_t max_events = 192;  // horizon for random crash points
  int ops_budget = 256;     // ops per iteration if the crash never fires
  pmem::shadow::CrashFidelity fidelity =
      pmem::shadow::CrashFidelity::adversarial;
  ScenarioKind scenario = ScenarioKind::single_crash;
  // repeated_crash: maximum chained crashes after the first (clamped to
  // [1, 3], so one iteration sees at most 4 power failures).  Each
  // chain point is derived from {iter_seed, crash_point, depth}, so a
  // {seed, crash_point} pair replays the whole chain bit-for-bit;
  // `replay_chain` overrides the derivation with explicit points (the
  // reproducer's crash_chain field).
  int chain_depth = 3;
  std::vector<std::uint64_t> replay_chain;

  std::uint64_t effective_seed() const {
    return seed != 0 ? seed : global_seed();
  }
};

// One confirmed detectability violation, with everything needed to
// replay it (the CI artifact's payload).  `seed` is the per-iteration
// seed for a fuzz_one() replay; `base_seed` is the run's plan seed —
// REPRO_SEED=<base_seed> re-runs the whole failing point, reaching the
// same iteration.
struct FuzzFailure {
  std::string structure;
  std::uint64_t seed = 0;         // iteration seed fed to fuzz_one
  std::uint64_t base_seed = 0;    // the run's CrashPlan seed
  std::uint64_t crash_point = 0;  // persistence-instruction index
  int iteration = -1;
  std::string what;
  // repeated_crash only: the chained crash points that had fired before
  // the violation (in order).  Empty for the single-crash family, so
  // old-format reproducers stay valid.
  std::vector<std::uint64_t> crash_chain;
};

// Aggregate over one structure's fuzz run.
struct FuzzReport {
  int points = 0;      // iterations executed
  int crashes = 0;     // iterations where the crash actually fired
  // repeated_crash: crashes that landed inside a recovery pass, on top
  // of `crashes` (which keeps its one-per-iteration meaning so the
  // corpus replay invariants hold unchanged).
  int chain_crashes = 0;
  int violations = 0;  // failed contract checks (0 == pass)
  std::uint64_t total_ops = 0;
  double recovery_us_total = 0;
  std::vector<FuzzFailure> failures;  // first few, for the reproducer
};

namespace fuzz_detail {

// What the driver remembers about one completed operation.
struct OpRec {
  std::uint64_t board_seq = 0;  // descriptor seq after the op (volatile)
  ds::OpKind kind = ds::OpKind::none;
  std::int64_t key = 0;
  bool ok = false;
  std::uint64_t result = 0;
  bool mutating = false;  // insert/erase/enqueue/dequeue/push/pop
};

// One OpKind-to-string mapping for the whole harness: history.hpp's
// op_kind_name (already in scope via the include above).
using harness::op_kind_name;

// Contents models.  The set model mirrors a list's logical key set;
// the queue model mirrors values front to back.
struct Model {
  std::set<std::int64_t> keys;
  std::vector<std::uint64_t> values;

  void apply_set(ds::OpKind k, std::int64_t key) {
    if (k == ds::OpKind::insert) keys.insert(key);
    if (k == ds::OpKind::erase) keys.erase(key);
  }
  void apply_queue(ds::OpKind k, std::uint64_t v) {
    if (k == ds::OpKind::enqueue) values.push_back(v);
    if (k == ds::OpKind::dequeue && !values.empty()) {
      values.erase(values.begin());
    }
  }
};

inline bool set_equals(const std::set<std::int64_t>& model,
                       std::vector<std::int64_t> walked) {
  std::sort(walked.begin(), walked.end());
  return walked.size() == model.size() &&
         std::equal(walked.begin(), walked.end(), model.begin());
}

// The recovery pass itself (AnnouncementBoard::recover) is pure loads,
// so a crash re-armed "inside recovery" would have no persistence
// instruction to land on.  Real recovery procedures checkpoint what
// they computed, and that consolidation write is exactly where the
// repeated-crash adversary aims: after every recovery pass the driver
// persists a {seq, valid} pair on two separate cache lines with the
// ordered protocol
//
//   seq := epoch;   pwb(seq);   pfence;        <- the ordering fence
//   valid := epoch; pwb(valid); pfence;
//
// whose invariant — valid durable at epoch e implies seq durable at e —
// is checked after each chained crash.  REPRO_MUTATE_DROP_RECOVERY_FENCE
// elides the first pfence, leaving both lines pending at the second
// fence; an adversarial crash there can commit valid while dropping
// seq, the classic recovery-path ordering bug this family exists to
// catch (the repeated-crash mutation self-test pins the detection
// budget).
struct RecoverySeal {
  struct alignas(64) Cell {
    pmem::persist<std::uint64_t> v;
  };
  Cell seq;
  Cell valid;

  // Persistence instructions one write() issues: 4 unmutated, 3 with
  // the fence dropped.  Chain points are drawn from [1, kSealWindow];
  // a point past the seal's instruction stream simply lets the seal
  // complete and ends the chain.
  static constexpr std::uint64_t kSealWindow = 5;

  void write(std::uint64_t epoch) {
    seq.v.store(epoch);
    pmem::flush(&seq.v);
#if !defined(REPRO_MUTATE_DROP_RECOVERY_FENCE)
    pmem::fence();
#endif
    valid.v.store(epoch);
    pmem::flush(&valid.v);
    pmem::fence();
  }

  // Post-crash invariant over the (physically rewound) durable values.
  bool durable_consistent() const {
    const std::uint64_t s = seq.v.load();
    const std::uint64_t ok = valid.v.load();
    return ok == 0 || s >= ok;
  }
};

}  // namespace fuzz_detail

// Runs one deterministic fuzz iteration.  `crash_point` of 0 lets the
// iteration's own PRNG draw it (as fuzz_structure does); a non-zero
// value replays an exact reported failure.  Appends to `report`.
inline void fuzz_one(const AlgoEntry& algo, const CrashPlan& plan,
                     std::uint64_t iter_seed, std::uint64_t crash_point,
                     int iteration, FuzzReport& report) {
  using namespace fuzz_detail;
  namespace shadow = pmem::shadow;

  Rng rng(iter_seed);
  // The crash-point draw is consumed unconditionally so that replaying
  // a reported failure with an explicit crash_point leaves the Rng in
  // the same state as the original iteration — otherwise every
  // subsequent prefill/op draw would shift by one and the replayed
  // workload would differ.
  if (plan.after_n_events != 0) {
    if (crash_point == 0) crash_point = plan.after_n_events;
  } else {
    const std::uint64_t drawn = 1 + rng.below(plan.max_events);
    if (crash_point == 0) crash_point = drawn;
  }

  ++report.points;
  // Retired cells must stay intact until the durable image has been
  // verified (a rewound link may point at them); the braces end the
  // pause before the final quiesce() so the iteration's limbo actually
  // drains.
  {
  mem::ReclaimPause pause;
  auto holder = algo.make();
  Structure* s = holder.get();
  const bool is_set = algo.kind == Kind::set;
  const bool is_queue = algo.kind == Kind::queue;
  auto* set = is_set ? dynamic_cast<SetIface*>(s) : nullptr;
  auto* queue = is_queue ? dynamic_cast<QueueIface*>(s) : nullptr;
  auto* stack =
      algo.kind == Kind::stack ? dynamic_cast<StackIface*>(s) : nullptr;
  auto* ex = algo.kind == Kind::exchanger
                 ? dynamic_cast<ExchangerIface*>(s)
                 : nullptr;
  // The durable-image walk vouches for pointers by checking them
  // against the pool slab directory; the no-reclaim ablations allocate
  // with raw `new` outside any pool, so they are verified at the
  // descriptor level only.
  const bool contents_checked = s->has_snapshot() &&
                                (is_set || is_queue) &&
                                !algo.has_trait("no-reclaim");

  // Chained crash points that have fired so far this iteration
  // (repeated_crash); recorded into any failure as its crash_chain.
  std::vector<std::uint64_t> chain_points;
  auto fail = [&](const std::string& what) {
    ++report.violations;
    if (report.failures.size() < 8) {
      FuzzFailure f;
      f.structure = algo.name;
      f.seed = iter_seed;
      f.base_seed = plan.effective_seed();
      f.crash_point = crash_point;
      f.iteration = iteration;
      f.what = what;
      f.crash_chain = chain_points;
      report.failures.push_back(std::move(f));
    }
  };

  // Prefill before shadow tracking starts: its state is durable by
  // construction (persisted before the crash plan began).
  constexpr std::int64_t kKeyRange = 24;
  Model model;
  if (set != nullptr) {
    for (std::int64_t k = 1; k <= kKeyRange; ++k) {
      if (rng.below(2) == 0 && set->insert(k)) model.keys.insert(k);
    }
  } else if (queue != nullptr) {
    for (std::uint64_t v = 1; v <= 8; ++v) {
      queue->enqueue(v);
      model.values.push_back(v);
    }
  } else if (stack != nullptr) {
    for (std::uint64_t v = 1; v <= 8; ++v) stack->push(v);
  }

  const int slot = ds::thread_slot();
  const ds::Recovered base = s->recover(slot);

  std::vector<OpRec> done;
  done.reserve(static_cast<std::size_t>(plan.ops_budget));
  bool crashed = false;
  OpRec inflight;

  {
    pmem::ModeGuard mode(pmem::Mode::shadow);
    shadow::reset();
    pmem::crash::arm(crash_point);
    try {
      for (int o = 0; o < plan.ops_budget; ++o) {
        OpRec rec;
        if (set != nullptr) {
          rec.key = 1 + static_cast<std::int64_t>(
                            rng.below(static_cast<std::uint64_t>(
                                kKeyRange)));
          const std::uint64_t dice = rng.below(10);
          if (plan.scenario == ScenarioKind::reclaim_crash) {
            // Erase-biased: each successful erase retires a node, so
            // the persistence-instruction stream is dense in
            // retire/scan-path instructions and the armed crash point
            // lands inside reclamation far more often.
            rec.kind = dice < 3   ? ds::OpKind::insert
                       : dice < 9 ? ds::OpKind::erase
                                  : ds::OpKind::find;
          } else {
            rec.kind = dice < 4   ? ds::OpKind::insert
                       : dice < 8 ? ds::OpKind::erase
                                  : ds::OpKind::find;
          }
          rec.mutating = rec.kind != ds::OpKind::find;
          inflight = rec;
          switch (rec.kind) {
            case ds::OpKind::insert: rec.ok = set->insert(rec.key); break;
            case ds::OpKind::erase: rec.ok = set->erase(rec.key); break;
            default: rec.ok = set->find(rec.key); break;
          }
          rec.result = rec.ok ? 1 : 0;
          if (rec.mutating && rec.ok) model.apply_set(rec.kind, rec.key);
        } else if (queue != nullptr) {
          if (rng.below(2) == 0) {
            const std::uint64_t v = 1 + (rng.next() >> 1);
            rec.kind = ds::OpKind::enqueue;
            rec.key = static_cast<std::int64_t>(v);
            rec.mutating = true;
            inflight = rec;
            queue->enqueue(v);
            rec.ok = true;
            rec.result = v;
            model.apply_queue(rec.kind, v);
          } else {
            rec.kind = ds::OpKind::dequeue;
            rec.mutating = true;
            inflight = rec;
            std::uint64_t out = 0;
            rec.ok = queue->dequeue(out);
            rec.result = out;
            if (rec.ok) model.apply_queue(rec.kind, 0);
          }
        } else if (stack != nullptr) {
          if (rng.below(2) == 0) {
            const std::uint64_t v = 1 + (rng.next() >> 1);
            rec.kind = ds::OpKind::push;
            rec.key = static_cast<std::int64_t>(v);
            rec.mutating = true;
            inflight = rec;
            stack->push(v);
            rec.ok = true;
            rec.result = v;
          } else {
            rec.kind = ds::OpKind::pop;
            rec.mutating = true;
            inflight = rec;
            std::uint64_t out = 0;
            rec.ok = stack->pop(out);
            rec.result = out;
          }
        } else {
          const std::uint64_t v = rng.next() >> 1;
          rec.kind = ds::OpKind::exchange;
          rec.key = static_cast<std::int64_t>(v);
          rec.mutating = true;
          inflight = rec;
          std::uint64_t out = 0;
          rec.ok = ex->exchange(v, 2, out);  // unpaired: times out
          rec.result = out;
        }
        rec.board_seq = s->recover(slot).seq;  // volatile ground truth
        done.push_back(rec);
      }
    } catch (const pmem::crash::CrashUnwind&) {
      crashed = true;
    }
    pmem::crash::disarm();

    if (crashed) {
      ++report.crashes;
      // Crash-during-reclaim invariant, checked against the *pre-rewind*
      // tracking state (dirty flags are consumed by shadow::crash):
      // every parked cell — retired into any scheme's limbo/batch under
      // the iteration's ReclaimPause — must be durably equal to its
      // volatile contents.  persist-before-retire (flush+fence in
      // mem::detail::persist_retired) is what guarantees it; the
      // REPRO_MUTATE_DROP_RETIRE_PERSIST build elides that fence and
      // must be caught here (a retired-but-dirty cell means a rewound
      // durable link could reach a torn image of it).
      if (plan.scenario == ScenarioKind::reclaim_crash) {
        struct ParkedScan {
          std::size_t parked = 0;
          std::size_t dirty = 0;
        } pscan;
        mem::for_each_parked_cell(
            &pscan, [](void* ctx, const void* cell, std::size_t bytes) {
              auto* d = static_cast<ParkedScan*>(ctx);
              ++d->parked;
              if (pmem::shadow::range_dirty(cell, bytes)) ++d->dirty;
            });
        if (pscan.dirty != 0) {
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "%zu of %zu parked cells hold unpersisted "
                        "stores at crash (persist-before-retire)",
                        pscan.dirty, pscan.parked);
          fail(buf);
        }
      }
      // Power failure: rewind to the durable image.
      Rng coin_rng(mix_seed(iter_seed, crash_point));
      shadow::crash(plan.fidelity,
                    [&coin_rng] { return coin_rng.below(2) == 0; });

      const auto t0 = std::chrono::steady_clock::now();
      const ds::Recovered rec = s->recover(slot);
      report.recovery_us_total +=
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();

      const std::uint64_t last_seq =
          done.empty() ? base.seq : done.back().board_seq;
      const std::uint64_t inflight_seq = last_seq + 1;

      // Durable contents, walked while the structure physically holds
      // the durable image.
      bool walk_ok = true;
      std::vector<std::int64_t> durable_keys;
      std::vector<std::uint64_t> durable_values;
      if (contents_checked) {
        walk_ok = is_set ? s->snapshot_keys(durable_keys)
                         : s->snapshot_values(durable_values);
        if (!walk_ok) {
          fail("durable image walk failed: link into never-persisted "
               "memory or a cycle");
        }
      }

      // D4: contents must be the model with or without the in-flight
      // effect.
      bool inflight_effect_applied = false;
      if (contents_checked && walk_ok) {
        Model with = model;  // model already reflects completed ops
        bool ambiguous = false;  // effect is a no-op (e.g. failed erase)
        if (is_set) {
          Model without = model;
          if (inflight.kind != ds::OpKind::none && inflight.mutating) {
            with.apply_set(inflight.kind, inflight.key);
          }
          const bool matches_without =
              set_equals(without.keys, durable_keys);
          const bool matches_with = set_equals(with.keys, durable_keys);
          ambiguous = with.keys == without.keys;
          inflight_effect_applied = matches_with && !ambiguous;
          if (!matches_without && !matches_with) {
            fail("durable set contents match neither pre- nor "
                 "post-in-flight model");
          }
        } else {
          Model without = model;
          if (inflight.kind == ds::OpKind::enqueue) {
            with.apply_queue(ds::OpKind::enqueue,
                             static_cast<std::uint64_t>(inflight.key));
          } else if (inflight.kind == ds::OpKind::dequeue) {
            with.apply_queue(ds::OpKind::dequeue, 0);
          }
          const bool matches_without = durable_values == without.values;
          const bool matches_with = durable_values == with.values;
          ambiguous = with.values == without.values;
          inflight_effect_applied = matches_with && !ambiguous;
          if (!matches_without && !matches_with) {
            fail("durable queue contents match neither pre- nor "
                 "post-in-flight model");
          }
        }
      }

      // D1-D3: descriptor vs. the thread's operation history.
      if (rec.seq == inflight_seq) {
        // The in-flight operation's announcement reached the durable
        // image.  Pending is always legitimate; done must carry a
        // response consistent with the durable contents.
        if (rec.completed) {
          if (contents_checked && walk_ok && inflight.mutating) {
            bool response_ok = true;
            if (is_set) {
              const bool present = model.keys.count(inflight.key) > 0;
              const bool expect_ok =
                  inflight.kind == ds::OpKind::insert ? !present
                                                      : present;
              // A committed-with-success mutation must have its effect
              // durable; a committed no-op must not have one.
              response_ok = rec.ok == expect_ok &&
                            (!rec.ok || inflight_effect_applied);
            } else if (inflight.kind == ds::OpKind::enqueue) {
              response_ok = rec.ok && inflight_effect_applied;
            } else {  // dequeue
              const bool had = !model.values.empty();
              response_ok =
                  rec.ok == had &&
                  (!rec.ok ||
                   (inflight_effect_applied &&
                    rec.result == model.values.front()));
            }
            if (!response_ok) {
              fail(std::string("in-flight ") + op_kind_name(inflight.kind) +
                   " committed durably but its response/effect "
                   "disagree with the durable contents");
            }
          }
        } else if (rec.kind != inflight.kind ||
                   rec.key != inflight.key) {
          fail("durable announcement names a different operation than "
               "the in-flight one");
        }
      } else {
        // Must be the last durably-committed operation, every later
        // completed op a find.  Only ops that *announced* (bumped the
        // board seq — finds without a DetectableOp never touch the
        // descriptor) can be what the durable descriptor describes.
        int match = -1;
        for (int j = static_cast<int>(done.size()) - 1; j >= 0; --j) {
          const auto ju = static_cast<std::size_t>(j);
          const std::uint64_t prev_seq =
              j == 0 ? base.seq : done[ju - 1].board_seq;
          if (done[ju].board_seq == rec.seq &&
              done[ju].board_seq != prev_seq) {
            match = j;
            break;
          }
        }
        if (match < 0 && rec.seq == base.seq) {
          // Rewound to the pre-workload state: legal only if no
          // completed op was obliged to leave a trace, and the
          // descriptor is byte-for-byte the pre-workload one.
          bool all_traceless = true;
          for (const OpRec& r : done) all_traceless &= !r.mutating;
          if (!all_traceless) {
            fail("durable descriptor predates committed mutations "
                 "(lost commit)");
          } else if (rec.completed != base.completed ||
                     rec.kind != base.kind || rec.key != base.key ||
                     rec.ok != base.ok || rec.result != base.result) {
            fail("pre-workload descriptor corrupted across the crash");
          }
        } else if (match < 0) {
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "durable descriptor seq %llu matches no "
                        "operation this thread ran",
                        static_cast<unsigned long long>(rec.seq));
          fail(buf);
        } else {
          const OpRec& m = done[static_cast<std::size_t>(match)];
          if (!rec.completed || rec.kind != m.kind || rec.key != m.key ||
              rec.ok != m.ok || rec.result != m.result) {
            fail(std::string("durable descriptor for completed ") +
                 op_kind_name(m.kind) +
                 " lost or corrupted its response");
          }
          for (std::size_t j = static_cast<std::size_t>(match) + 1;
               j < done.size(); ++j) {
            if (done[j].mutating) {
              fail("a later committed mutation left no durable trace "
                   "(lost commit)");
              break;
            }
          }
        }
      }

      // Repeated-crash scenario: the adversary crashes again inside
      // the recovery pass — at the RecoverySeal consolidation write —
      // up to chain_depth times, re-recovering after each and holding
      // recovery to idempotence.  The machine stays crashed between
      // links (each shadow::crash keeps the accumulated undo log); the
      // single uncrash() below restores the whole pre-crash state.
      if (plan.scenario == ScenarioKind::repeated_crash) {
        fuzz_detail::RecoverySeal seal;
        ds::Recovered prev = rec;
        const int depth_cap = std::clamp(plan.chain_depth, 1, 3);
        for (int depth = 0; depth < depth_cap; ++depth) {
          const auto du = static_cast<std::uint64_t>(depth);
          const std::uint64_t chain_point =
              static_cast<std::size_t>(depth) < plan.replay_chain.size()
                  ? plan.replay_chain[static_cast<std::size_t>(depth)]
                  : 1 + mix_seed(mix_seed(iter_seed, crash_point), du) %
                            fuzz_detail::RecoverySeal::kSealWindow;
          pmem::crash::arm(chain_point);
          bool chained = false;
          try {
            seal.write(du + 1);
          } catch (const pmem::crash::CrashUnwind&) {
            chained = true;
          }
          pmem::crash::disarm();
          if (!chained) break;  // seal completed; the chain ends here
          ++report.chain_crashes;
          chain_points.push_back(chain_point);
          Rng chain_coin(mix_seed(mix_seed(iter_seed, crash_point),
                                  0x5EA1'0000ull + du));
          shadow::crash(
              plan.fidelity,
              [&chain_coin] { return chain_coin.below(2) == 0; },
              /*keep_undo=*/true);
          if (!seal.durable_consistent()) {
            fail("recovery seal ordering violated: valid durable "
                 "without its seq (crash inside recover())");
          }
          // Idempotence: the K-th recovery pass must return the
          // verdict the first one did — the chained crash could only
          // have touched the seal's own lines.
          const auto t1 = std::chrono::steady_clock::now();
          const ds::Recovered again = s->recover(slot);
          report.recovery_us_total +=
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t1)
                  .count();
          if (again.seq != prev.seq ||
              again.completed != prev.completed ||
              again.kind != prev.kind || again.key != prev.key ||
              again.ok != prev.ok || again.result != prev.result) {
            fail("recovery is not idempotent across a crash inside "
                 "recover()");
          }
          // Nor can the structure's durable contents have moved.
          if (contents_checked && walk_ok) {
            std::vector<std::int64_t> keys_again;
            std::vector<std::uint64_t> values_again;
            const bool rewalk_ok = is_set
                                       ? s->snapshot_keys(keys_again)
                                       : s->snapshot_values(values_again);
            if (!rewalk_ok || (is_set ? keys_again != durable_keys
                                      : values_again != durable_values)) {
              fail("chained recovery mutated the durable contents");
            }
          }
          prev = again;
        }
      }

      // Back to the pre-crash machine state so teardown and
      // reclamation run on consistent memory.
      shadow::uncrash();
    }
    shadow::reset();
  }

  report.total_ops += done.size();
  holder.reset();
  }  // ReclaimPause ends here
  mem::EpochDomain::instance().quiesce();
  mem::PopDomain::instance().quiesce();
  mem::HpDomain::instance().quiesce();
}

// Fuzzes one structure across plan.points crash points.
inline FuzzReport fuzz_structure(const AlgoEntry& algo,
                                 const CrashPlan& plan) {
  FuzzReport report;
  const std::uint64_t base = plan.effective_seed();
  for (int i = 0; i < plan.points; ++i) {
    fuzz_one(algo, plan, mix_seed(base, static_cast<std::uint64_t>(i)),
             0, i, report);
  }
  return report;
}

// Writes the failing reproducers as JSON lines (the CI artifact).
// Replay either the whole failing point —
//   REPRO_SEED=<base_seed> ./crash_recovery
//     --benchmark_filter='crash-fuzz/<structure>/'
// — or the single iteration, fuzz_one(algo, plan, seed, crash_point,
// ...), in a unit test.  The first write of a process truncates the
// file; later failing structures in the same run append, so a
// multi-structure regression keeps every reproducer.
inline void write_reproducer(const FuzzReport& report,
                             const std::string& path) {
  static bool truncated_once = false;
  std::FILE* f = std::fopen(path.c_str(), truncated_once ? "a" : "w");
  if (f == nullptr) return;
  truncated_once = true;
  for (const FuzzFailure& x : report.failures) {
    std::fprintf(
        f,
        "{\"structure\":\"%s\",\"seed\":%llu,\"base_seed\":%llu,"
        "\"crash_point\":%llu,\"iteration\":%d",
        x.structure.c_str(), static_cast<unsigned long long>(x.seed),
        static_cast<unsigned long long>(x.base_seed),
        static_cast<unsigned long long>(x.crash_point), x.iteration);
    if (!x.crash_chain.empty()) {
      // Extended (repeated-crash) format; absent for single-crash
      // failures so existing consumers keep parsing.
      std::fprintf(f, ",\"crash_chain\":[");
      for (std::size_t i = 0; i < x.crash_chain.size(); ++i) {
        std::fprintf(f, "%s%llu", i == 0 ? "" : ",",
                     static_cast<unsigned long long>(x.crash_chain[i]));
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, ",\"what\":\"%s\"}\n", x.what.c_str());
  }
  std::fclose(f);
}

// ---------------------------------------------------------------------
// Concurrent crash-point fuzzing.
//
// One iteration spawns `threads` racing workers over one structure,
// each recorded into its own history lane; the armed crash lands on
// whichever thread issues the chosen persistence instruction, the
// power-failed latch (pmem/crash.hpp) stops every other worker at its
// next tracked store or persistence instruction, and operations on
// pure-load paths are cut off by the recording adapters'
// crash::check().  After the workers unwind, the durable image is
// rewound and verified by the durable-linearizability checker: every
// completed op must linearize with its observed response, each
// thread's pending-at-crash op linearizes as `must` (with the
// descriptor's response, inside the durable cut if effectful) iff its
// recovery descriptor reports completed-with-response, else `may`,
// and for structures with a snapshot surface the walked durable
// contents must equal the cut prefix's state (buffered durable
// linearizability — see linearize.hpp for why the cut, not the end).
//
// Unlike the single-threaded driver, a {seed, crash_point} pair does
// not replay the interleaving bit-for-bit — the schedule is the
// dimension being explored — so failures carry the *recorded history*
// (JSONL), which re-checks deterministically: the same events always
// produce the same verdict.  Iterations where the countdown outlives
// the workload still run the checker as a plain concurrent
// linearizability test (no durable constraint).
// ---------------------------------------------------------------------

struct ConcurrentCrashPlan {
  int threads = 3;
  int ops_per_thread = 10;  // threads * ops_per_thread must stay <= 128
  std::uint64_t seed = 0;   // 0 → global_seed() (REPRO_SEED)
  int points = 0;           // fuzz iterations per structure; 0 → off
  // Horizon for the random crash-point draw; sized so most draws land
  // inside the workload's persistence-instruction stream.
  std::uint64_t max_events = 160;
  pmem::shadow::CrashFidelity fidelity =
      pmem::shadow::CrashFidelity::adversarial;
  std::uint64_t checker_states = 4'000'000;  // DFS node budget
  // single_crash (the PR 5 behaviour), thread_death, or
  // stalled_thread; repeated_crash belongs to the single-threaded
  // driver.
  ScenarioKind scenario = ScenarioKind::single_crash;
  // stalled_thread: horizon for the stall-point draw (the stalled
  // worker parks at that persistence instruction, strictly before the
  // crash point).  0 → max_events / 2.
  std::uint64_t stall_horizon = 0;

  std::uint64_t effective_seed() const {
    return seed != 0 ? seed : global_seed();
  }
};

// One confirmed violation.  The history replays deterministically
// through the checker (tests/test_corpus.cpp shows how); {base_seed,
// iteration} re-runs the same workload draws, though not the same
// thread interleaving.
struct ConcurrentFuzzFailure {
  std::string structure;
  std::uint64_t seed = 0;         // iteration seed
  std::uint64_t base_seed = 0;    // the run's plan seed
  std::uint64_t crash_point = 0;  // persistence-instruction index
  int threads = 0;
  int iteration = -1;
  std::string what;
  std::string history_jsonl;  // metadata line + recorded events
};

struct ConcurrentFuzzReport {
  int points = 0;      // iterations executed
  int crashes = 0;     // iterations where the crash actually fired
  int violations = 0;  // checker/walk failures (0 == pass)
  int undecided = 0;   // checker state-budget exhaustions (not failures)
  std::uint64_t total_ops = 0;       // history ops across iterations
  std::uint64_t checker_states = 0;  // DFS nodes across iterations
  double recovery_us_total = 0;
  std::vector<ConcurrentFuzzFailure> failures;  // first few
};

// Runs one concurrent fuzz iteration.  `crash_point` of 0 lets the
// iteration's own PRNG draw it (as concurrent_fuzz_structure does).
inline void concurrent_fuzz_one(const AlgoEntry& algo,
                                const ConcurrentCrashPlan& plan,
                                std::uint64_t iter_seed,
                                std::uint64_t crash_point, int iteration,
                                ConcurrentFuzzReport& report) {
  namespace shadow = pmem::shadow;

  Rng rng(iter_seed);
  // Drawn unconditionally so an explicit crash_point replays the same
  // downstream prefill draws (same convention as fuzz_one).
  const std::uint64_t drawn = 1 + rng.below(plan.max_events);
  if (crash_point == 0) crash_point = drawn;

  ++report.points;
  {
  mem::ReclaimPause pause;
  auto holder = algo.make();
  Structure* s = holder.get();
  const bool is_set = algo.kind == Kind::set;
  const bool is_queue = algo.kind == Kind::queue;
  auto* set = is_set ? dynamic_cast<SetIface*>(s) : nullptr;
  auto* queue = is_queue ? dynamic_cast<QueueIface*>(s) : nullptr;
  auto* stack =
      algo.kind == Kind::stack ? dynamic_cast<StackIface*>(s) : nullptr;
  auto* ex = algo.kind == Kind::exchanger
                 ? dynamic_cast<ExchangerIface*>(s)
                 : nullptr;
  const bool contents_checked = s->has_snapshot() &&
                                (is_set || is_queue) &&
                                !algo.has_trait("no-reclaim");

  lin::Spec spec;
  spec.kind = is_set      ? lin::Semantics::set
              : is_queue  ? lin::Semantics::queue
              : stack != nullptr ? lin::Semantics::stack
                                 : lin::Semantics::exchanger;
  spec.max_states = plan.checker_states;

  // Prefill before shadow tracking starts: durable by construction.
  constexpr std::int64_t kKeyRange = 24;
  if (set != nullptr) {
    for (std::int64_t k = 1; k <= kKeyRange; ++k) {
      if (rng.below(2) == 0 && set->insert(k)) {
        spec.initial_keys.push_back(k);
      }
    }
  } else if (queue != nullptr) {
    for (std::uint64_t v = 1; v <= 6; ++v) {
      queue->enqueue(v);
      spec.initial_values.push_back(v);
    }
  } else if (stack != nullptr) {
    for (std::uint64_t v = 1; v <= 6; ++v) {
      stack->push(v);
      spec.initial_values.push_back(v);
    }
  }

  // Clamp to the checker's 128-op mask: a misconfigured plan
  // (REPRO_CONC_FUZZ_THREADS cranked up) must shrink the per-thread
  // budget rather than silently turn every verdict into
  // budget_exhausted — an "undecided" gate that can't fail verifies
  // nothing.  The adversarial scenarios need a victim AND at least one
  // survivor, so they floor the thread count at 2.
  const int nthreads = std::clamp(
      plan.scenario == ScenarioKind::single_crash
          ? plan.threads
          : std::max(plan.threads, 2),
      1, 64);
  const int ops_per_thread =
      std::clamp(plan.ops_per_thread, 1, 128 / nthreads);
  HistoryRecorder rec(nthreads,
                      static_cast<std::size_t>(ops_per_thread));

  // Worker values are unique per iteration ((lane+1)*100 + op, all
  // above the prefill range) so FIFO/LIFO order violations — and the
  // zero/stale payloads a dropped pre_publish leaves durable — cannot
  // alias a legitimate value.
  auto value_for = [](int lane, int op) {
    return static_cast<std::uint64_t>((lane + 1) * 100 + op);
  };

  struct alignas(64) WorkerState {
    int slot = -1;
    std::uint64_t seq_before = 0;  // board seq after the last response
    bool unwound = false;          // left via CrashUnwind
  };
  std::vector<WorkerState> ws(static_cast<std::size_t>(nthreads));

  bool crashed = false;
  bool parked = false;  // stalled_thread: a worker is parked on the gate
  {
    pmem::ModeGuard mode(pmem::Mode::shadow);
    shadow::reset();
    if (plan.scenario == ScenarioKind::thread_death) {
      pmem::crash::set_thread_latch(true);
    }
    if (plan.scenario == ScenarioKind::stalled_thread) {
      // Stall strictly before the crash so the parked worker spans the
      // failure: both countdowns drain on the same instruction stream,
      // and the parked thread stops consuming instructions, so the
      // crash lands on a survivor.
      const std::uint64_t horizon =
          plan.stall_horizon != 0
              ? plan.stall_horizon
              : std::max<std::uint64_t>(1, plan.max_events / 2);
      const std::uint64_t stall_point = 1 + rng.below(horizon);
      if (crash_point <= stall_point) {
        crash_point = stall_point + 1 + (crash_point % 8);
      }
      pmem::crash::arm_stall(stall_point);
    }
    pmem::crash::arm(crash_point);
    std::atomic<int> workers_done{0};
    std::vector<std::thread> workers;
    {
      workers.reserve(static_cast<std::size_t>(nthreads));
      for (int t = 0; t < nthreads; ++t) {
        workers.emplace_back([&, t] {
          WorkerState& w = ws[static_cast<std::size_t>(t)];
          w.slot = ds::thread_slot();
          // Own-slot descriptor reads are race-free: only this thread
          // writes it.
          w.seq_before = s->recover(w.slot).seq;
          Rng wrng(mix_seed(iter_seed, 0x777u + static_cast<std::uint64_t>(t)));
          try {
            if (set != nullptr) {
              RecordedSet r(*set, rec, t);
              for (int o = 0; o < ops_per_thread; ++o) {
                if (pmem::crash::crashed()) break;
                const auto key = static_cast<std::int64_t>(
                    1 + wrng.below(static_cast<std::uint64_t>(kKeyRange)));
                const std::uint64_t dice = wrng.below(10);
                if (dice < 4) {
                  r.insert(key);
                } else if (dice < 8) {
                  r.erase(key);
                } else {
                  r.find(key);
                }
                w.seq_before = s->recover(w.slot).seq;
              }
            } else if (queue != nullptr) {
              RecordedQueue r(*queue, rec, t);
              for (int o = 0; o < ops_per_thread; ++o) {
                if (pmem::crash::crashed()) break;
                if (wrng.below(2) == 0) {
                  r.enqueue(value_for(t, o));
                } else {
                  std::uint64_t out = 0;
                  r.dequeue(out);
                }
                w.seq_before = s->recover(w.slot).seq;
              }
            } else if (stack != nullptr) {
              RecordedStack r(*stack, rec, t);
              for (int o = 0; o < ops_per_thread; ++o) {
                if (pmem::crash::crashed()) break;
                if (wrng.below(2) == 0) {
                  r.push(value_for(t, o));
                } else {
                  std::uint64_t out = 0;
                  r.pop(out);
                }
                w.seq_before = s->recover(w.slot).seq;
              }
            } else {
              RecordedExchanger r(*ex, rec, t);
              for (int o = 0; o < ops_per_thread; ++o) {
                if (pmem::crash::crashed()) break;
                std::uint64_t out = 0;
                r.exchange(value_for(t, o), 24, out);
                w.seq_before = s->recover(w.slot).seq;
              }
            }
          } catch (const pmem::crash::CrashUnwind&) {
            // The lane's last invoke stays dangling: pending at crash
            // (or at this thread's own death in latch mode).
            w.unwound = true;
          }
          workers_done.fetch_add(1, std::memory_order_release);
        });
      }
    }
    // Quiescence: every worker finished — or, in the stalled scenario,
    // everyone except the parked worker.  The parked thread sits inside
    // on_instruction's gate spin, before the instruction's effect,
    // holding no shard locks — so crash rewind and verification can run
    // around it; its join is deferred until after release.
    if (plan.scenario == ScenarioKind::stalled_thread) {
      for (;;) {
        const int finished =
            workers_done.load(std::memory_order_acquire);
        if (finished == nthreads) break;
        if (finished == nthreads - 1 && pmem::crash::stall_hit()) {
          parked = true;
          break;
        }
        std::this_thread::yield();
      }
    }
    if (!parked) {
      for (std::thread& th : workers) th.join();
    }
    crashed = pmem::crash::crashed();
    pmem::crash::disarm();

    std::vector<lin::Op> ops = lin::ops_from_history(rec);

    auto fail = [&](const std::string& what) {
      ++report.violations;
      if (report.failures.size() < 4) {
        ConcurrentFuzzFailure f;
        f.structure = algo.name;
        f.seed = iter_seed;
        f.base_seed = plan.effective_seed();
        f.crash_point = crash_point;
        f.threads = nthreads;
        f.iteration = iteration;
        f.what = what;
        // Built as a string, not a fixed buffer: `what` carries the
        // checker verdict, the durable image, and per-lane descriptor
        // diagnostics — truncating the artifact's framing line would
        // lose exactly the fields it exists to carry.
        std::string meta = "{\"structure\":\"" + algo.name +
                           "\",\"seed\":" + std::to_string(iter_seed) +
                           ",\"base_seed\":" +
                           std::to_string(plan.effective_seed()) +
                           ",\"crash_point\":" +
                           std::to_string(crash_point) +
                           ",\"threads\":" + std::to_string(nthreads) +
                           ",\"iteration\":" + std::to_string(iteration) +
                           ",\"what\":\"" + what + "\"}\n";
        f.history_jsonl = meta + rec.to_jsonl();
        report.failures.push_back(std::move(f));
      }
    };

    bool walk_failed = false;
    std::string crash_diag;
    if (crashed) {
      ++report.crashes;
      rec.mark_crash();
      // Power failure: rewind to the durable image (per-line coin as
      // in the single-threaded driver).
      Rng coin_rng(mix_seed(iter_seed, crash_point));
      shadow::crash(plan.fidelity,
                    [&coin_rng] { return coin_rng.below(2) == 0; });

      const auto t0 = std::chrono::steady_clock::now();
      // Upgrade pending verdicts from the durable descriptors: a
      // descriptor that durably reports the in-flight op (seq_before+1)
      // completed-with-response makes it a `must` with that response —
      // the paper's detectability contract.  Anything else stays `may`.
      for (int t = 0; t < nthreads; ++t) {
        lin::Op* pend = nullptr;
        for (lin::Op& op : ops) {
          if (op.lane == t && op.response_ts == lin::kNever) pend = &op;
        }
        if (pend == nullptr) continue;
        const WorkerState& w = ws[static_cast<std::size_t>(t)];
        if (w.slot < 0) continue;
        const ds::Recovered d = s->recover(w.slot);
        if (d.seq == w.seq_before + 1 && d.completed &&
            d.kind == pend->kind && d.key == pend->input) {
          pend->pending = lin::Pending::must;
          pend->ok = d.ok;
          pend->result = d.result;
        }
        char diag[128];
        std::snprintf(diag, sizeof(diag),
                      "; lane %d pending %s(%lld) verdict=%s ok=%d "
                      "result=%llu",
                      t, op_kind_name(pend->kind),
                      static_cast<long long>(pend->input),
                      pend->pending == lin::Pending::must ? "must"
                                                          : "may",
                      pend->ok ? 1 : 0,
                      static_cast<unsigned long long>(pend->result));
        crash_diag += diag;
      }
      report.recovery_us_total +=
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();

      // Durable contents, walked while the structure physically holds
      // the durable image.
      if (contents_checked) {
        const bool walk_ok = is_set
                                 ? s->snapshot_keys(spec.durable_keys)
                                 : s->snapshot_values(spec.durable_values);
        if (walk_ok) {
          // Stalled-thread + set: the parked worker can hold an
          // unfenced incoming link across the whole window, so later
          // completed inserts build durably on top of it and the
          // durable image need not be a prefix of any linearization —
          // the same cross-thread hostage window that already exempts
          // sets from the must-inside-the-cut rule (linearize.hpp),
          // held open for the stall's full duration.  The walk
          // integrity check and the linearization itself still run;
          // only the prefix-cut constraint is waived.  Queues/stacks
          // keep it: persist-link-before-publish closes the window.
          spec.check_durable =
              !(plan.scenario == ScenarioKind::stalled_thread && is_set);
        } else {
          walk_failed = true;
          fail("durable image walk failed: link into never-persisted "
               "memory or a cycle");
        }
      }
    }

    // Per-thread death: the machine never lost power — the latch-mode
    // countdown killed exactly one worker mid-op while the survivors
    // raced to completion on the live structure.  A fresh thread
    // adopts the dead lane's slot, runs recover() against it, and the
    // adopted verdict feeds the checker: descriptor completed-with-
    // response at seq_before+1 makes the dead lane's pending op a
    // `must` with that response.  No durable cut — the volatile state
    // is the ground truth here.
    if (plan.scenario == ScenarioKind::thread_death) {
      int dead_lane = -1;
      for (int t = 0; t < nthreads; ++t) {
        if (ws[static_cast<std::size_t>(t)].unwound) dead_lane = t;
      }
      if (dead_lane >= 0) {
        ++report.crashes;  // the adversary fired
        const WorkerState& w = ws[static_cast<std::size_t>(dead_lane)];
        // The dead worker's thread-exit cleanup already cleared its
        // epoch pin; reset_slot_pin makes the harness's "this lane is
        // dead" claim explicit before the slot is adopted.
        mem::EpochDomain::instance().reset_slot_pin(w.slot);
        mem::PopDomain::instance().reset_slot_pin(w.slot);
        ds::Recovered adopted;
        {
          std::thread adopter([&] { adopted = s->recover(w.slot); });
          adopter.join();
        }
        lin::Op* pend = nullptr;
        for (lin::Op& op : ops) {
          if (op.lane == dead_lane && op.response_ts == lin::kNever) {
            pend = &op;
          }
        }
        if (pend != nullptr) {
          if (adopted.seq == w.seq_before + 1 && adopted.completed &&
              adopted.kind == pend->kind && adopted.key == pend->input) {
            pend->pending = lin::Pending::must;
            pend->ok = adopted.ok;
            pend->result = adopted.result;
          }
          char diag[128];
          std::snprintf(diag, sizeof(diag),
                        "; dead lane %d pending %s(%lld) verdict=%s "
                        "ok=%d result=%llu",
                        dead_lane, op_kind_name(pend->kind),
                        static_cast<long long>(pend->input),
                        pend->pending == lin::Pending::must ? "must"
                                                            : "may",
                        pend->ok ? 1 : 0,
                        static_cast<unsigned long long>(pend->result));
          crash_diag += diag;
        }
      }
    }

    if (!walk_failed) {
      const lin::Result res = lin::check(ops, spec);
      report.checker_states += res.states;
      if (res.verdict == lin::Verdict::violation) {
        // The walked durable image is part of the verdict's input;
        // carry it in the diagnostic so a dumped failure is
        // self-contained.
        std::string what = res.what;
        if (spec.check_durable) {
          what += "; durable image = [";
          bool first = true;
          if (is_set) {
            for (std::int64_t k : spec.durable_keys) {
              what += (first ? "" : " ") + std::to_string(k);
              first = false;
            }
          } else {
            for (std::uint64_t v : spec.durable_values) {
              what += (first ? "" : " ") + std::to_string(v);
              first = false;
            }
          }
          what += "]";
        }
        fail(what + crash_diag);
      } else if (res.verdict == lin::Verdict::budget_exhausted) {
        ++report.undecided;
      }
    }
    report.total_ops += ops.size();

    if (crashed) shadow::uncrash();

    if (parked) {
      // Power is back (uncrash restored the volatile image) and the
      // plan is disarmed: release the parked worker.  It finishes the
      // op it was parked inside — its late stores land on the restored
      // state — and runs the rest of its budget as ordinary ops.
      pmem::crash::release_stall();
      for (std::thread& th : workers) th.join();
      pmem::crash::disarm_stall();

      std::vector<lin::Op> ops_post = lin::ops_from_history(rec);
      // The resumed response must agree with any `must` verdict the
      // durable descriptor issued while the thread was parked: a
      // committed-at-crash op cannot come back claiming a different
      // outcome.
      for (const lin::Op& before : ops) {
        if (before.response_ts != lin::kNever) continue;
        for (const lin::Op& after : ops_post) {
          if (after.lane == before.lane && after.id == before.id &&
              after.response_ts != lin::kNever &&
              before.pending == lin::Pending::must &&
              (after.ok != before.ok ||
               after.result != before.result)) {
            fail("stalled thread resumed with a response disagreeing "
                 "with its durable must-verdict");
          }
        }
      }
      // And the full post-resume history must still linearize (no
      // durable cut: the machine is back on) — the staller's late
      // stores must not have corrupted the recovered state.
      lin::Spec post_spec;
      post_spec.kind = spec.kind;
      post_spec.initial_keys = spec.initial_keys;
      post_spec.initial_values = spec.initial_values;
      post_spec.max_states = plan.checker_states;
      const lin::Result post_res = lin::check(ops_post, post_spec);
      report.checker_states += post_res.states;
      if (post_res.verdict == lin::Verdict::violation) {
        fail("post-resume history fails to linearize: " + post_res.what +
             crash_diag);
      } else if (post_res.verdict == lin::Verdict::budget_exhausted) {
        ++report.undecided;
      }
    }
    shadow::reset();
  }
  holder.reset();
  }  // ReclaimPause ends here
  mem::EpochDomain::instance().quiesce();
  mem::PopDomain::instance().quiesce();
  mem::HpDomain::instance().quiesce();
}

// Fuzzes one structure across plan.points concurrent crash points.
// The seed stream is salted away from fuzz_structure's so running both
// drivers off one REPRO_SEED explores different workloads.
inline ConcurrentFuzzReport concurrent_fuzz_structure(
    const AlgoEntry& algo, const ConcurrentCrashPlan& plan) {
  ConcurrentFuzzReport report;
  const std::uint64_t base = plan.effective_seed();
  for (int i = 0; i < plan.points; ++i) {
    concurrent_fuzz_one(
        algo, plan,
        mix_seed(base, 0xC0C0'0000ull + static_cast<std::uint64_t>(i)),
        0, i, report);
  }
  return report;
}

// Appends the failing histories (metadata line + JSONL events each) —
// the concurrent-fuzz CI artifact.  Same truncate-once-per-process
// convention as write_reproducer.
inline void write_history_dump(const ConcurrentFuzzReport& report,
                               const std::string& path) {
  static bool truncated_once = false;
  std::FILE* f = std::fopen(path.c_str(), truncated_once ? "a" : "w");
  if (f == nullptr) return;
  truncated_once = true;
  for (const ConcurrentFuzzFailure& x : report.failures) {
    std::fwrite(x.history_jsonl.data(), 1, x.history_jsonl.size(), f);
  }
  std::fclose(f);
}

}  // namespace repro::harness
