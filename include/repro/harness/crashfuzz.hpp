// Crash-point fuzzer: the dynamic half of the crash-simulation engine.
//
// One fuzz iteration builds a fresh structure, prefills it, switches
// the pmem layer into shadow-NVM mode, arms a crash at a PRNG-chosen
// persistence-instruction boundary (pmem/crash.hpp), and drives a
// deterministic single-threaded workload until the crash fires.  The
// simulated power failure then rewinds every tracked word to the
// durable image (pmem/shadow.hpp, adversarial fidelity: write-backs
// pending at the crash complete or not per the same PRNG), and the
// verifier replays AnnouncementBoard::recover() against that image and
// checks the detectability contract:
//
//   D1  The durable descriptor matches exactly one operation the
//       thread ran: the last durably-committed one, or the in-flight
//       one.  Anything else is a lost or duplicated commit.
//   D2  If it names a completed (pre-crash) operation, it must carry
//       that operation's full response (kind, key, ok, result), and
//       every later completed operation must have been a find — the
//       only operations entitled to leave no durable trace (the
//       read-only optimization).
//   D3  If it names the in-flight operation as done, the response must
//       be the one the durable contents imply — completed-with-
//       response XOR not-applied, never "completed" with the effect
//       lost.
//   D4  The durable contents (lists: logical key walk; queues: value
//       walk) must equal the model after the last completed operation,
//       with or without the in-flight operation's effect — no lost or
//       duplicated effects, and the walk itself must be well-formed
//       (no durable links into never-persisted memory, no cycles).
//
// Structures without a snapshot surface (BST/skiplist/stack/
// exchanger) are verified against D1-D2 and the D3 response-shape
// rules only.
//
// Determinism: everything derives from {seed, iteration}; a reported
// failure's {structure, seed, crash_point} triple replays bit-for-bit
// through fuzz_one() (the REPRO_SEED satellite feeds the same base
// seed to benches and tests).  Reclamation is paused for the span of
// an iteration so a rewound durable link can never target a recycled
// cell; after verification the crash is undone (shadow::uncrash) and
// the structure torn down through the normal destructor path — a real
// crash never runs destructors, but a simulation has to.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/harness/registry.hpp"
#include "repro/harness/runner.hpp"
#include "repro/harness/workload.hpp"
#include "repro/mem/ebr.hpp"
#include "repro/pmem/crash.hpp"
#include "repro/pmem/persist.hpp"
#include "repro/pmem/shadow.hpp"

namespace repro::harness {

// The crash-schedule dimension of an ExperimentSpec: how many crash
// points to fuzz per structure, and where they land.
struct CrashPlan {
  std::uint64_t seed = 0;  // 0 → global_seed() (REPRO_SEED)
  // Fixed crash point: the n-th persistence instruction of every
  // iteration.  0 → drawn per iteration from [1, max_events].
  std::uint64_t after_n_events = 0;
  int points = 0;           // fuzz iterations per structure; 0 → off
  std::uint64_t max_events = 192;  // horizon for random crash points
  int ops_budget = 256;     // ops per iteration if the crash never fires
  pmem::shadow::CrashFidelity fidelity =
      pmem::shadow::CrashFidelity::adversarial;

  std::uint64_t effective_seed() const {
    return seed != 0 ? seed : global_seed();
  }
};

// One confirmed detectability violation, with everything needed to
// replay it (the CI artifact's payload).  `seed` is the per-iteration
// seed for a fuzz_one() replay; `base_seed` is the run's plan seed —
// REPRO_SEED=<base_seed> re-runs the whole failing point, reaching the
// same iteration.
struct FuzzFailure {
  std::string structure;
  std::uint64_t seed = 0;         // iteration seed fed to fuzz_one
  std::uint64_t base_seed = 0;    // the run's CrashPlan seed
  std::uint64_t crash_point = 0;  // persistence-instruction index
  int iteration = -1;
  std::string what;
};

// Aggregate over one structure's fuzz run.
struct FuzzReport {
  int points = 0;      // iterations executed
  int crashes = 0;     // iterations where the crash actually fired
  int violations = 0;  // failed contract checks (0 == pass)
  std::uint64_t total_ops = 0;
  double recovery_us_total = 0;
  std::vector<FuzzFailure> failures;  // first few, for the reproducer
};

namespace fuzz_detail {

// What the driver remembers about one completed operation.
struct OpRec {
  std::uint64_t board_seq = 0;  // descriptor seq after the op (volatile)
  ds::OpKind kind = ds::OpKind::none;
  std::int64_t key = 0;
  bool ok = false;
  std::uint64_t result = 0;
  bool mutating = false;  // insert/erase/enqueue/dequeue/push/pop
};

inline const char* kind_str(ds::OpKind k) {
  switch (k) {
    case ds::OpKind::none: return "none";
    case ds::OpKind::insert: return "insert";
    case ds::OpKind::erase: return "erase";
    case ds::OpKind::find: return "find";
    case ds::OpKind::enqueue: return "enqueue";
    case ds::OpKind::dequeue: return "dequeue";
    case ds::OpKind::push: return "push";
    case ds::OpKind::pop: return "pop";
    case ds::OpKind::exchange: return "exchange";
  }
  return "?";
}

// Contents models.  The set model mirrors a list's logical key set;
// the queue model mirrors values front to back.
struct Model {
  std::set<std::int64_t> keys;
  std::vector<std::uint64_t> values;

  void apply_set(ds::OpKind k, std::int64_t key) {
    if (k == ds::OpKind::insert) keys.insert(key);
    if (k == ds::OpKind::erase) keys.erase(key);
  }
  void apply_queue(ds::OpKind k, std::uint64_t v) {
    if (k == ds::OpKind::enqueue) values.push_back(v);
    if (k == ds::OpKind::dequeue && !values.empty()) {
      values.erase(values.begin());
    }
  }
};

inline bool set_equals(const std::set<std::int64_t>& model,
                       std::vector<std::int64_t> walked) {
  std::sort(walked.begin(), walked.end());
  return walked.size() == model.size() &&
         std::equal(walked.begin(), walked.end(), model.begin());
}

}  // namespace fuzz_detail

// Runs one deterministic fuzz iteration.  `crash_point` of 0 lets the
// iteration's own PRNG draw it (as fuzz_structure does); a non-zero
// value replays an exact reported failure.  Appends to `report`.
inline void fuzz_one(const AlgoEntry& algo, const CrashPlan& plan,
                     std::uint64_t iter_seed, std::uint64_t crash_point,
                     int iteration, FuzzReport& report) {
  using namespace fuzz_detail;
  namespace shadow = pmem::shadow;

  Rng rng(iter_seed);
  // The crash-point draw is consumed unconditionally so that replaying
  // a reported failure with an explicit crash_point leaves the Rng in
  // the same state as the original iteration — otherwise every
  // subsequent prefill/op draw would shift by one and the replayed
  // workload would differ.
  if (plan.after_n_events != 0) {
    if (crash_point == 0) crash_point = plan.after_n_events;
  } else {
    const std::uint64_t drawn = 1 + rng.below(plan.max_events);
    if (crash_point == 0) crash_point = drawn;
  }

  ++report.points;
  // Retired cells must stay intact until the durable image has been
  // verified (a rewound link may point at them); the braces end the
  // pause before the final quiesce() so the iteration's limbo actually
  // drains.
  {
  mem::ReclaimPause pause;
  auto holder = algo.make();
  Structure* s = holder.get();
  const bool is_set = algo.kind == Kind::set;
  const bool is_queue = algo.kind == Kind::queue;
  auto* set = is_set ? dynamic_cast<SetIface*>(s) : nullptr;
  auto* queue = is_queue ? dynamic_cast<QueueIface*>(s) : nullptr;
  auto* stack =
      algo.kind == Kind::stack ? dynamic_cast<StackIface*>(s) : nullptr;
  auto* ex = algo.kind == Kind::exchanger
                 ? dynamic_cast<ExchangerIface*>(s)
                 : nullptr;
  // The durable-image walk vouches for pointers by checking them
  // against the pool slab directory; the no-reclaim ablations allocate
  // with raw `new` outside any pool, so they are verified at the
  // descriptor level only.
  const bool contents_checked = s->has_snapshot() &&
                                (is_set || is_queue) &&
                                !algo.has_trait("no-reclaim");

  auto fail = [&](const std::string& what) {
    ++report.violations;
    if (report.failures.size() < 8) {
      report.failures.push_back({algo.name, iter_seed,
                                 plan.effective_seed(), crash_point,
                                 iteration, what});
    }
  };

  // Prefill before shadow tracking starts: its state is durable by
  // construction (persisted before the crash plan began).
  constexpr std::int64_t kKeyRange = 24;
  Model model;
  if (set != nullptr) {
    for (std::int64_t k = 1; k <= kKeyRange; ++k) {
      if (rng.below(2) == 0 && set->insert(k)) model.keys.insert(k);
    }
  } else if (queue != nullptr) {
    for (std::uint64_t v = 1; v <= 8; ++v) {
      queue->enqueue(v);
      model.values.push_back(v);
    }
  } else if (stack != nullptr) {
    for (std::uint64_t v = 1; v <= 8; ++v) stack->push(v);
  }

  const int slot = ds::thread_slot();
  const ds::Recovered base = s->recover(slot);

  std::vector<OpRec> done;
  done.reserve(static_cast<std::size_t>(plan.ops_budget));
  bool crashed = false;
  OpRec inflight;

  {
    pmem::ModeGuard mode(pmem::Mode::shadow);
    shadow::reset();
    pmem::crash::arm(crash_point);
    try {
      for (int o = 0; o < plan.ops_budget; ++o) {
        OpRec rec;
        if (set != nullptr) {
          rec.key = 1 + static_cast<std::int64_t>(
                            rng.below(static_cast<std::uint64_t>(
                                kKeyRange)));
          const std::uint64_t dice = rng.below(10);
          rec.kind = dice < 4   ? ds::OpKind::insert
                     : dice < 8 ? ds::OpKind::erase
                                : ds::OpKind::find;
          rec.mutating = rec.kind != ds::OpKind::find;
          inflight = rec;
          switch (rec.kind) {
            case ds::OpKind::insert: rec.ok = set->insert(rec.key); break;
            case ds::OpKind::erase: rec.ok = set->erase(rec.key); break;
            default: rec.ok = set->find(rec.key); break;
          }
          rec.result = rec.ok ? 1 : 0;
          if (rec.mutating && rec.ok) model.apply_set(rec.kind, rec.key);
        } else if (queue != nullptr) {
          if (rng.below(2) == 0) {
            const std::uint64_t v = 1 + (rng.next() >> 1);
            rec.kind = ds::OpKind::enqueue;
            rec.key = static_cast<std::int64_t>(v);
            rec.mutating = true;
            inflight = rec;
            queue->enqueue(v);
            rec.ok = true;
            rec.result = v;
            model.apply_queue(rec.kind, v);
          } else {
            rec.kind = ds::OpKind::dequeue;
            rec.mutating = true;
            inflight = rec;
            std::uint64_t out = 0;
            rec.ok = queue->dequeue(out);
            rec.result = out;
            if (rec.ok) model.apply_queue(rec.kind, 0);
          }
        } else if (stack != nullptr) {
          if (rng.below(2) == 0) {
            const std::uint64_t v = 1 + (rng.next() >> 1);
            rec.kind = ds::OpKind::push;
            rec.key = static_cast<std::int64_t>(v);
            rec.mutating = true;
            inflight = rec;
            stack->push(v);
            rec.ok = true;
            rec.result = v;
          } else {
            rec.kind = ds::OpKind::pop;
            rec.mutating = true;
            inflight = rec;
            std::uint64_t out = 0;
            rec.ok = stack->pop(out);
            rec.result = out;
          }
        } else {
          const std::uint64_t v = rng.next() >> 1;
          rec.kind = ds::OpKind::exchange;
          rec.key = static_cast<std::int64_t>(v);
          rec.mutating = true;
          inflight = rec;
          std::uint64_t out = 0;
          rec.ok = ex->exchange(v, 2, out);  // unpaired: times out
          rec.result = out;
        }
        rec.board_seq = s->recover(slot).seq;  // volatile ground truth
        done.push_back(rec);
      }
    } catch (const pmem::crash::CrashUnwind&) {
      crashed = true;
    }
    pmem::crash::disarm();

    if (crashed) {
      ++report.crashes;
      // Power failure: rewind to the durable image.
      Rng coin_rng(mix_seed(iter_seed, crash_point));
      shadow::crash(plan.fidelity,
                    [&coin_rng] { return coin_rng.below(2) == 0; });

      const auto t0 = std::chrono::steady_clock::now();
      const ds::Recovered rec = s->recover(slot);
      report.recovery_us_total +=
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();

      const std::uint64_t last_seq =
          done.empty() ? base.seq : done.back().board_seq;
      const std::uint64_t inflight_seq = last_seq + 1;

      // Durable contents, walked while the structure physically holds
      // the durable image.
      bool walk_ok = true;
      std::vector<std::int64_t> durable_keys;
      std::vector<std::uint64_t> durable_values;
      if (contents_checked) {
        walk_ok = is_set ? s->snapshot_keys(durable_keys)
                         : s->snapshot_values(durable_values);
        if (!walk_ok) {
          fail("durable image walk failed: link into never-persisted "
               "memory or a cycle");
        }
      }

      // D4: contents must be the model with or without the in-flight
      // effect.
      bool inflight_effect_applied = false;
      if (contents_checked && walk_ok) {
        Model with = model;  // model already reflects completed ops
        bool ambiguous = false;  // effect is a no-op (e.g. failed erase)
        if (is_set) {
          Model without = model;
          if (inflight.kind != ds::OpKind::none && inflight.mutating) {
            with.apply_set(inflight.kind, inflight.key);
          }
          const bool matches_without =
              set_equals(without.keys, durable_keys);
          const bool matches_with = set_equals(with.keys, durable_keys);
          ambiguous = with.keys == without.keys;
          inflight_effect_applied = matches_with && !ambiguous;
          if (!matches_without && !matches_with) {
            fail("durable set contents match neither pre- nor "
                 "post-in-flight model");
          }
        } else {
          Model without = model;
          if (inflight.kind == ds::OpKind::enqueue) {
            with.apply_queue(ds::OpKind::enqueue,
                             static_cast<std::uint64_t>(inflight.key));
          } else if (inflight.kind == ds::OpKind::dequeue) {
            with.apply_queue(ds::OpKind::dequeue, 0);
          }
          const bool matches_without = durable_values == without.values;
          const bool matches_with = durable_values == with.values;
          ambiguous = with.values == without.values;
          inflight_effect_applied = matches_with && !ambiguous;
          if (!matches_without && !matches_with) {
            fail("durable queue contents match neither pre- nor "
                 "post-in-flight model");
          }
        }
      }

      // D1-D3: descriptor vs. the thread's operation history.
      if (rec.seq == inflight_seq) {
        // The in-flight operation's announcement reached the durable
        // image.  Pending is always legitimate; done must carry a
        // response consistent with the durable contents.
        if (rec.completed) {
          if (contents_checked && walk_ok && inflight.mutating) {
            bool response_ok = true;
            if (is_set) {
              const bool present = model.keys.count(inflight.key) > 0;
              const bool expect_ok =
                  inflight.kind == ds::OpKind::insert ? !present
                                                      : present;
              // A committed-with-success mutation must have its effect
              // durable; a committed no-op must not have one.
              response_ok = rec.ok == expect_ok &&
                            (!rec.ok || inflight_effect_applied);
            } else if (inflight.kind == ds::OpKind::enqueue) {
              response_ok = rec.ok && inflight_effect_applied;
            } else {  // dequeue
              const bool had = !model.values.empty();
              response_ok =
                  rec.ok == had &&
                  (!rec.ok ||
                   (inflight_effect_applied &&
                    rec.result == model.values.front()));
            }
            if (!response_ok) {
              fail(std::string("in-flight ") + kind_str(inflight.kind) +
                   " committed durably but its response/effect "
                   "disagree with the durable contents");
            }
          }
        } else if (rec.kind != inflight.kind ||
                   rec.key != inflight.key) {
          fail("durable announcement names a different operation than "
               "the in-flight one");
        }
      } else {
        // Must be the last durably-committed operation, every later
        // completed op a find.  Only ops that *announced* (bumped the
        // board seq — finds without a DetectableOp never touch the
        // descriptor) can be what the durable descriptor describes.
        int match = -1;
        for (int j = static_cast<int>(done.size()) - 1; j >= 0; --j) {
          const auto ju = static_cast<std::size_t>(j);
          const std::uint64_t prev_seq =
              j == 0 ? base.seq : done[ju - 1].board_seq;
          if (done[ju].board_seq == rec.seq &&
              done[ju].board_seq != prev_seq) {
            match = j;
            break;
          }
        }
        if (match < 0 && rec.seq == base.seq) {
          // Rewound to the pre-workload state: legal only if no
          // completed op was obliged to leave a trace, and the
          // descriptor is byte-for-byte the pre-workload one.
          bool all_traceless = true;
          for (const OpRec& r : done) all_traceless &= !r.mutating;
          if (!all_traceless) {
            fail("durable descriptor predates committed mutations "
                 "(lost commit)");
          } else if (rec.completed != base.completed ||
                     rec.kind != base.kind || rec.key != base.key ||
                     rec.ok != base.ok || rec.result != base.result) {
            fail("pre-workload descriptor corrupted across the crash");
          }
        } else if (match < 0) {
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "durable descriptor seq %llu matches no "
                        "operation this thread ran",
                        static_cast<unsigned long long>(rec.seq));
          fail(buf);
        } else {
          const OpRec& m = done[static_cast<std::size_t>(match)];
          if (!rec.completed || rec.kind != m.kind || rec.key != m.key ||
              rec.ok != m.ok || rec.result != m.result) {
            fail(std::string("durable descriptor for completed ") +
                 kind_str(m.kind) +
                 " lost or corrupted its response");
          }
          for (std::size_t j = static_cast<std::size_t>(match) + 1;
               j < done.size(); ++j) {
            if (done[j].mutating) {
              fail("a later committed mutation left no durable trace "
                   "(lost commit)");
              break;
            }
          }
        }
      }

      // Back to the pre-crash machine state so teardown and
      // reclamation run on consistent memory.
      shadow::uncrash();
    }
    shadow::reset();
  }

  report.total_ops += done.size();
  holder.reset();
  }  // ReclaimPause ends here
  mem::EpochDomain::instance().quiesce();
}

// Fuzzes one structure across plan.points crash points.
inline FuzzReport fuzz_structure(const AlgoEntry& algo,
                                 const CrashPlan& plan) {
  FuzzReport report;
  const std::uint64_t base = plan.effective_seed();
  for (int i = 0; i < plan.points; ++i) {
    fuzz_one(algo, plan, mix_seed(base, static_cast<std::uint64_t>(i)),
             0, i, report);
  }
  return report;
}

// Writes the failing reproducers as JSON lines (the CI artifact).
// Replay either the whole failing point —
//   REPRO_SEED=<base_seed> ./crash_recovery
//     --benchmark_filter='crash-fuzz/<structure>/'
// — or the single iteration, fuzz_one(algo, plan, seed, crash_point,
// ...), in a unit test.  The first write of a process truncates the
// file; later failing structures in the same run append, so a
// multi-structure regression keeps every reproducer.
inline void write_reproducer(const FuzzReport& report,
                             const std::string& path) {
  static bool truncated_once = false;
  std::FILE* f = std::fopen(path.c_str(), truncated_once ? "a" : "w");
  if (f == nullptr) return;
  truncated_once = true;
  for (const FuzzFailure& x : report.failures) {
    std::fprintf(
        f,
        "{\"structure\":\"%s\",\"seed\":%llu,\"base_seed\":%llu,"
        "\"crash_point\":%llu,\"iteration\":%d,\"what\":\"%s\"}\n",
        x.structure.c_str(), static_cast<unsigned long long>(x.seed),
        static_cast<unsigned long long>(x.base_seed),
        static_cast<unsigned long long>(x.crash_point), x.iteration,
        x.what.c_str());
  }
  std::fclose(f);
}

}  // namespace repro::harness
