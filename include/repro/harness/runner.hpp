// Measurement loop: runs a per-thread operation body for a fixed wall
// interval (REPRO_BENCH_MS, default 100) and reports throughput plus
// the persistence-instruction tallies normalised per operation — the
// quantities every figure in the paper plots.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "repro/harness/workload.hpp"
#include "repro/mem/ebr.hpp"
#include "repro/mem/pool.hpp"
#include "repro/mem/pop.hpp"
#include "repro/pmem/persist.hpp"

namespace repro::harness {

// One data point's measurements.  `threads` and `point_index` make the
// result self-contained for sinks: a row can be emitted without the
// caller re-threading grid context.  point_index is assigned by the
// experiment driver, monotonic across every point a process runs.
struct RunResult {
  std::uint64_t total_ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double barriers_per_op = 0;  // pfences ("pbarriers")
  double flushes_per_op = 0;   // pwbs, as issued by the algorithm
  double psyncs_per_op = 0;
  // Memory-subsystem quantities (mem/pool.hpp + mem/ebr.hpp) and the
  // pwb-coalescing elision rate (pmem/persist.hpp).
  double coalesced_pwb_per_op = 0;  // same-line pwbs elided per op
  double allocs_per_op = 0;         // pool cells handed out per op
  double retired_per_op = 0;        // nodes retired to the reclaimer
  double reuse_ratio = 0;           // fraction of allocs served recycled
  int threads = 0;
  std::uint64_t point_index = 0;
};

namespace detail {
inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v != nullptr) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  return fallback;
}

// Like env_int, but 0 is a meaningful value (e.g. an empty prefill).
inline int env_int_nonneg(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v != nullptr && *v >= '0' && *v <= '9') {
    return static_cast<int>(std::atol(v));
  }
  return fallback;
}
}  // namespace detail

// Measured interval per data point, in milliseconds.
inline int bench_ms() { return detail::env_int("REPRO_BENCH_MS", 100); }

// REPRO_SEED: one process-wide base seed threaded through every PRNG
// the harness owns — worker Rngs, prefill, Zipfian draws (via the
// worker Rngs), and crash plans — so any run (bench, test, fuzz) is
// replayable bit-for-bit.  Read once; every sink row carries the
// effective value.  Accepts decimal or 0x-hex.
inline std::uint64_t global_seed() {
  static const std::uint64_t s = [] {
    if (const char* v = std::getenv("REPRO_SEED")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 0);
      if (end != v && *end == '\0') {
        return static_cast<std::uint64_t>(parsed);
      }
      std::fprintf(stderr,
                   "repro: ignoring unparsable REPRO_SEED '%s'\n", v);
    }
    return std::uint64_t{0x5EEDBA5Eull};
  }();
  return s;
}

// SplitMix64 finaliser: derives decorrelated per-thread / per-point
// seeds from (base, salt) without the linear relationships a plain
// base+salt seed would hand xorshift.
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z != 0 ? z : 0x5EEDBA5Eull;  // xorshift state must be non-zero
}

// Top of the benchmark thread series (REPRO_MAX_THREADS overrides the
// detected core count; the paper sweeps 1..#cores in powers of two).
inline int max_threads() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return detail::env_int("REPRO_MAX_THREADS", hw > 0 ? hw : 1);
}

// Prefill density in percent of the key range (REPRO_PREFILL_PCT; the
// paper prefills to ~40% so insert/erase success rates balance; 0 is a
// valid empty-start density).
inline int prefill_pct() {
  return detail::env_int_nonneg("REPRO_PREFILL_PCT", 40);
}

// Inserts ~`percent`% of [1, key_range]; percent < 0 means "use the
// REPRO_PREFILL_PCT / 40% default".
template <typename Set>
void prefill(Set& set, std::int64_t key_range, int percent = -1) {
  if (percent < 0) percent = prefill_pct();
  Rng rng(mix_seed(global_seed(), 0xC0FFEEull));
  for (std::int64_t k = 1; k <= key_range; ++k) {
    if (rng.below(100) < static_cast<std::uint64_t>(percent)) {
      set.insert(k);
    }
  }
}

// Runs `body(tid, rng)` in a loop on `threads` threads for `run_ms`
// milliseconds (0 → bench_ms()).
template <typename Body>
RunResult run_threads(int threads, Body&& body, int run_ms = 0) {
  struct alignas(64) Slot {
    std::uint64_t ops = 0;
    pmem::Counters counters;
    mem::Stats mem_stats;
  };
  std::vector<Slot> slots(static_cast<std::size_t>(threads));
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};

  // Prefill (or any prior setup) ran on this thread and left its epoch
  // pin armed; drop it so the sleeping driver does not stall the
  // workers' grace periods for the whole measured interval.  Both
  // epoch-style domains pin; hazard pointers self-clear at guard exit.
  mem::EpochDomain::instance().release_pin();
  mem::PopDomain::instance().release_pin();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(mix_seed(global_seed(), static_cast<std::uint64_t>(t)));
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const pmem::Counters before = pmem::counters();
      const mem::Stats mem_before = mem::stats();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        body(t, rng);
        ++n;
      }
      slots[static_cast<std::size_t>(t)].ops = n;
      slots[static_cast<std::size_t>(t)].counters =
          pmem::counters() - before;
      slots[static_cast<std::size_t>(t)].mem_stats =
          mem::stats() - mem_before;
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(run_ms > 0 ? run_ms : bench_ms()));
  stop.store(true, std::memory_order_release);
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& w : workers) w.join();

  RunResult r;
  r.threads = threads;
  pmem::Counters total;
  mem::Stats mem_total;
  for (const auto& s : slots) {
    r.total_ops += s.ops;
    total += s.counters;
    mem_total += s.mem_stats;
  }
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (r.seconds > 0) {
    r.ops_per_sec = static_cast<double>(r.total_ops) / r.seconds;
  }
  if (r.total_ops > 0) {
    const auto ops = static_cast<double>(r.total_ops);
    r.barriers_per_op = static_cast<double>(total.fences) / ops;
    r.flushes_per_op = static_cast<double>(total.flushes) / ops;
    r.psyncs_per_op = static_cast<double>(total.psyncs) / ops;
    r.coalesced_pwb_per_op = static_cast<double>(total.coalesced) / ops;
    r.allocs_per_op = static_cast<double>(mem_total.allocs) / ops;
    r.retired_per_op = static_cast<double>(mem_total.retires) / ops;
  }
  if (mem_total.allocs > 0) {
    r.reuse_ratio = static_cast<double>(mem_total.reuses) /
                    static_cast<double>(mem_total.allocs);
  }
  return r;
}

}  // namespace repro::harness
