// Process-wide registry of the evaluated structures.
//
// Every structure in ds/ and baselines/ registers exactly once, under
// its paper name (Section 5 / Section 6 naming), as a trait-tagged
// factory producing a type-erased instance.  Experiment specs select
// series by exact name, shell glob ("Isb*"), trait ("trait:paper-
// list"), kind ("kind:set"), or an '&'-composition of those atoms
// ("trait:detectable&kind:set"), so adding a structure to every
// relevant figure is one registration — no bench binary changes.
//
// Kinds and their type-erased interfaces:
//   set       — insert/erase/find over int64 keys (lists, BST, skiplist)
//   queue     — enqueue/dequeue of uint64 values
//   stack     — push/pop of uint64 values
//   exchanger — paired exchange of uint64 values
//
// Structures exposing the announcement-board recovery protocol
// (detectable.hpp) surface it through Structure::recover(); the crash
// scenario in experiment.hpp requires it (trait "detectable").
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "repro/baselines/capsules_list.hpp"
#include "repro/baselines/capsules_queue.hpp"
#include "repro/baselines/harris_list.hpp"
#include "repro/baselines/log_queue.hpp"
#include "repro/baselines/ms_queue.hpp"
#include "repro/ds/detectable.hpp"
#include "repro/ds/dt_list.hpp"
#include "repro/ds/dt_skiplist.hpp"
#include "repro/ds/dt_stack.hpp"
#include "repro/ds/isb_bst.hpp"
#include "repro/ds/isb_exchanger.hpp"
#include "repro/ds/hm_hashtable.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/ds/isb_queue.hpp"
#include "repro/mem/hp.hpp"
#include "repro/mem/pop.hpp"

namespace repro::harness {

enum class Kind { set, queue, stack, exchanger };

inline const char* kind_name(Kind k) {
  switch (k) {
    case Kind::set: return "set";
    case Kind::queue: return "queue";
    case Kind::stack: return "stack";
    case Kind::exchanger: return "exchanger";
  }
  return "?";
}

// ---------------------------------------------------------------------
// Type-erased structure interfaces
// ---------------------------------------------------------------------

class Structure {
 public:
  virtual ~Structure() = default;
  // Detectable recovery, when the implementation supports it: what
  // thread `slot` would learn about its last operation after a crash.
  virtual bool detectable() const { return false; }
  virtual ds::Recovered recover(int /*slot*/) const { return {}; }
  // Crash-engine enumeration of the durable image, when the
  // implementation exposes one (lists: logical key set; queues: values
  // front to back).  Returning false means "no snapshot surface" from
  // the default, or "the durable image is inconsistent" from an
  // implementation — the fuzz verifier distinguishes the two by
  // checking the capability before the crash.
  virtual bool snapshot_keys(std::vector<std::int64_t>& /*out*/) const {
    return false;
  }
  virtual bool snapshot_values(
      std::vector<std::uint64_t>& /*out*/) const {
    return false;
  }
  virtual bool has_snapshot() const { return false; }
};

class SetIface : public Structure {
 public:
  virtual bool insert(std::int64_t k) = 0;
  virtual bool erase(std::int64_t k) = 0;
  virtual bool find(std::int64_t k) = 0;
};

class QueueIface : public Structure {
 public:
  virtual void enqueue(std::uint64_t v) = 0;
  virtual bool dequeue(std::uint64_t& out) = 0;
};

class StackIface : public Structure {
 public:
  virtual void push(std::uint64_t v) = 0;
  virtual bool pop(std::uint64_t& out) = 0;
};

class ExchangerIface : public Structure {
 public:
  virtual bool exchange(std::uint64_t v, int attempts,
                        std::uint64_t& out) = 0;
};

namespace detail {
template <typename T>
concept Recoverable = requires(const T& t) {
  { t.recover(0) } -> std::convertible_to<ds::Recovered>;
};

template <typename T>
concept KeySnapshottable =
    requires(const T& t, std::vector<std::int64_t>& out) {
      { t.snapshot_keys(out) } -> std::convertible_to<bool>;
    };

template <typename T>
concept ValueSnapshottable =
    requires(const T& t, std::vector<std::uint64_t>& out) {
      { t.snapshot_values(out) } -> std::convertible_to<bool>;
    };
}  // namespace detail

// Adapters: recovery support is detected from the implementation, so a
// structure gains the "detectable" surface by merely exposing
// recover(int) (the shared AnnouncementBoard protocol).
template <typename Impl, typename Base>
class AdapterBase : public Base {
 public:
  template <typename... Args>
  explicit AdapterBase(Args&&... args)
      : impl(std::forward<Args>(args)...) {}

  bool detectable() const override { return detail::Recoverable<Impl>; }
  ds::Recovered recover(int slot) const override {
    if constexpr (detail::Recoverable<Impl>) {
      return impl.recover(slot);
    } else {
      (void)slot;
      return {};
    }
  }

  bool has_snapshot() const override {
    return detail::KeySnapshottable<Impl> ||
           detail::ValueSnapshottable<Impl>;
  }
  bool snapshot_keys(std::vector<std::int64_t>& out) const override {
    if constexpr (detail::KeySnapshottable<Impl>) {
      return impl.snapshot_keys(out);
    } else {
      (void)out;
      return false;
    }
  }
  bool snapshot_values(std::vector<std::uint64_t>& out) const override {
    if constexpr (detail::ValueSnapshottable<Impl>) {
      return impl.snapshot_values(out);
    } else {
      (void)out;
      return false;
    }
  }

 protected:
  Impl impl;
};

template <typename L>
struct SetAdapter final : AdapterBase<L, SetIface> {
  using AdapterBase<L, SetIface>::AdapterBase;
  bool insert(std::int64_t k) override { return this->impl.insert(k); }
  bool erase(std::int64_t k) override { return this->impl.erase(k); }
  bool find(std::int64_t k) override { return this->impl.find(k); }
};

template <typename Q>
struct QueueAdapter final : AdapterBase<Q, QueueIface> {
  using AdapterBase<Q, QueueIface>::AdapterBase;
  void enqueue(std::uint64_t v) override { this->impl.enqueue(v); }
  // Every queue, including the volatile MS-queue baseline, returns the
  // unified ds::DequeueResult, so one adapter body covers them all.
  bool dequeue(std::uint64_t& out) override {
    const auto r = this->impl.dequeue();
    out = r.value;
    return r.ok;
  }
};

template <typename S>
struct StackAdapter final : AdapterBase<S, StackIface> {
  using AdapterBase<S, StackIface>::AdapterBase;
  void push(std::uint64_t v) override { this->impl.push(v); }
  bool pop(std::uint64_t& out) override {
    const auto r = this->impl.pop();
    out = r.value;
    return r.ok;
  }
};

template <typename E>
struct ExchangerAdapter final : AdapterBase<E, ExchangerIface> {
  using AdapterBase<E, ExchangerIface>::AdapterBase;
  bool exchange(std::uint64_t v, int attempts,
                std::uint64_t& out) override {
    const auto r = this->impl.exchange(v, attempts);
    out = r.value;
    return r.ok;
  }
};

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct AlgoEntry {
  std::string name;  // paper name, unique within the registry
  Kind kind;
  std::vector<std::string> traits;  // e.g. "detectable", "paper-list"
  std::function<std::unique_ptr<Structure>()> make;

  bool has_trait(std::string_view t) const {
    if (t == kind_name(kind)) return true;
    for (const auto& x : traits) {
      if (x == t) return true;
    }
    return false;
  }
};

// Shell-style glob over names: `*` any run, `?` any one character.
inline bool glob_match(std::string_view pat, std::string_view s) {
  if (pat.empty()) return s.empty();
  if (pat[0] == '*') {
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (glob_match(pat.substr(1), s.substr(i))) return true;
    }
    return false;
  }
  if (s.empty()) return false;
  if (pat[0] != '?' && pat[0] != s[0]) return false;
  return glob_match(pat.substr(1), s.substr(1));
}

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  // Idempotent: a second registration under an existing name is
  // ignored (the inline-variable self-registration below runs once per
  // process, but user code re-registering a name is not an error).
  bool add(AlgoEntry e) {
    if (find(e.name) != nullptr) return false;
    entries_.push_back(std::move(e));
    return true;
  }

  const AlgoEntry* find(std::string_view name) const {
    for (const auto& e : entries_) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  // One selector atom against one entry:
  //   "trait:X" — entries carrying trait X (the kind name counts as a
  //               trait, so "trait:set" works too);
  //   "kind:K"  — entries of kind K (the explicit spelling, clearer in
  //               composed selectors than the trait alias);
  //   glob      — anything containing `*`/`?` globs over names;
  //   otherwise — an exact name.
  static bool matches_atom(std::string_view atom, const AlgoEntry& e) {
    constexpr std::string_view kTrait = "trait:";
    constexpr std::string_view kKind = "kind:";
    if (atom.substr(0, kTrait.size()) == kTrait) {
      return e.has_trait(atom.substr(kTrait.size()));
    }
    if (atom.substr(0, kKind.size()) == kKind) {
      return atom.substr(kKind.size()) == kind_name(e.kind);
    }
    if (atom.find('*') != std::string_view::npos ||
        atom.find('?') != std::string_view::npos) {
      return glob_match(atom, e.name);
    }
    return atom == e.name;
  }

  // A selector is one or more atoms joined by '&'; an entry matches
  // when every atom does, so "trait:detectable&kind:set" selects
  // exactly the detectable sets (fuzzable key-value structures) and
  // "trait:hashmap&Isb-*" narrows a trait by name.  No registered name
  // contains '&', so the split is unambiguous.
  static bool matches(std::string_view selector, const AlgoEntry& e) {
    while (true) {
      const std::size_t amp = selector.find('&');
      const std::string_view atom = selector.substr(0, amp);
      if (!matches_atom(atom, e)) return false;
      if (amp == std::string_view::npos) return true;
      selector.remove_prefix(amp + 1);
    }
  }

  std::vector<const AlgoEntry*> select(std::string_view selector) const {
    std::vector<const AlgoEntry*> out;
    for (const auto& e : entries_) {
      if (matches(selector, e)) out.push_back(&e);
    }
    return out;
  }

  // Union over selectors, de-duplicated, selector order preserved.
  // Membership is tracked in a pointer set so N overlapping selectors
  // over an R-entry registry cost O(N·R) instead of the quadratic
  // every-entry-against-every-kept scan this used to do.
  std::vector<const AlgoEntry*> select_all(
      const std::vector<std::string>& selectors) const {
    std::vector<const AlgoEntry*> out;
    std::unordered_set<const AlgoEntry*> seen;
    for (const auto& sel : selectors) {
      for (const AlgoEntry* e : select(sel)) {
        if (seen.insert(e).second) out.push_back(e);
      }
    }
    return out;
  }

  const std::deque<AlgoEntry>& entries() const { return entries_; }

 private:
  Registry() = default;
  // A deque keeps AlgoEntry references/pointers stable across add():
  // expanded Points and registered benchmark lambdas hold AlgoEntry*,
  // and user code may register structures at any time.
  std::deque<AlgoEntry> entries_;
};

// ---------------------------------------------------------------------
// Built-in registrations (the paper's evaluated structures)
// ---------------------------------------------------------------------

namespace detail {

// Bucket-count override for the hash-map registrations: the registry
// factories are shared by benches, fuzzers and tests, so the knob is an
// environment variable rather than a per-spec field.  Clamped to the
// core's supported range; unset/garbage keeps the default.
inline int hm_bucket_bits() {
  int bits = 13;  // 8192 buckets
  if (const char* v = std::getenv("REPRO_HM_BUCKET_BITS")) {
    const long parsed = std::atol(v);
    if (parsed >= 0 && parsed <= 15) bits = static_cast<int>(parsed);
  }
  return bits;
}

// REPRO_RECLAIMER=ebr|hp|pop narrows reclaimer-tagged selectors to one
// scheme (the CI fuzz legs sweep the matrix one column at a time).
// Returns the validated scheme name, or "" when unset/garbage — the
// caller then runs its full default selection.
inline std::string reclaimer_filter() {
  if (const char* v = std::getenv("REPRO_RECLAIMER")) {
    const std::string s = v;
    if (s == "ebr" || s == "hp" || s == "pop") return s;
  }
  return "";
}

inline bool register_builtins() {
  using baselines::CapsulesList;
  using baselines::CapsulesQueue;
  using baselines::HarrisList;
  using baselines::LogQueue;
  using baselines::MsQueue;
  using ds::DtList;
  using ds::DtSkipList;
  using ds::DtStack;
  using ds::IsbBst;
  using ds::IsbExchanger;
  using ds::IsbList;
  using ds::IsbQueue;
  using ds::PersistProfile;

  Registry& r = Registry::instance();

  auto isb_list = [](PersistProfile p, bool ro) {
    return [p, ro]() -> std::unique_ptr<Structure> {
      IsbList::Config c;
      c.profile = p;
      c.read_only_opt = ro;
      return std::make_unique<SetAdapter<IsbList>>(c);
    };
  };

  // Section 5 list series (Figures 1, 3-6): trait "paper-list".
  r.add({"Isb", Kind::set,
         {"detectable", "persistent", "paper-list", "isb-list",
          "reclaimer-ebr"},
         isb_list(PersistProfile::general, true)});
  // reclaimer-ebr keeps Isb-Opt inside the REPRO_RECLAIMER=ebr CI leg:
  // it rides along in the reclaim-fuzz figure (its fence-free
  // post_update flushes are the persist-before-retire detection path).
  r.add({"Isb-Opt", Kind::set,
         {"detectable", "persistent", "paper-list", "isb-list",
          "reclaimer-ebr"},
         isb_list(PersistProfile::optimized, true)});
  r.add({"Capsules", Kind::set, {"persistent", "paper-list", "capsules"},
         [] {
           return std::make_unique<SetAdapter<CapsulesList>>(
               CapsulesList::Variant::general);
         }});
  r.add({"Capsules-Opt", Kind::set,
         {"persistent", "paper-list", "capsules"}, [] {
           return std::make_unique<SetAdapter<CapsulesList>>(
               CapsulesList::Variant::optimized);
         }});
  r.add({"DT-Opt", Kind::set,
         {"detectable", "persistent", "paper-list", "dt"}, [] {
           return std::make_unique<SetAdapter<DtList>>(
               PersistProfile::optimized);
         }});
  // Outside the headline series: the general DT placement and the
  // volatile Harris baseline (Figure 4).
  r.add({"DT", Kind::set, {"detectable", "persistent", "dt"}, [] {
           return std::make_unique<SetAdapter<DtList>>(
               PersistProfile::general);
         }});
  r.add({"Harris-LL", Kind::set, {"volatile", "baseline"},
         [] { return std::make_unique<SetAdapter<HarrisList>>(); }});
  // Memory-subsystem ablations: the seed's raw-new / leak-everything
  // allocation, so the EBR+pool win stays measurable in-tree.
  r.add({"Harris-LL-leak", Kind::set,
         {"volatile", "baseline", "ablation", "no-reclaim"}, [] {
           return std::make_unique<SetAdapter<baselines::HarrisListLeaky>>();
         }});
  r.add({"Isb-leak", Kind::set,
         {"detectable", "persistent", "isb-list", "ablation",
          "no-reclaim"},
         [] {
           return std::make_unique<
               SetAdapter<ds::IsbListT<mem::LeakReclaimer>>>();
         }});
  // Ablation variants: Algorithm-2 read-only optimization disabled.
  r.add({"Isb-noROopt", Kind::set,
         {"detectable", "persistent", "isb-list", "ablation"},
         isb_list(PersistProfile::general, false)});
  r.add({"Isb-Opt-noROopt", Kind::set,
         {"detectable", "persistent", "isb-list", "ablation"},
         isb_list(PersistProfile::optimized, false)});

  // Harris-Michael hash map (ROADMAP item 1): the same transformations
  // over per-bucket Harris segments — trait "hashmap", and
  // "detectable" so every fuzz family sweeps the detectable variants
  // automatically.
  auto isb_hm = [](PersistProfile p, bool ro) {
    return [p, ro]() -> std::unique_ptr<Structure> {
      ds::IsbHashMap::Config c;
      c.profile = p;
      c.read_only_opt = ro;
      c.bucket_bits = hm_bucket_bits();
      return std::make_unique<SetAdapter<ds::IsbHashMap>>(c);
    };
  };
  r.add({"Isb-HashMap", Kind::set,
         {"detectable", "persistent", "hashmap", "isb-list"},
         isb_hm(PersistProfile::general, true)});
  r.add({"Isb-HashMap-Opt", Kind::set,
         {"detectable", "persistent", "hashmap", "isb-list"},
         isb_hm(PersistProfile::optimized, true)});
  r.add({"DT-HashMap", Kind::set,
         {"detectable", "persistent", "hashmap", "dt", "reclaimer-ebr"},
         [] {
           return std::make_unique<SetAdapter<ds::DtHashMap>>(
               PersistProfile::general, hm_bucket_bits());
         }});
  r.add({"Harris-HashMap", Kind::set,
         {"volatile", "baseline", "hashmap"}, [] {
           return std::make_unique<SetAdapter<ds::HarrisHashMap>>(
               hm_bucket_bits());
         }});

  // Reclamation-scheme matrix (ROADMAP item 2): the same structures
  // under hazard pointers and publish-on-ping epochs.  One list, one
  // queue and one hash map per scheme keeps the cross-product useful
  // without doubling every fuzz sweep; trait "reclaimer-<scheme>"
  // selects a column (the EBR bases above carry "reclaimer-ebr").
  r.add({"Isb-List-HP", Kind::set,
         {"detectable", "persistent", "isb-list", "reclaimer-hp"}, [] {
           return std::make_unique<
               SetAdapter<ds::IsbListT<mem::HpReclaimer>>>();
         }});
  r.add({"Isb-List-POP", Kind::set,
         {"detectable", "persistent", "isb-list", "reclaimer-pop"}, [] {
           return std::make_unique<
               SetAdapter<ds::IsbListT<mem::PopReclaimer>>>();
         }});
  r.add({"Isb-Queue-HP", Kind::queue,
         {"detectable", "persistent", "reclaimer-hp"}, [] {
           return std::make_unique<
               QueueAdapter<ds::IsbQueueT<mem::HpReclaimer>>>();
         }});
  r.add({"Isb-Queue-POP", Kind::queue,
         {"detectable", "persistent", "reclaimer-pop"}, [] {
           return std::make_unique<
               QueueAdapter<ds::IsbQueueT<mem::PopReclaimer>>>();
         }});
  r.add({"DT-HashMap-HP", Kind::set,
         {"detectable", "persistent", "hashmap", "dt", "reclaimer-hp"},
         [] {
           return std::make_unique<
               SetAdapter<ds::DtHashMapT<mem::HpReclaimer>>>(
               PersistProfile::general, hm_bucket_bits());
         }});
  r.add({"DT-HashMap-POP", Kind::set,
         {"detectable", "persistent", "hashmap", "dt", "reclaimer-pop"},
         [] {
           return std::make_unique<
               SetAdapter<ds::DtHashMapT<mem::PopReclaimer>>>(
               PersistProfile::general, hm_bucket_bits());
         }});

  // Queue series (Figure 7): trait "paper-queue".
  r.add({"Isb-Queue", Kind::queue,
         {"detectable", "persistent", "paper-queue", "reclaimer-ebr"},
         [] { return std::make_unique<QueueAdapter<IsbQueue>>(); }});
  r.add({"Log-Queue", Kind::queue, {"persistent", "paper-queue"},
         [] { return std::make_unique<QueueAdapter<LogQueue>>(); }});
  r.add({"Capsules-General", Kind::queue,
         {"persistent", "paper-queue", "capsules"}, [] {
           return std::make_unique<QueueAdapter<CapsulesQueue>>(
               CapsulesQueue::Variant::general);
         }});
  r.add({"Capsules-Normal", Kind::queue,
         {"persistent", "paper-queue", "capsules"}, [] {
           return std::make_unique<QueueAdapter<CapsulesQueue>>(
               CapsulesQueue::Variant::normalized);
         }});
  r.add({"MS-Queue", Kind::queue, {"volatile", "baseline"},
         [] { return std::make_unique<QueueAdapter<MsQueue>>(); }});
  r.add({"MS-Queue-leak", Kind::queue,
         {"volatile", "baseline", "ablation", "no-reclaim"}, [] {
           return std::make_unique<QueueAdapter<baselines::MsQueueLeaky>>();
         }});

  // Section 6 structures.
  r.add({"Bst-Isb", Kind::set, {"detectable", "persistent", "bst"}, [] {
           return std::make_unique<SetAdapter<IsbBst>>(
               PersistProfile::general);
         }});
  r.add({"Bst-Isb-Opt", Kind::set, {"detectable", "persistent", "bst"},
         [] {
           return std::make_unique<SetAdapter<IsbBst>>(
               PersistProfile::optimized);
         }});
  r.add({"DT-SkipList", Kind::set,
         {"detectable", "persistent", "skiplist"},
         [] { return std::make_unique<SetAdapter<DtSkipList>>(); }});
  r.add({"DT-Treiber", Kind::stack, {"detectable", "persistent"}, [] {
           return std::make_unique<StackAdapter<DtStack>>();
         }});
  r.add({"DT-Elimination", Kind::stack,
         {"detectable", "persistent", "elimination"}, [] {
           DtStack::Config c;
           c.elimination = true;
           return std::make_unique<StackAdapter<DtStack>>(c);
         }});
  r.add({"Isb-Exchanger", Kind::exchanger, {"detectable", "persistent"},
         [] {
           return std::make_unique<ExchangerAdapter<IsbExchanger>>();
         }});
  return true;
}

// Self-registration: including this header anywhere in the program
// populates the registry during static initialisation, once.
inline const bool builtins_registered = register_builtins();

}  // namespace detail

}  // namespace repro::harness
