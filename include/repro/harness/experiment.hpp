// The experiment engine: a declarative ExperimentSpec names a figure's
// grid — structures (registry names, globs, or trait selectors), key
// ranges, operation mixes, thread series, pmem modes, key distribution,
// and an optional crash schedule — and the driver expands it, runs each
// point through run_threads, and emits self-contained rows to the
// configured ResultSinks.  A figure binary is therefore a spec literal
// plus one experiment_main() call (bench/bench_common.hpp); nothing
// re-implements the grid by hand.
//
// Crash-recovery scenario (crash_after_ms > 0): workers run the normal
// workload; at the crash point the run stops, modelling a cache-erasing
// crash with one operation in flight per thread (announced in the
// thread's program state, never applied to the structure — in this
// simulation every completed store already reached its DRAM-backed home
// location, which is exactly the paper's persistency model after the
// flush/fence placement the policies issue).  The driver then replays
// every thread's AnnouncementBoard::recover() and verifies
// detectability: the last completed operation must be reported
// completed-with-response (kind, key, ok, and result all matching what
// the thread observed), and the in-flight operation must be reported
// not-applied (the descriptor still shows the previous sequence
// number).  The recover()-replay wall time is reported as recovery
// latency.
//
// Scope of the model: the crash lands at an operation boundary, so the
// in-flight operation was never announced on the *board* — the
// not-applied verdict here checks that completed operations leave
// exactly one trace (a descriptor that over-counted seq would fail
// it).  The announced-but-uncommitted descriptor state (a crash
// between announce and commit) cannot be produced through the
// type-erased structure API; that half of the protocol is pinned at
// the descriptor level by test_detectable's
// UncommittedOpReportsIncomplete.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "repro/harness/crashfuzz.hpp"
#include "repro/harness/registry.hpp"
#include "repro/harness/runner.hpp"
#include "repro/harness/sinks.hpp"
#include "repro/harness/workload.hpp"
#include "repro/pmem/persist.hpp"

namespace repro::harness {

inline const char* mode_name(pmem::Mode m) {
  switch (m) {
    case pmem::Mode::shared_cache: return "shared_cache";
    case pmem::Mode::private_cache: return "private_cache";
    case pmem::Mode::count_only: return "count_only";
    case pmem::Mode::shadow: return "shadow";
    case pmem::Mode::mmap: return "mmap";
  }
  return "?";
}

// The paper's thread series: 1..max_threads() in powers of two.
inline std::vector<int> thread_series() {
  std::vector<int> s;
  for (int t = 1; t <= max_threads(); t *= 2) s.push_back(t);
  return s;
}

// Declarative description of one figure's grid.
struct ExperimentSpec {
  std::string figure;  // row prefix / benchmark name prefix ("fig1a")
  std::string what;    // header line shown by the table sink
  // Registry selectors: exact names, globs ("Isb*"), or "trait:..."
  std::vector<std::string> structures;
  // Set-kind axes (ignored by queues/stacks/exchangers).
  std::vector<std::int64_t> key_ranges = {};  // empty → {500}
  std::vector<Mix> mixes = {};                // empty → {kReadIntensive}
  std::vector<int> threads = {};              // empty → thread_series()
  std::vector<pmem::Mode> modes = {pmem::Mode::shared_cache};
  KeyDist dist = KeyDist::uniform;
  double zipf_theta = 0.99;
  int prefill_pct = -1;          // < 0 → REPRO_PREFILL_PCT / 40
  std::size_t queue_prefill = 0;  // 0 → REPRO_QUEUE_PREFILL / 100000
  int crash_after_ms = 0;  // > 0 → crash-recovery scenario points
  // Crash-point fuzzing (crashfuzz.hpp): plan.points > 0 turns every
  // selected trait:detectable structure into one single-threaded
  // shadow-NVM fuzz point.  Mutually exclusive with crash_after_ms.
  CrashPlan crash_plan;
  // Concurrent crash-point fuzzing with the durable-linearizability
  // checker: conc_plan.points > 0 turns every selected
  // trait:detectable structure into one multi-threaded fuzz point.
  // Mutually exclusive with the other crash dimensions.
  ConcurrentCrashPlan conc_plan;

  bool is_crash_fuzz() const { return crash_plan.points > 0; }
  bool is_conc_fuzz() const { return conc_plan.points > 0; }
};

// One expanded grid point.
struct Point {
  const AlgoEntry* algo = nullptr;
  pmem::Mode mode = pmem::Mode::shared_cache;
  std::int64_t key_range = 0;  // set kind only
  Mix mix{"", 0, 0, 100};      // valid iff has_mix
  bool has_mix = false;
  int threads = 1;
};

namespace detail {
inline std::atomic<int>& spec_error_cell() {
  static std::atomic<int> c{0};
  return c;
}
}  // namespace detail

// Spec configuration errors observed so far (selectors matching no
// registered structure); experiment_main turns a non-zero count into a
// failing exit code so a typo'd series name cannot "pass" a smoke run
// while silently measuring nothing.
inline int spec_errors() {
  return detail::spec_error_cell().load(std::memory_order_relaxed);
}

// The structures a spec actually runs: selector matches, minus the
// entries a crash schedule cannot model (crash scenarios require the
// announcement-board recovery protocol on sets/queues).  Unmatched
// selectors are diagnosed here and counted as spec errors; pass
// diagnose=false when re-querying a spec that expand() already checked.
inline std::vector<const AlgoEntry*> selected_structures(
    const ExperimentSpec& spec, bool diagnose = true) {
  const Registry& reg = Registry::instance();
  if (diagnose) {
    for (const std::string& sel : spec.structures) {
      if (reg.select(sel).empty()) {
        std::fprintf(stderr,
                     "repro: spec %s: selector '%s' matches no "
                     "registered structure\n",
                     spec.figure.c_str(), sel.c_str());
        detail::spec_error_cell().fetch_add(1,
                                            std::memory_order_relaxed);
      }
    }
  }
  std::vector<const AlgoEntry*> out;
  for (const AlgoEntry* algo : reg.select_all(spec.structures)) {
    if (spec.crash_after_ms > 0 &&
        (!algo->has_trait("detectable") ||
         (algo->kind != Kind::set && algo->kind != Kind::queue))) {
      continue;
    }
    // The fuzzers cover every kind, but only structures speaking the
    // announcement-board protocol can be verified.
    if ((spec.is_crash_fuzz() || spec.is_conc_fuzz()) &&
        !algo->has_trait("detectable")) {
      continue;
    }
    out.push_back(algo);
  }
  return out;
}

// Expands the spec's grid.  Exchanger points need pairs, so thread
// counts below 2 are dropped for that kind.
inline std::vector<Point> expand(const ExperimentSpec& spec) {
  std::vector<Point> points;
  const std::vector<int> threads =
      spec.threads.empty() ? thread_series() : spec.threads;
  const std::vector<std::int64_t> ranges =
      spec.key_ranges.empty() ? std::vector<std::int64_t>{500}
                              : spec.key_ranges;
  const std::vector<Mix> mixes =
      spec.mixes.empty() ? std::vector<Mix>{kReadIntensive} : spec.mixes;

  const std::vector<const AlgoEntry*> algos = selected_structures(spec);

  // Crash-point fuzzing drives its own pmem mode (shadow) and
  // workload: exactly one point per structure, at the fuzzer's thread
  // count (1 for the single-threaded driver).
  if (spec.is_crash_fuzz() || spec.is_conc_fuzz()) {
    for (const AlgoEntry* algo : algos) {
      Point p;
      p.algo = algo;
      p.mode = pmem::Mode::shadow;
      p.threads = spec.is_conc_fuzz() ? spec.conc_plan.threads : 1;
      points.push_back(p);
    }
    return points;
  }

  for (pmem::Mode mode : spec.modes) {
    for (const AlgoEntry* algo : algos) {
      if (algo->kind == Kind::set) {
        for (std::int64_t range : ranges) {
          for (const Mix& mix : mixes) {
            for (int t : threads) {
              points.push_back({algo, mode, range, mix, true, t});
            }
          }
        }
      } else {
        for (int t : threads) {
          if (algo->kind == Kind::exchanger && t < 2) continue;
          Point p;
          p.algo = algo;
          p.mode = mode;
          p.threads = t;
          points.push_back(p);
        }
      }
    }
  }
  return points;
}

// Benchmark name for a point: figure/algo[/range/mix][/mode]/threads:N
// — the shape --benchmark_filter has always matched against.
inline std::string point_name(const ExperimentSpec& spec,
                              const Point& p) {
  std::string n = spec.figure + "/" + p.algo->name;
  if (p.has_mix) {
    n += "/" + std::to_string(p.key_range) + "/" + p.mix.name;
  }
  if (spec.modes.size() > 1) {
    n += std::string("/") + mode_name(p.mode);
  }
  return n + "/threads:" + std::to_string(p.threads);
}

// Human-readable scenario column for the table sink.
inline std::string point_scenario(const ExperimentSpec& spec,
                                  const Point& p) {
  std::string s;
  if (p.has_mix) {
    s = "range=" + std::to_string(p.key_range) + " " + p.mix.name;
    if (spec.dist == KeyDist::zipfian) s += " zipfian";
  } else {
    s = spec.figure;
  }
  if (spec.crash_after_ms > 0) {
    s += " crash@" + std::to_string(spec.crash_after_ms) + "ms";
  }
  if (spec.is_crash_fuzz()) {
    s += " fuzz=" + std::to_string(spec.crash_plan.points);
    if (spec.crash_plan.scenario != ScenarioKind::single_crash) {
      s += std::string(" ") + scenario_name(spec.crash_plan.scenario);
    }
  }
  if (spec.is_conc_fuzz()) {
    s += " conc-fuzz=" + std::to_string(spec.conc_plan.points) + "x" +
         std::to_string(spec.conc_plan.threads) + "t";
    if (spec.conc_plan.scenario != ScenarioKind::single_crash) {
      s += std::string(" ") + scenario_name(spec.conc_plan.scenario);
    }
  }
  return s;
}

// Machine-readable scenario-family column for the CSV/JSONL sinks:
// empty for plain measurement points, the ScenarioKind name for fuzz
// points (including the default single-crash family, so a sweep over
// families is self-describing).
inline std::string point_crash_scenario(const ExperimentSpec& spec) {
  if (spec.is_crash_fuzz()) {
    return scenario_name(spec.crash_plan.scenario);
  }
  if (spec.is_conc_fuzz()) {
    return scenario_name(spec.conc_plan.scenario);
  }
  if (spec.crash_after_ms > 0) return "timed-stop";
  return "";
}

namespace detail {

// google-benchmark's DoNotOptimize, without the dependency: the
// experiment driver is part of the library and is exercised by the unit
// tests, which do not link benchmark.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

inline std::atomic<std::uint64_t>& point_counter() {
  static std::atomic<std::uint64_t> c{0};
  return c;
}

inline std::atomic<int>& crash_failure_cell() {
  static std::atomic<int> c{0};
  return c;
}

// Parsed as long long: prefill sizes above INT_MAX are legitimate
// (the paper uses one million; bigger hosts may use more).
inline std::size_t resolve_queue_prefill(const ExperimentSpec& spec) {
  if (spec.queue_prefill > 0) return spec.queue_prefill;
  if (const char* v = std::getenv("REPRO_QUEUE_PREFILL")) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 100'000;
}

}  // namespace detail

// Detectability violations observed by crash-scenario points so far;
// experiment_main turns a non-zero count into a failing exit code.
inline int crash_failures() {
  return detail::crash_failure_cell().load(std::memory_order_relaxed);
}

// Grid points executed so far in this process (the same counter that
// stamps RunResult::point_index).
inline std::uint64_t points_run() {
  return detail::point_counter().load(std::memory_order_relaxed);
}

// What one crash-scenario point measured and verified.
struct CrashReport {
  RunResult run;       // throughput/counters up to the crash
  int completed = 0;   // threads whose last op recovered with response
  int not_applied = 0;  // in-flight intents confirmed left no trace
  int mismatches = 0;  // detectability violations (must be 0)
  double recovery_us = 0;  // wall time of the recover() replay
};

// Runs the crash-recovery scenario on one (detectable set/queue) point.
inline CrashReport run_crash_point(const ExperimentSpec& spec,
                                   const Point& p) {
  CrashReport rep;
  auto holder = p.algo->make();
  Structure* s = holder.get();

  // Guard against a trait/adapter mismatch (e.g. a registration tagged
  // "detectable" whose recover(int) is not const-qualified, so the
  // adapter's concept check failed): that is a configuration error, not
  // a detectability violation, and deserves a distinct message.
  if (!s->detectable()) {
    std::fprintf(stderr,
                 "repro: %s is tagged 'detectable' but its adapter "
                 "exposes no recovery protocol (is recover(int) const?)"
                 "\n",
                 p.algo->name.c_str());
    rep.mismatches = 1;
    return rep;
  }

  struct OpRecord {
    std::uint64_t seq = 0;
    ds::OpKind kind = ds::OpKind::none;
    std::int64_t key = 0;
    bool ok = false;
    std::uint64_t result = 0;
  };
  struct alignas(64) ThreadLog {
    int slot = -1;
    OpRecord last;
  };
  std::vector<ThreadLog> logs(static_cast<std::size_t>(p.threads));

  const bool is_set = p.algo->kind == Kind::set;
  SetIface* set = is_set ? static_cast<SetIface*>(s) : nullptr;
  QueueIface* queue = is_set ? nullptr : static_cast<QueueIface*>(s);
  // Queue crash points drive their own 50/50 enqueue/dequeue split and
  // have no workload of their own.
  std::optional<Workload> w;
  if (is_set) {
    w = Workload(p.key_range, p.mix, spec.dist, spec.zipf_theta);
    prefill(*set, p.key_range, spec.prefill_pct);
  } else {
    const std::size_t pre = detail::resolve_queue_prefill(spec);
    for (std::size_t i = 0; i < pre; ++i) {
      queue->enqueue(static_cast<std::uint64_t>(i));
    }
  }

  rep.run = run_threads(
      p.threads,
      [&](int tid, Rng& rng) {
        ThreadLog& log = logs[static_cast<std::size_t>(tid)];
        if (log.slot < 0) log.slot = ds::thread_slot();
        OpRecord rec;
        rec.seq = log.last.seq + 1;
        if (is_set) {
          rec.key = w->pick_key(rng);
          switch (w->pick_op(rng)) {
            case OpType::insert:
              rec.kind = ds::OpKind::insert;
              rec.ok = set->insert(rec.key);
              break;
            case OpType::erase:
              rec.kind = ds::OpKind::erase;
              rec.ok = set->erase(rec.key);
              break;
            case OpType::find:
              rec.kind = ds::OpKind::find;
              rec.ok = set->find(rec.key);
              break;
          }
          rec.result = rec.ok ? 1 : 0;
        } else if (rng.below(2) == 0) {
          const std::uint64_t v = rng.next() >> 1;
          queue->enqueue(v);
          rec.kind = ds::OpKind::enqueue;
          rec.key = static_cast<std::int64_t>(v);
          rec.ok = true;
          rec.result = v;
        } else {
          std::uint64_t out = 0;
          rec.ok = queue->dequeue(out);
          rec.kind = ds::OpKind::dequeue;
          rec.key = 0;
          rec.result = out;
        }
        log.last = rec;
      },
      spec.crash_after_ms);

  // The crash happened: replay recovery for every thread and verify
  // detectability (see the header comment for the crash model).
  const auto t0 = std::chrono::steady_clock::now();
  for (const ThreadLog& log : logs) {
    if (log.slot < 0) continue;  // thread never completed an operation
    const ds::Recovered rec = s->recover(log.slot);
    // The in-flight operation (seq last+1) must have left no trace.
    const bool intent_clear = rec.seq == log.last.seq;
    if (log.last.seq == 0) {
      if (intent_clear && !rec.completed) {
        ++rep.not_applied;
      } else {
        ++rep.mismatches;
      }
      continue;
    }
    const bool match = rec.completed && intent_clear &&
                       rec.kind == log.last.kind &&
                       rec.key == log.last.key &&
                       rec.ok == log.last.ok &&
                       rec.result == log.last.result;
    if (match) {
      ++rep.completed;
      ++rep.not_applied;
    } else {
      ++rep.mismatches;
    }
  }
  rep.recovery_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return rep;
}

// Runs one grid point (normal measurement, crash scenario, or
// crash-point fuzzing) and returns its self-contained result row.
inline ResultRow run_point(const ExperimentSpec& spec, const Point& p) {
  ResultRow row;
  row.figure = spec.figure;
  row.algo = p.algo->name;
  row.mode = mode_name(p.mode);
  row.scenario = point_scenario(spec, p);
  row.crash_scenario = point_crash_scenario(spec);
  row.reclaimer = p.algo->has_trait("reclaimer-hp")    ? "hp"
                  : p.algo->has_trait("reclaimer-pop") ? "pop"
                  : p.algo->has_trait("no-reclaim")    ? "leak"
                  : p.algo->has_trait("reclaimer-ebr") ? "ebr"
                                                       : "";
  row.seed = spec.is_crash_fuzz()  ? spec.crash_plan.effective_seed()
             : spec.is_conc_fuzz() ? spec.conc_plan.effective_seed()
                                   : global_seed();
  if (p.has_mix) {
    row.dist = key_dist_name(spec.dist);
    row.key_range = p.key_range;
    row.mix = p.mix.name;
  }

  if (spec.is_conc_fuzz()) {
    // The concurrent fuzzer manages the pmem mode per iteration
    // itself; violations carry their recorded history (the CI
    // artifact) rather than a bit-for-bit {seed, crash_point} replay.
    const ConcurrentFuzzReport rep =
        concurrent_fuzz_structure(*p.algo, spec.conc_plan);
    row.run.total_ops = rep.total_ops;
    row.run.threads = spec.conc_plan.threads;
    row.crash_points = rep.points;
    row.crash_violations = rep.violations;
    if (rep.crashes > 0) {
      row.recovery_us = rep.recovery_us_total / rep.crashes;
    }
    if (rep.undecided > 0) {
      std::fprintf(stderr,
                   "repro: %s: %d concurrent fuzz point(s) exhausted "
                   "the checker state budget (undecided, not failed)\n",
                   p.algo->name.c_str(), rep.undecided);
    }
    if (rep.violations > 0) {
      detail::crash_failure_cell().fetch_add(rep.violations,
                                             std::memory_order_relaxed);
      for (const ConcurrentFuzzFailure& f : rep.failures) {
        std::fprintf(
            stderr,
            "repro: %s: durable-linearizability violation at "
            "{seed=%llu, crash_point=%llu, threads=%d} "
            "(REPRO_SEED=%llu, iteration %d): %s\n",
            f.structure.c_str(),
            static_cast<unsigned long long>(f.seed),
            static_cast<unsigned long long>(f.crash_point), f.threads,
            static_cast<unsigned long long>(f.base_seed), f.iteration,
            f.what.c_str());
      }
      const char* dump_path = std::getenv("REPRO_HISTORY_DUMP");
      write_history_dump(rep, dump_path != nullptr && dump_path[0]
                                  ? dump_path
                                  : "crash_history.jsonl");
    }
    row.run.point_index =
        detail::point_counter().fetch_add(1, std::memory_order_relaxed);
    return row;
  }

  if (spec.is_crash_fuzz()) {
    // The fuzzer manages the pmem mode per iteration itself.
    const FuzzReport rep = fuzz_structure(*p.algo, spec.crash_plan);
    row.run.total_ops = rep.total_ops;
    row.run.threads = 1;
    row.crash_points = rep.points;
    row.crash_violations = rep.violations;
    if (rep.crashes > 0) {
      row.recovery_us = rep.recovery_us_total / rep.crashes;
    }
    if (rep.violations > 0) {
      detail::crash_failure_cell().fetch_add(rep.violations,
                                             std::memory_order_relaxed);
      for (const FuzzFailure& f : rep.failures) {
        std::fprintf(stderr,
                     "repro: %s: detectability violation at "
                     "{seed=%llu, crash_point=%llu} (REPRO_SEED=%llu, "
                     "iteration %d): %s\n",
                     f.structure.c_str(),
                     static_cast<unsigned long long>(f.seed),
                     static_cast<unsigned long long>(f.crash_point),
                     static_cast<unsigned long long>(f.base_seed),
                     f.iteration, f.what.c_str());
      }
      const char* repro_path = std::getenv("REPRO_CRASH_REPRO");
      write_reproducer(rep, repro_path != nullptr && repro_path[0]
                                ? repro_path
                                : "crash_repro.jsonl");
    }
    row.run.point_index =
        detail::point_counter().fetch_add(1, std::memory_order_relaxed);
    return row;
  }

  pmem::ModeGuard guard(p.mode);
  if (spec.crash_after_ms > 0) {
    const CrashReport rep = run_crash_point(spec, p);
    row.run = rep.run;
    row.recovery_us = rep.recovery_us;
    if (rep.mismatches > 0) {
      detail::crash_failure_cell().fetch_add(rep.mismatches,
                                             std::memory_order_relaxed);
      std::fprintf(stderr,
                   "repro: %s: %d detectability violation(s) after "
                   "simulated crash\n",
                   point_name(spec, p).c_str(), rep.mismatches);
    }
  } else {
    auto holder = p.algo->make();
    switch (p.algo->kind) {
      case Kind::set: {
        auto* set = static_cast<SetIface*>(holder.get());
        prefill(*set, p.key_range, spec.prefill_pct);
        const Workload w(p.key_range, p.mix, spec.dist,
                         spec.zipf_theta);
        row.run = run_threads(p.threads, [&](int, Rng& rng) {
          const auto key = w.pick_key(rng);
          switch (w.pick_op(rng)) {
            case OpType::insert: detail::keep(set->insert(key)); break;
            case OpType::erase: detail::keep(set->erase(key)); break;
            case OpType::find: detail::keep(set->find(key)); break;
          }
        });
        break;
      }
      case Kind::queue: {
        auto* q = static_cast<QueueIface*>(holder.get());
        const std::size_t pre = detail::resolve_queue_prefill(spec);
        for (std::size_t i = 0; i < pre; ++i) {
          q->enqueue(static_cast<std::uint64_t>(i));
        }
        row.run = run_threads(p.threads, [&](int, Rng& rng) {
          q->enqueue(rng.next());
          std::uint64_t out = 0;
          detail::keep(q->dequeue(out));
        });
        break;
      }
      case Kind::stack: {
        auto* st = static_cast<StackIface*>(holder.get());
        for (int i = 0; i < 1024; ++i) {
          st->push(static_cast<std::uint64_t>(i));
        }
        row.run = run_threads(p.threads, [&](int, Rng& rng) {
          if (rng.below(2) == 0) {
            st->push(rng.next());
          } else {
            std::uint64_t out = 0;
            detail::keep(st->pop(out));
          }
        });
        break;
      }
      case Kind::exchanger: {
        auto* ex = static_cast<ExchangerIface*>(holder.get());
        row.run = run_threads(p.threads, [&](int, Rng& rng) {
          std::uint64_t out = 0;
          detail::keep(ex->exchange(rng.next(), 256, out));
        });
        break;
      }
    }
  }
  row.run.point_index =
      detail::point_counter().fetch_add(1, std::memory_order_relaxed);
  return row;
}

// Standalone driver: expands the grid and streams every row to the
// sinks.  The figure binaries go through google-benchmark registration
// instead (bench/bench_common.hpp) so --benchmark_filter keeps working;
// tests and embedders use this directly.
inline void run_spec(const ExperimentSpec& spec, SinkSet& sinks) {
  sinks.begin(spec.figure, spec.what);
  for (const Point& p : expand(spec)) {
    sinks.row(run_point(spec, p));
  }
}

}  // namespace repro::harness
