// Workload description for the experiment engine: the paper's operation
// mixes (read-intensive 15/15/70, update-intensive 35/35/30), uniform
// and Zipfian key selection over [1, key_range], and the per-thread RNG.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace repro::harness {

// Operation mix in percent; find_pct is the remainder to 100.
struct Mix {
  const char* name;
  int insert_pct;
  int erase_pct;
  int find_pct;
};

inline constexpr Mix kReadIntensive{"read-intensive", 15, 15, 70};
inline constexpr Mix kUpdateIntensive{"update-intensive", 35, 35, 30};
// Pure-churn mix (no finds): the memory subsystem's stress point —
// every operation allocates or retires a node, so throughput here is
// what the epoch reclaimer + node pools are accountable for.
inline constexpr Mix kUpdateOnly{"update-only", 50, 50, 0};

enum class OpType { insert, erase, find };

// How keys are drawn from [1, key_range].
enum class KeyDist { uniform, zipfian };

inline const char* key_dist_name(KeyDist d) {
  return d == KeyDist::zipfian ? "zipfian" : "uniform";
}

// xorshift64*: fast, decent-quality, one word of state per thread.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull)
      : state_(seed != 0 ? seed : 0x853c49e6748fea9bull) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  std::uint64_t below(std::uint64_t n) { return next() % n; }

  // Uniform double in [0, 1) from the top 53 bits.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Zipf(theta)-distributed ranks over [1, n], skewed toward low ranks —
// the skewed-key scenario axis.  Uses the Gray et al. closed-form
// approximation ("Quickly generating billion-record synthetic
// databases", SIGMOD '94): construction is O(n) to sum the zeta series,
// draws are O(1) and share the per-thread Rng, so the generator itself
// is immutable and safe to use from every worker concurrently.
class Zipfian {
 public:
  Zipfian() = default;

  // The Gray et al. form requires theta in (0, 1); out-of-range values
  // (notably the classic Zipf s=1, where alpha would divide by zero)
  // are clamped to the nearest supported skew.
  explicit Zipfian(std::uint64_t n, double theta = 0.99)
      : n_(n),
        theta_(theta < 0.001 ? 0.001 : theta > 0.999 ? 0.999 : theta) {
    theta = theta_;
    double zetan = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zetan_ = zetan;
    zeta2_ = 1.0 + std::pow(0.5, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  std::uint64_t next(Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 1;
    if (uz < zeta2_) return 2;
    const auto rank =
        1 + static_cast<std::uint64_t>(
                static_cast<double>(n_) *
                std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank > n_ ? n_ : rank;  // guard fp rounding at the tail
  }

 private:
  std::uint64_t n_ = 0;
  double theta_ = 0;
  double zetan_ = 1;
  double zeta2_ = 1;
  double alpha_ = 1;
  double eta_ = 0;
};

struct Workload {
  std::int64_t key_range;
  Mix mix;
  KeyDist dist;
  Zipfian zipf;  // configured iff dist == zipfian

  // The constructor (not aggregate init) guarantees the Zipfian
  // constants are precomputed whenever the distribution asks for skew —
  // `Workload{range, mix, KeyDist::zipfian}` cannot leave zipf
  // unconfigured.
  Workload(std::int64_t key_range, Mix mix,
           KeyDist dist = KeyDist::uniform, double theta = 0.99)
      : key_range(key_range),
        mix(mix),
        dist(dist),
        zipf(dist == KeyDist::zipfian
                 ? Zipfian(static_cast<std::uint64_t>(key_range), theta)
                 : Zipfian()) {}

  std::int64_t pick_key(Rng& rng) const {
    if (dist == KeyDist::zipfian) {
      return static_cast<std::int64_t>(zipf.next(rng));
    }
    return 1 +
           static_cast<std::int64_t>(
               rng.below(static_cast<std::uint64_t>(key_range)));
  }

  OpType pick_op(Rng& rng) const {
    const auto u = static_cast<int>(rng.below(100));
    if (u < mix.insert_pct) return OpType::insert;
    if (u < mix.insert_pct + mix.erase_pct) return OpType::erase;
    return OpType::find;
  }
};

}  // namespace repro::harness
