// Workload description for the figure benches: the paper's operation
// mixes (read-intensive 15/15/70, update-intensive 35/35/30), uniform
// key selection over [1, key_range], and the per-thread RNG.
#pragma once

#include <cstdint>

namespace repro::harness {

// Operation mix in percent; find_pct is the remainder to 100.
struct Mix {
  const char* name;
  int insert_pct;
  int erase_pct;
  int find_pct;
};

inline constexpr Mix kReadIntensive{"read-intensive", 15, 15, 70};
inline constexpr Mix kUpdateIntensive{"update-intensive", 35, 35, 30};

enum class OpType { insert, erase, find };

// xorshift64*: fast, decent-quality, one word of state per thread.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull)
      : state_(seed != 0 ? seed : 0x853c49e6748fea9bull) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

struct Workload {
  std::int64_t key_range;
  Mix mix;

  std::int64_t pick_key(Rng& rng) const {
    return 1 +
           static_cast<std::int64_t>(
               rng.below(static_cast<std::uint64_t>(key_range)));
  }

  OpType pick_op(Rng& rng) const {
    const auto u = static_cast<int>(rng.below(100));
    if (u < mix.insert_pct) return OpType::insert;
    if (u < mix.insert_pct + mix.erase_pct) return OpType::erase;
    return OpType::find;
  }
};

}  // namespace repro::harness
