// Fork-kill-recover fuzzing: the true-crash half of the crash engine.
//
// The shadow-NVM fuzzers (crashfuzz.hpp) simulate power failure inside
// one process.  This harness makes the durability claim for real: the
// parent forks a CHILD that attaches the mmap heap (pmem/mmap_heap.hpp),
// builds a detectable structure as a heap root and runs a journaled
// workload against it in Mode::mmap; the child is SIGKILLed — either at
// a deterministic persistence-instruction boundary
// (pmem::crash::arm_kill, replayable from a {seed, kill_point} pair) or
// by a parent-timed signal — and a FRESH verifier process then maps the
// same heap file and asserts the paper's detectability contract against
// what the dead process durably left behind:
//
//   K1  Each worker lane's durable descriptor names either its last
//       journaled operation or the one in flight at the kill (seq is
//       J or J+1) — nothing else.
//   K2  A descriptor naming a journaled (completed) operation carries
//       exactly that operation's response.
//   K3  An in-flight operation reported completed must carry the
//       response the durable contents imply — completed-with-response
//       XOR not-applied, never "done" with a stale/lost response.
//   K4  The durable walk matches the journaled model: per-lane key
//       ranges for lists (each lane's range must equal its journal
//       replay, ± its single in-flight effect), a global value audit
//       for queues (every durable value was enqueued and not yet
//       dequeued; losses only where an in-flight dequeue can account
//       for them; exact FIFO order at one lane).
//
// What a SIGKILL does and does not test: the page cache survives the
// signal, so every store the child executed — fenced or not — is in
// the reattached image; the kill boundary truncates the *instruction
// stream*, not the write-back queue.  The harness therefore exercises
// reattach/recovery machinery and store-ORDER protocol bugs (a "done"
// record written before its response, a link published before its
// node).  The REPRO_MUTATE_DROP_MSYNC build (detectable.hpp) emulates
// exactly such a reorder and must be caught here; unordered write-back
// LOSS remains the shadow fuzzers' jurisdiction.
//
// Journaling: the child appends one JSONL line per completed operation
// with a single write(2) each (durable-in-page-cache at the kill, and
// the "flush after every row" contract the sinks satellite demands), a
// per-lane hello line before the lane's first operation, and the
// verifier tolerates a torn final line.  Each trial uses a private
// heap file (REPRO_HEAP_PATH or /tmp/repro_heap.<pid>.pmem) that the
// driver deletes or reuses — nothing accumulates.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "repro/ds/dt_list.hpp"
#include "repro/ds/hm_hashtable.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/ds/isb_queue.hpp"
#include "repro/harness/runner.hpp"
#include "repro/pmem/crash.hpp"
#include "repro/pmem/mmap_heap.hpp"

namespace repro::harness::kill {

// The detectable structure families the kill harness drives.  These
// are the concrete non-virtual templates, not registry wrappers: a
// polymorphic object's vtable pointer is process-specific and would be
// stale in the verifier, so the heap root must be vtable-free.
enum class Family { isb_list, isb_queue, dt_list, hm_map };

inline const char* family_name(Family f) {
  switch (f) {
    case Family::isb_list: return "isb-list";
    case Family::isb_queue: return "isb-queue";
    case Family::dt_list: return "dt-list";
    case Family::hm_map: return "hm-map";
  }
  return "?";
}

inline const std::vector<Family>& all_families() {
  static const std::vector<Family> fams = {
      Family::isb_list, Family::isb_queue, Family::dt_list,
      Family::hm_map};
  return fams;
}

// One trial's full parameterisation; {family, seed, threads,
// kill_point} replays a deterministic single-lane trial bit-for-bit.
struct KillPlan {
  Family family = Family::isb_list;
  std::string heap_path = "/tmp/repro_heap.pmem";
  std::uint64_t seed = 1;
  int threads = 1;
  int ops_budget = 512;          // operations per lane
  std::uint64_t kill_point = 0;  // >0: SIGKILL at n-th persistence instr
  int kill_delay_us = 0;         // >0: parent-timed SIGKILL instead
  std::size_t heap_bytes = pmem::MmapHeap::kDefaultBytes;
  // Double-kill scenario: after the workload child dies, a second
  // SIGKILL (its instruction index derived from `seed`) is armed
  // inside the first VERIFIER's recovery/verify pass, and a third
  // fresh process then delivers the verdict — crash-during-recovery
  // with real process death.
  bool double_kill = false;

  std::string journal_path() const { return heap_path + ".journal"; }
  std::string detail_path() const { return heap_path + ".viol"; }
};

struct TrialResult {
  bool infra_ok = true;  // fork/attach/exec machinery worked
  bool killed = false;   // the SIGKILL landed (else the budget ran out)
  bool vacuous = false;  // killed before the root finished setup
  bool verifier_killed = false;  // double_kill: pass one died mid-verify
  int violations = 0;
  std::string what;  // first violation's diagnostic
};

struct KillFailure {
  std::string family;
  std::uint64_t seed = 0;
  std::uint64_t kill_point = 0;
  int delay_us = 0;
  int threads = 0;
  std::string what;
  bool double_kill = false;
};

struct KillReport {
  int trials = 0;
  int kills = 0;       // trials where the SIGKILL landed
  int completed = 0;   // child ran out its budget before the kill
  int vacuous = 0;
  int verifier_kills = 0;  // double_kill: verifier passes SIGKILLed
  int infra_skips = 0; // environment failures (not violations)
  int violations = 0;
  std::vector<KillFailure> failures;  // first few, for the reproducer
};

namespace detail {

inline constexpr std::int64_t kLaneKeySpan = 32;
inline constexpr const char* kRootName = "structure";
inline constexpr const char* kSealRootName = "vseal";

// Verifier-pass seal (double-kill scenario).  verify_in_process is
// pure loads — it issues no persistence instructions of its own — so
// a kill armed inside the verifier would never fire.  The seal gives
// the second SIGKILL a deterministic landing zone: a monotone
// started/done counter pair bracketing the verify pass, written
// through counted persist<> cells.  Each store_persist is a pwb +
// pfence, so the bracket spans exactly kSealInstructions counted
// instructions and a kill point in [1, kSealInstructions] always
// lands (unless the pass exits vacuous between the brackets).
// Invariant any later pass may check: started >= done.
struct VerifySeal {
  alignas(64) pmem::persist<std::uint64_t> started;
  alignas(64) pmem::persist<std::uint64_t> done;
};
inline constexpr std::uint64_t kSealInstructions = 4;

inline std::int64_t lane_key_base(int lane) {
  return static_cast<std::int64_t>(lane) * kLaneKeySpan;
}

// Queue values are unique and lane-tagged so the global audit can
// attribute every durable value.
inline std::uint64_t lane_value(int lane, int op) {
  return static_cast<std::uint64_t>(lane + 1) * 1'000'000u +
         static_cast<std::uint64_t>(op) + 1;
}

// One write(2) per line: atomic for O_APPEND regular files and already
// in the page cache when the SIGKILL lands — the journal needs no
// flush discipline beyond "don't buffer in userspace".
struct JournalWriter {
  int fd = -1;
  bool open_trunc(const std::string& path) {
    fd = ::open(path.c_str(),
                O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                0644);
    return fd >= 0;
  }
  void line(const char* fmt, ...)
      __attribute__((format(printf, 2, 3))) {
    char buf[192];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf) - 1, fmt, ap);
    va_end(ap);
    if (n < 0) return;
    if (n > static_cast<int>(sizeof(buf) - 2)) {
      n = static_cast<int>(sizeof(buf) - 2);
    }
    buf[n] = '\n';
    [[maybe_unused]] ssize_t w = ::write(fd, buf, static_cast<std::size_t>(n) + 1);
  }
};

struct OpLine {
  int lane = 0;
  std::uint64_t seq = 0;
  char kind[16] = {0};
  std::int64_t key = 0;
  int ok = 0;
  std::uint64_t result = 0;
};

struct Journal {
  std::map<int, int> lane_slot;               // hello lines
  std::map<int, std::vector<OpLine>> ops;     // per lane, in order

  // Tolerates a missing file (killed before the journal opened) and a
  // torn final line (killed mid-write).
  void parse(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return;
    std::string data;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.append(buf, n);
    }
    std::fclose(f);
    std::size_t pos = 0;
    while (true) {
      const std::size_t nl = data.find('\n', pos);
      if (nl == std::string::npos) break;  // torn tail dropped
      const std::string line = data.substr(pos, nl - pos);
      pos = nl + 1;
      OpLine op;
      unsigned long long seq = 0, result = 0;
      long long key = 0;
      if (std::sscanf(line.c_str(),
                      "{\"lane\":%d,\"seq\":%llu,\"kind\":\"%15[a-z]\","
                      "\"key\":%lld,\"ok\":%d,\"result\":%llu}",
                      &op.lane, &seq, op.kind, &key, &op.ok,
                      &result) == 6) {
        op.seq = seq;
        op.key = key;
        op.result = result;
        ops[op.lane].push_back(op);
        continue;
      }
      int lane = 0, slot = 0;
      if (std::sscanf(line.c_str(), "{\"lane\":%d,\"slot\":%d}", &lane,
                      &slot) == 2) {
        lane_slot[lane] = slot;
      }
    }
  }
};

// ------------------------------------------------------------------
// Child side: the workload that gets killed.
// ------------------------------------------------------------------

// All lanes must hold their thread slots SIMULTANEOUSLY before any
// operation runs: slots recycle when a thread exits, so without the
// start barrier a fast early lane can finish and die before a later
// lane spawns, which would hand two lanes one descriptor and make the
// journal→slot binding meaningless.
struct StartBarrier {
  std::atomic<int> ready{0};
  void arrive_and_wait(int parties) {
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (ready.load(std::memory_order_acquire) < parties) {
    }
  }
};

template <typename S>
void run_list_lanes(const KillPlan& plan, S* s, JournalWriter& j) {
  std::vector<std::thread> lanes;
  lanes.reserve(static_cast<std::size_t>(plan.threads));
  StartBarrier barrier;
  for (int t = 0; t < plan.threads; ++t) {
    lanes.emplace_back([&, t] {
      const int slot = ds::thread_slot();
      j.line("{\"lane\":%d,\"slot\":%d}", t, slot);
      barrier.arrive_and_wait(plan.threads);
      Rng rng(mix_seed(plan.seed, static_cast<std::uint64_t>(t)));
      for (int o = 0; o < plan.ops_budget; ++o) {
        const std::int64_t key =
            lane_key_base(t) + 1 +
            static_cast<std::int64_t>(rng.below(
                static_cast<std::uint64_t>(kLaneKeySpan)));
        const std::uint64_t dice = rng.below(10);
        const char* kind;
        bool ok;
        if (dice < 4) {
          kind = "insert";
          ok = s->insert(key);
        } else if (dice < 8) {
          kind = "erase";
          ok = s->erase(key);
        } else {
          kind = "find";
          ok = s->find(key);
        }
        const std::uint64_t seq = s->recover(slot).seq;
        j.line("{\"lane\":%d,\"seq\":%llu,\"kind\":\"%s\",\"key\":%lld,"
               "\"ok\":%d,\"result\":%llu}",
               t, static_cast<unsigned long long>(seq), kind,
               static_cast<long long>(key), ok ? 1 : 0,
               static_cast<unsigned long long>(ok ? 1 : 0));
      }
    });
  }
  for (std::thread& th : lanes) th.join();
}

template <typename S>
void run_queue_lanes(const KillPlan& plan, S* s, JournalWriter& j) {
  std::vector<std::thread> lanes;
  lanes.reserve(static_cast<std::size_t>(plan.threads));
  StartBarrier barrier;
  for (int t = 0; t < plan.threads; ++t) {
    lanes.emplace_back([&, t] {
      const int slot = ds::thread_slot();
      j.line("{\"lane\":%d,\"slot\":%d}", t, slot);
      barrier.arrive_and_wait(plan.threads);
      Rng rng(mix_seed(plan.seed, static_cast<std::uint64_t>(t)));
      int enq = 0;
      for (int o = 0; o < plan.ops_budget; ++o) {
        if (rng.below(10) < 6) {
          const std::uint64_t v = lane_value(t, enq++);
          s->enqueue(v);
          const std::uint64_t seq = s->recover(slot).seq;
          j.line("{\"lane\":%d,\"seq\":%llu,\"kind\":\"enqueue\","
                 "\"key\":%lld,\"ok\":1,\"result\":%llu}",
                 t, static_cast<unsigned long long>(seq),
                 static_cast<long long>(v),
                 static_cast<unsigned long long>(v));
        } else {
          const ds::DequeueResult r = s->dequeue();
          const std::uint64_t seq = s->recover(slot).seq;
          j.line("{\"lane\":%d,\"seq\":%llu,\"kind\":\"dequeue\","
                 "\"key\":0,\"ok\":%d,\"result\":%llu}",
                 t, static_cast<unsigned long long>(seq), r.ok ? 1 : 0,
                 static_cast<unsigned long long>(r.value));
        }
      }
    });
  }
  for (std::thread& th : lanes) th.join();
}

// The forked child's whole life.  Exit 0 = budget completed; the
// interesting exits are the ones that never happen (SIGKILL).
[[noreturn]] inline void run_child_workload(const KillPlan& plan,
                                            int notify_fd) {
  ::signal(SIGPIPE, SIG_IGN);  // parent may not be reading the pipe
  pmem::MmapHeap* heap =
      pmem::MmapHeap::attach(plan.heap_path, plan.heap_bytes);
  if (heap == nullptr) ::_exit(120);
  pmem::set_mode(pmem::Mode::mmap);
  JournalWriter j;
  void* root = nullptr;
  switch (plan.family) {
    case Family::isb_list:
      root = heap->root<ds::IsbListT<>>(kRootName);
      break;
    case Family::isb_queue:
      root = heap->root<ds::IsbQueueT<>>(kRootName);
      break;
    case Family::dt_list:
      root = heap->root<ds::DtListT<>>(kRootName);
      break;
    case Family::hm_map:
      // The hash map's whole bucket directory (blocks + sentinels) is
      // carved from the arena during this construction, so the fresh
      // verifier process walks it through the same fixed-base pointers.
      root = heap->root<ds::IsbHashMapT<>>(kRootName);
      break;
  }
  if (root == nullptr || !j.open_trunc(plan.journal_path())) {
    ::_exit(120);
  }
  // Setup is durable; tell the parent it may start the kill timer.
  if (notify_fd >= 0) {
    const char ready = 'r';
    [[maybe_unused]] ssize_t w = ::write(notify_fd, &ready, 1);
    ::close(notify_fd);
  }
  // Armed AFTER setup: heap bookkeeping persists through the raw
  // (uncounted) path, so instruction n is the n-th *algorithm*
  // persistence instruction — the deterministic replay anchor.
  if (plan.kill_point > 0) pmem::crash::arm_kill(plan.kill_point);
  switch (plan.family) {
    case Family::isb_list:
      run_list_lanes(plan, static_cast<ds::IsbListT<>*>(root), j);
      break;
    case Family::isb_queue:
      run_queue_lanes(plan, static_cast<ds::IsbQueueT<>*>(root), j);
      break;
    case Family::dt_list:
      run_list_lanes(plan, static_cast<ds::DtListT<>*>(root), j);
      break;
    case Family::hm_map:
      // Same lane driver as the lists: the map exposes the identical
      // insert/erase/find + recover surface, and the per-lane key
      // spans scatter across buckets via the map's hash.
      run_list_lanes(plan, static_cast<ds::IsbHashMapT<>*>(root), j);
      break;
  }
  ::_exit(0);
}

// ------------------------------------------------------------------
// Verifier side: runs in a FRESH process that maps the heap file.
// ------------------------------------------------------------------

template <typename S>
int verify_list(S* s, const Journal& j, std::string& detail) {
  int violations = 0;
  auto fail = [&](const std::string& w) {
    ++violations;
    if (detail.empty()) detail = w;
  };

  std::vector<std::int64_t> walked;
  if (!s->snapshot_keys(walked)) {
    fail("durable walk failed: link into unowned memory or a cycle");
    return violations;
  }
  std::set<std::int64_t> durable(walked.begin(), walked.end());

  std::set<std::int64_t> attributed;
  for (const auto& [lane, slot] : j.lane_slot) {
    const auto it = j.ops.find(lane);
    static const std::vector<OpLine> kNone;
    const std::vector<OpLine>& ops =
        it != j.ops.end() ? it->second : kNone;

    // Journal well-formedness: each lane's seqs are 1..J contiguous.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].seq != i + 1) {
        fail("journal gap in lane " + std::to_string(lane));
        return violations;
      }
    }
    const std::uint64_t J = ops.size();

    // The lane's journaled model, and its durable-contents slice.
    std::set<std::int64_t> model;
    for (const OpLine& op : ops) {
      if (op.ok == 0) continue;
      if (std::strcmp(op.kind, "insert") == 0) model.insert(op.key);
      if (std::strcmp(op.kind, "erase") == 0) model.erase(op.key);
    }
    std::set<std::int64_t> lane_durable;
    const std::int64_t lo = lane_key_base(lane) + 1;
    const std::int64_t hi = lane_key_base(lane) + kLaneKeySpan;
    for (std::int64_t k : durable) {
      if (k >= lo && k <= hi) {
        lane_durable.insert(k);
        attributed.insert(k);
      }
    }

    const ds::Recovered rec = s->recover(slot);
    if (rec.seq != J && rec.seq != J + 1) {
      fail("lane " + std::to_string(lane) + " descriptor seq " +
           std::to_string(rec.seq) + " matches no operation (journal " +
           std::to_string(J) + ")");  // K1
      continue;
    }

    if (rec.seq == J + 1) {
      // In-flight at the kill.  The announcement (kind/key) preceded
      // every possible kill point of the op, so it is durable truth.
      const bool is_insert = rec.kind == ds::OpKind::insert;
      const bool is_erase = rec.kind == ds::OpKind::erase;
      const bool is_find = rec.kind == ds::OpKind::find;
      if (!is_insert && !is_erase && !is_find) {
        fail("lane " + std::to_string(lane) +
             " in-flight descriptor has a non-list op kind");
        continue;
      }
      const bool present = model.count(rec.key) > 0;
      std::set<std::int64_t> with = model;
      if (is_insert) with.insert(rec.key);
      if (is_erase) with.erase(rec.key);
      if (rec.completed) {
        // K3: the committed response must be the one the model implies,
        // and a successful mutation's effect must be durable.
        const bool expect_ok = is_insert ? !present : present;
        if (rec.ok != expect_ok) {
          fail("lane " + std::to_string(lane) +
               " in-flight op committed with a stale/wrong response");
        }
        const std::set<std::int64_t>& expected =
            (rec.ok && !is_find) ? with : model;
        if (lane_durable != expected) {
          fail("lane " + std::to_string(lane) +
               " committed in-flight effect disagrees with durable "
               "contents");
        }
      } else {
        // Pending is always legitimate; contents match the model with
        // or without the single in-flight effect (K4).
        if (lane_durable != model && lane_durable != with) {
          fail("lane " + std::to_string(lane) +
               " durable contents match neither pre- nor post-in-"
               "flight model");
        }
      }
    } else {
      // K2: descriptor names the last journaled op exactly.
      if (J > 0) {
        const OpLine& last = ops.back();
        const char* kind_name =
            rec.kind == ds::OpKind::insert   ? "insert"
            : rec.kind == ds::OpKind::erase  ? "erase"
            : rec.kind == ds::OpKind::find   ? "find"
                                             : "?";
        if (!rec.completed || std::strcmp(last.kind, kind_name) != 0 ||
            rec.key != last.key || rec.ok != (last.ok != 0) ||
            rec.result != last.result) {
          fail("lane " + std::to_string(lane) +
               " descriptor lost or corrupted the last journaled "
               "response");
        }
      }
      if (lane_durable != model) {
        fail("lane " + std::to_string(lane) +
             " durable contents diverge from the journaled model");
      }
    }
  }

  // Keys no hello'd lane owns cannot exist: lanes write their hello
  // before their first operation.
  for (std::int64_t k : durable) {
    if (attributed.count(k) == 0) {
      fail("durable key " + std::to_string(k) +
           " belongs to no journaled lane");
      break;
    }
  }
  return violations;
}

template <typename S>
int verify_queue(S* s, const Journal& j, int threads,
                 std::string& detail) {
  int violations = 0;
  auto fail = [&](const std::string& w) {
    ++violations;
    if (detail.empty()) detail = w;
  };

  std::vector<std::uint64_t> durable;
  if (!s->snapshot_values(durable)) {
    fail("durable walk failed: link into unowned memory or a cycle");
    return violations;
  }
  const std::set<std::uint64_t> durable_set(durable.begin(),
                                            durable.end());

  std::set<std::uint64_t> enq_done, deq_done;
  std::set<std::uint64_t> inflight_enq;  // pending or committed
  int pending_deq = 0;

  // Lanes interact through the queue (one lane dequeues another's
  // values), so judgement is two-pass: first gather every lane's
  // journal facts and descriptor — an in-flight dequeue may return a
  // value whose enqueue is in flight on a lane not yet visited — then
  // check each lane against the complete picture.
  struct LaneView {
    int lane;
    int slot;
    const std::vector<OpLine>* ops;
    ds::Recovered rec;
    std::uint64_t J;
  };
  static const std::vector<OpLine> kNone;
  std::vector<LaneView> lanes;
  for (const auto& [lane, slot] : j.lane_slot) {
    const auto it = j.ops.find(lane);
    const std::vector<OpLine>& ops =
        it != j.ops.end() ? it->second : kNone;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].seq != i + 1) {
        fail("journal gap in lane " + std::to_string(lane));
        return violations;
      }
      if (std::strcmp(ops[i].kind, "enqueue") == 0) {
        enq_done.insert(ops[i].result);
      } else if (ops[i].ok != 0) {
        if (!deq_done.insert(ops[i].result).second) {
          fail("value " + std::to_string(ops[i].result) +
               " journaled as dequeued twice");
        }
      }
    }
    const LaneView lv{lane, slot, &ops, s->recover(slot), ops.size()};
    if (lv.rec.seq == lv.J + 1 &&
        lv.rec.kind == ds::OpKind::enqueue) {
      inflight_enq.insert(static_cast<std::uint64_t>(lv.rec.key));
    }
    lanes.push_back(lv);
  }

  for (const LaneView& lv : lanes) {
    const int lane = lv.lane;
    const ds::Recovered& rec = lv.rec;
    const std::uint64_t J = lv.J;
    if (rec.seq != J && rec.seq != J + 1) {
      fail("lane " + std::to_string(lane) + " descriptor seq " +
           std::to_string(rec.seq) + " matches no operation (journal " +
           std::to_string(J) + ")");  // K1
      continue;
    }
    if (rec.seq == J) {
      if (J > 0) {
        const OpLine& last = lv.ops->back();
        const char* kind_name = rec.kind == ds::OpKind::enqueue
                                    ? "enqueue"
                                : rec.kind == ds::OpKind::dequeue
                                    ? "dequeue"
                                    : "?";
        if (!rec.completed || std::strcmp(last.kind, kind_name) != 0 ||
            rec.ok != (last.ok != 0) || rec.result != last.result) {
          fail("lane " + std::to_string(lane) +
               " descriptor lost or corrupted the last journaled "
               "response");  // K2
        }
      }
      continue;
    }
    // In-flight (seq == J+1).
    if (rec.kind == ds::OpKind::enqueue) {
      const auto v = static_cast<std::uint64_t>(rec.key);
      if (rec.completed) {
        // K3: enqueue commits (true, value); the effect must be there
        // (or already consumed by a journaled dequeue).
        if (!rec.ok || rec.result != v) {
          fail("lane " + std::to_string(lane) +
               " committed in-flight enqueue carries a stale/wrong "
               "response");
        } else if (durable_set.count(v) == 0 &&
                   deq_done.count(v) == 0) {
          fail("lane " + std::to_string(lane) +
               " committed enqueue's value is durably lost");
        }
      }
    } else if (rec.kind == ds::OpKind::dequeue) {
      if (rec.completed) {
        if (rec.ok) {
          const std::uint64_t v = rec.result;
          if (enq_done.count(v) == 0 && inflight_enq.count(v) == 0) {
            fail("lane " + std::to_string(lane) +
                 " committed dequeue returned a never-enqueued value "
                 "(stale response?)");  // K3
          } else if (durable_set.count(v) != 0) {
            fail("lane " + std::to_string(lane) +
                 " committed dequeue's value is still durably "
                 "enqueued");
          } else if (!deq_done.insert(v).second) {
            fail("value " + std::to_string(v) + " dequeued twice");
          }
        }
      } else {
        ++pending_deq;
      }
    } else {
      fail("lane " + std::to_string(lane) +
           " in-flight descriptor has a non-queue op kind");
    }
  }

  // K4, global value audit.
  for (std::uint64_t v : durable) {
    if (enq_done.count(v) == 0 && inflight_enq.count(v) == 0) {
      fail("durable value " + std::to_string(v) +
           " was never enqueued (lost node payload?)");
      break;
    }
  }
  for (std::uint64_t v : deq_done) {
    if (durable_set.count(v) != 0) {
      fail("journaled dequeue of " + std::to_string(v) +
           " left the value durably enqueued");
      break;
    }
  }
  int missing = 0;
  for (std::uint64_t v : enq_done) {
    if (deq_done.count(v) == 0 && durable_set.count(v) == 0) ++missing;
  }
  if (missing > pending_deq) {
    fail(std::to_string(missing) +
         " enqueued values durably lost with only " +
         std::to_string(pending_deq) + " in-flight dequeues");
  }

  // One lane: the journal is a total order, so FIFO is checkable
  // exactly — replay it and require the durable sequence to be the
  // model with or without the in-flight effect.
  if (threads == 1 && violations == 0 && !j.lane_slot.empty()) {
    const int lane = j.lane_slot.begin()->first;
    const int slot = j.lane_slot.begin()->second;
    const auto it = j.ops.find(lane);
    std::vector<std::uint64_t> model;
    if (it != j.ops.end()) {
      for (const OpLine& op : it->second) {
        if (std::strcmp(op.kind, "enqueue") == 0) {
          model.push_back(op.result);
        } else if (op.ok != 0) {
          if (model.empty() || model.front() != op.result) {
            fail("journaled dequeues violate FIFO against the "
                 "journaled enqueues");
            return violations;
          }
          model.erase(model.begin());
        }
      }
    }
    const ds::Recovered rec = s->recover(slot);
    const std::uint64_t J =
        it != j.ops.end() ? it->second.size() : 0;
    std::vector<std::uint64_t> with = model;
    bool effect_known = false, effect_applied = false;
    if (rec.seq == J + 1) {
      if (rec.kind == ds::OpKind::enqueue) {
        with.push_back(static_cast<std::uint64_t>(rec.key));
      } else if (!with.empty()) {
        with.erase(with.begin());
      }
      if (rec.completed) {
        effect_known = true;
        effect_applied = rec.ok || rec.kind == ds::OpKind::enqueue;
      }
    } else {
      effect_known = true;  // nothing in flight
      with = model;
    }
    const bool m0 = durable == model;
    const bool m1 = durable == with;
    if (effect_known ? !(effect_applied ? m1 : m0) : !(m0 || m1)) {
      fail("single-lane durable FIFO sequence matches neither pre- "
           "nor post-in-flight model");
    }
  }
  return violations;
}

// Attach + dispatch inside the verifier process.  Returns violations,
// -1 for a vacuous trial (setup never finished), -2 for environment
// failure.  A non-zero kill2_point arms a SIGKILL over the seal's
// counted instructions (double-kill scenario) — this pass may never
// return; the caller's parent process observes the signal instead.
inline int verify_in_process(const KillPlan& plan, std::string& detail,
                             std::uint64_t kill2_point = 0) {
  pmem::MmapHeap* heap =
      pmem::MmapHeap::attach(plan.heap_path, plan.heap_bytes);
  if (heap == nullptr) return -2;
  Journal j;
  j.parse(plan.journal_path());
  VerifySeal* seal = nullptr;
  if (plan.double_kill) {
    // The seal's writes must run through the counted mmap persistence
    // path (the root directory itself persists through the raw,
    // uncounted path, so creating the root consumes no countdown).
    pmem::set_mode(pmem::Mode::mmap);
    seal = heap->root<VerifySeal>(kSealRootName);
    if (seal == nullptr) return -2;
    if (seal->done.load() > seal->started.load()) {
      if (detail.empty()) {
        detail = "verify seal corrupted: done counter ran ahead of "
                 "started (recovery-pass bracket ordering broke)";
      }
      return 1;
    }
    if (kill2_point > 0) pmem::crash::arm_kill(kill2_point);
    seal->started.store_persist(seal->started.load() + 1);
  }
  int v = -2;
  switch (plan.family) {
    case Family::isb_list: {
      auto* s = heap->find_root<ds::IsbListT<>>(kRootName);
      v = s == nullptr ? -1 : verify_list(s, j, detail);
      break;
    }
    case Family::isb_queue: {
      auto* s = heap->find_root<ds::IsbQueueT<>>(kRootName);
      v = s == nullptr ? -1 : verify_queue(s, j, plan.threads, detail);
      break;
    }
    case Family::dt_list: {
      auto* s = heap->find_root<ds::DtListT<>>(kRootName);
      v = s == nullptr ? -1 : verify_list(s, j, detail);
      break;
    }
    case Family::hm_map: {
      // The K4 audit iterates buckets inside snapshot_keys(); the
      // verifier's set-based comparison is walk-order-insensitive.
      auto* s = heap->find_root<ds::IsbHashMapT<>>(kRootName);
      v = s == nullptr ? -1 : verify_list(s, j, detail);
      break;
    }
  }
  if (seal != nullptr) seal->done.store_persist(seal->done.load() + 1);
  return v;
}

inline std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char buf[512];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  return std::string(buf, n);
}

}  // namespace detail

// Verification exit-code protocol (the verifier is a forked fresh
// process; its address space must never have seen the child's heap).
inline constexpr int kVerifyVacuous = 110;
inline constexpr int kVerifyInfraFail = 120;
// Sentinel (never an exit code): the armed verifier pass was itself
// SIGKILLed — the double-kill landed mid-recovery.  The caller runs a
// third fresh-process pass for the verdict.
inline constexpr int kVerifyKilled = -3;

// Forks a fresh process that maps the heap file, recovers, verifies,
// and reports through its exit code (violations capped at 99).  The
// first diagnostic lands in plan.detail_path().  kill2_point > 0 arms
// the double-kill inside the verifier child; if that SIGKILL lands
// the parent returns kVerifyKilled instead of an exit code.
inline int fork_verify(const KillPlan& plan,
                       std::uint64_t kill2_point = 0) {
  const pid_t pid = ::fork();
  if (pid < 0) return kVerifyInfraFail;
  if (pid == 0) {
    std::string detail;
    const int v = detail::verify_in_process(plan, detail, kill2_point);
    if (v == -2) ::_exit(kVerifyInfraFail);
    if (v == -1) ::_exit(kVerifyVacuous);
    if (v > 0) {
      if (std::FILE* f =
              std::fopen(plan.detail_path().c_str(), "w")) {
        std::fprintf(f, "%s\n", detail.c_str());
        std::fclose(f);
      }
      ::_exit(v > 99 ? 99 : v);
    }
    ::_exit(0);
  }
  int st = 0;
  ::waitpid(pid, &st, 0);
  if (WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL) return kVerifyKilled;
  if (!WIFEXITED(st)) return kVerifyInfraFail;
  return WEXITSTATUS(st);
}

// One full trial: fresh heap file, forked workload child, SIGKILL
// (armed or parent-timed), then TWO independent fresh-process
// verifications — recovery must be idempotent, so pass two re-walks
// everything pass one recovered and must agree with it.  With
// plan.double_kill the first verifier pass is itself SIGKILLed at a
// seed-derived point inside its recovery seal and a third fresh
// process becomes "pass one" — the idempotence agreement then spans a
// state that already absorbed a crash during recovery.
inline TrialResult kill_one(const KillPlan& plan) {
  TrialResult r;
  ::unlink(plan.heap_path.c_str());
  ::unlink(plan.journal_path().c_str());
  ::unlink(plan.detail_path().c_str());

  int pfd[2] = {-1, -1};
  if (::pipe(pfd) != 0) {
    r.infra_ok = false;
    return r;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    r.infra_ok = false;
    return r;
  }
  if (pid == 0) {
    ::close(pfd[0]);
    detail::run_child_workload(plan, pfd[1]);  // never returns
  }
  ::close(pfd[1]);
  char ready = 0;
  [[maybe_unused]] ssize_t got = ::read(pfd[0], &ready, 1);
  if (plan.kill_delay_us > 0) {
    ::usleep(static_cast<useconds_t>(plan.kill_delay_us));
    ::kill(pid, SIGKILL);
  }
  ::close(pfd[0]);
  int st = 0;
  ::waitpid(pid, &st, 0);
  if (WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL) {
    r.killed = true;
  } else if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
    r.killed = false;  // budget ran out first; still verified
  } else {
    r.infra_ok = false;
    return r;
  }

  // Double-kill scenario: arm a second SIGKILL inside the first
  // verifier's recovery pass (point derived from the trial seed, so
  // the reproducer replays it).  When it lands, a THIRD fresh process
  // delivers the verdict — verifying that crashing during recovery
  // leaves a state a later recovery still handles.
  std::uint64_t kill2_point = 0;
  if (plan.double_kill) {
    kill2_point =
        1 + mix_seed(plan.seed, 0xD0B13ull) % detail::kSealInstructions;
  }
  int first = fork_verify(plan, kill2_point);
  if (first == kVerifyKilled) {
    r.verifier_killed = true;
    first = fork_verify(plan);
  }
  if (first == kVerifyInfraFail) {
    r.infra_ok = false;
    return r;
  }
  if (first == kVerifyVacuous) {
    r.vacuous = true;
    return r;
  }
  r.violations = first;
  const int second = fork_verify(plan);
  if (second != first) {
    ++r.violations;
    r.what = "recovery is not idempotent: verifier passes disagree (" +
             std::to_string(first) + " vs " + std::to_string(second) +
             ")";
  } else if (first > 0) {
    r.what = detail::slurp(plan.detail_path());
  }
  return r;
}

// Randomized campaign over one family: `trials` forked kills, each
// with a fresh {seed, kill point} pair.  Deterministic mode (default)
// arms the kill at a drawn persistence-instruction index — each
// failure is replayable via kill_one{seed, kill_point}; timed mode
// SIGKILLs after a drawn microsecond delay instead.
inline KillReport kill_many(const KillPlan& proto, int trials,
                            bool timed = false) {
  KillReport rep;
  const std::uint64_t base =
      proto.seed != 0 ? proto.seed : global_seed();
  Rng rng(mix_seed(base, 0x6B116Cull));
  const std::uint64_t horizon =
      static_cast<std::uint64_t>(proto.ops_budget) *
      static_cast<std::uint64_t>(proto.threads) * 6u;
  for (int i = 0; i < trials; ++i) {
    KillPlan p = proto;
    p.seed = mix_seed(base, static_cast<std::uint64_t>(i));
    if (timed) {
      p.kill_point = 0;
      p.kill_delay_us = 50 + static_cast<int>(rng.below(5'000));
      // The default budgets finish in well under the shortest delay;
      // give the child enough work that the wall-clock kill lands
      // mid-run instead of reaping a finished process.
      p.ops_budget = std::max(p.ops_budget, 200'000);
    } else {
      p.kill_point = 1 + rng.below(horizon);
      p.kill_delay_us = 0;
    }
    const TrialResult t = kill_one(p);
    ++rep.trials;
    if (!t.infra_ok) {
      ++rep.infra_skips;
      continue;
    }
    if (t.killed) {
      ++rep.kills;
    } else {
      ++rep.completed;
    }
    if (t.vacuous) ++rep.vacuous;
    if (t.verifier_killed) ++rep.verifier_kills;
    rep.violations += t.violations;
    if (t.violations > 0 && rep.failures.size() < 8) {
      KillFailure f;
      f.family = family_name(p.family);
      f.seed = p.seed;
      f.kill_point = p.kill_point;
      f.delay_us = p.kill_delay_us;
      f.threads = p.threads;
      f.what = t.what;
      f.double_kill = p.double_kill;
      rep.failures.push_back(std::move(f));
    }
  }
  return rep;
}

// Failing-trial reproducers as JSON lines (the CI artifact); same
// truncate-once-per-process convention as crashfuzz's
// write_reproducer.  Replay one line with
//   kill_one({family, seed, threads, kill_point})
// (deterministic for threads == 1; timed failures replay the same
// workload draws, not the same kill instant).
inline void write_kill_reproducer(const KillReport& report,
                                  const std::string& path) {
  static bool truncated_once = false;
  std::FILE* f = std::fopen(path.c_str(), truncated_once ? "a" : "w");
  if (f == nullptr) return;
  truncated_once = true;
  for (const KillFailure& x : report.failures) {
    std::fprintf(f,
                 "{\"family\":\"%s\",\"seed\":%llu,\"kill_point\":%llu,"
                 "\"delay_us\":%d,\"threads\":%d,\"double_kill\":%d,"
                 "\"what\":\"%s\"}\n",
                 x.family.c_str(),
                 static_cast<unsigned long long>(x.seed),
                 static_cast<unsigned long long>(x.kill_point),
                 x.delay_us, x.threads, x.double_kill ? 1 : 0,
                 x.what.c_str());
  }
  std::fclose(f);
}

// Default heap path: REPRO_HEAP_PATH, or a pid-scoped /tmp file so
// concurrent CI jobs never collide.  The caller deletes it afterwards
// (see kill_recovery's teardown and the tests' RAII guard).
inline std::string default_heap_path() {
  if (const char* p = std::getenv("REPRO_HEAP_PATH")) return p;
  return "/tmp/repro_heap." + std::to_string(::getpid()) + ".pmem";
}

// Remove a trial's on-disk residue (heap file + journal + detail).
inline void cleanup_heap_files(const KillPlan& plan) {
  ::unlink(plan.heap_path.c_str());
  ::unlink(plan.journal_path().c_str());
  ::unlink(plan.detail_path().c_str());
}

}  // namespace repro::harness::kill
