// Per-thread operation-history recorder for the concurrent crash
// fuzzer (crashfuzz.hpp) and the durable-linearizability checker
// (linearize.hpp).
//
// Each worker owns one *lane*: a pre-reserved event vector only that
// worker appends to, so the hot path is lock-free — the single shared
// word is the global timestamp counter, one relaxed fetch_add per
// event.  Fetch-and-add tickets on a single atomic are totally ordered
// by cache coherence, so if operation A's response event really
// finished before operation B's invoke event started, A's ticket is
// smaller — exactly the real-time precedence relation the checker
// needs (ticket(resp A) < ticket(inv B) ⇒ A precedes B).
//
// Every operation appends an invoke event *before* touching the
// structure and a response event after it returns; an operation
// interrupted by the simulated crash (CrashUnwind) therefore leaves a
// dangling invoke — the checker's pending-at-crash op.  The driver
// stamps one crash event after the workers have unwound.
//
// On a verification failure the whole history dumps as JSON lines
// (one event per line, timestamp-sorted), the artifact CI uploads and
// the README's replay instructions consume.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/harness/registry.hpp"
#include "repro/pmem/crash.hpp"

namespace repro::harness {

inline const char* op_kind_name(ds::OpKind k) {
  switch (k) {
    case ds::OpKind::none: return "none";
    case ds::OpKind::insert: return "insert";
    case ds::OpKind::erase: return "erase";
    case ds::OpKind::find: return "find";
    case ds::OpKind::enqueue: return "enqueue";
    case ds::OpKind::dequeue: return "dequeue";
    case ds::OpKind::push: return "push";
    case ds::OpKind::pop: return "pop";
    case ds::OpKind::exchange: return "exchange";
  }
  return "?";
}

inline ds::OpKind op_kind_from_name(std::string_view n) {
  for (ds::OpKind k :
       {ds::OpKind::insert, ds::OpKind::erase, ds::OpKind::find,
        ds::OpKind::enqueue, ds::OpKind::dequeue, ds::OpKind::push,
        ds::OpKind::pop, ds::OpKind::exchange}) {
    if (n == op_kind_name(k)) return k;
  }
  return ds::OpKind::none;
}

enum class EventType { invoke, response, crash };

struct HistoryEvent {
  std::uint64_t ts = 0;    // global monotonic ticket
  int lane = -1;           // worker index; -1 for the crash event
  EventType type = EventType::invoke;
  std::uint64_t op = 0;    // per-lane op index pairing invoke/response
  ds::OpKind kind = ds::OpKind::none;
  std::int64_t input = 0;  // key (sets) / value (enqueue, push, exchange)
  bool ok = false;         // response events only
  std::uint64_t result = 0;
};

class HistoryRecorder {
 public:
  // Capacity is fixed up front (two events per operation) so lane
  // appends never reallocate — that is the lock-free-append contract.
  HistoryRecorder(int lanes, std::size_t max_ops_per_lane)
      : lanes_(static_cast<std::size_t>(lanes)) {
    for (Lane& l : lanes_) l.events.reserve(2 * max_ops_per_lane + 2);
  }

  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  // Owner-lane only.  Returns the op index pairing the response.
  std::uint64_t invoke(int lane, ds::OpKind kind, std::int64_t input) {
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    HistoryEvent e;
    e.lane = lane;
    e.type = EventType::invoke;
    e.op = l.next_op++;
    e.kind = kind;
    e.input = input;
    e.ts = tick();
    l.events.push_back(e);
    return e.op;
  }

  // Owner-lane only.  `op` is the index invoke() returned.
  void response(int lane, std::uint64_t op, bool ok,
                std::uint64_t result) {
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    // The invoke is the lane's last event: responses follow their
    // invoke immediately in a sequential lane.
    const HistoryEvent& inv = l.events.back();
    HistoryEvent e;
    e.lane = lane;
    e.type = EventType::response;
    e.op = op;
    e.kind = inv.kind;
    e.input = inv.input;
    e.ok = ok;
    e.result = result;
    e.ts = tick();
    l.events.push_back(e);
  }

  // Driver only, after every worker has unwound.
  void mark_crash() {
    crash_ts_ = tick();
  }
  bool crashed() const { return crash_ts_ != 0; }
  std::uint64_t crash_ts() const { return crash_ts_; }

  int lanes() const { return static_cast<int>(lanes_.size()); }
  const std::vector<HistoryEvent>& lane(int i) const {
    return lanes_[static_cast<std::size_t>(i)].events;
  }

  // All events (plus the crash marker, if any), timestamp-sorted.
  std::vector<HistoryEvent> merged() const {
    std::vector<HistoryEvent> out;
    std::size_t n = crash_ts_ != 0 ? 1 : 0;
    for (const Lane& l : lanes_) n += l.events.size();
    out.reserve(n);
    for (const Lane& l : lanes_) {
      out.insert(out.end(), l.events.begin(), l.events.end());
    }
    if (crash_ts_ != 0) {
      HistoryEvent c;
      c.type = EventType::crash;
      c.ts = crash_ts_;
      out.push_back(c);
    }
    std::sort(out.begin(), out.end(),
              [](const HistoryEvent& a, const HistoryEvent& b) {
                return a.ts < b.ts;
              });
    return out;
  }

  // One JSON object per event, timestamp-sorted — the failure
  // artifact's payload.  The caller frames it with its own metadata
  // line ({structure, seed, crash_point, ...}).
  std::string to_jsonl() const {
    std::string out;
    char buf[256];
    for (const HistoryEvent& e : merged()) {
      if (e.type == EventType::crash) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ts\":%llu,\"type\":\"crash\"}\n",
                      static_cast<unsigned long long>(e.ts));
        out += buf;
        continue;
      }
      if (e.type == EventType::invoke) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"ts\":%llu,\"type\":\"invoke\",\"lane\":%d,\"op\":%llu,"
            "\"kind\":\"%s\",\"input\":%lld}\n",
            static_cast<unsigned long long>(e.ts), e.lane,
            static_cast<unsigned long long>(e.op), op_kind_name(e.kind),
            static_cast<long long>(e.input));
      } else {
        std::snprintf(
            buf, sizeof(buf),
            "{\"ts\":%llu,\"type\":\"response\",\"lane\":%d,"
            "\"op\":%llu,\"kind\":\"%s\",\"input\":%lld,\"ok\":%s,"
            "\"result\":%llu}\n",
            static_cast<unsigned long long>(e.ts), e.lane,
            static_cast<unsigned long long>(e.op), op_kind_name(e.kind),
            static_cast<long long>(e.input), e.ok ? "true" : "false",
            static_cast<unsigned long long>(e.result));
      }
      out += buf;
    }
    return out;
  }

 private:
  struct alignas(64) Lane {
    std::vector<HistoryEvent> events;
    std::uint64_t next_op = 0;
  };

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<Lane> lanes_;
  std::atomic<std::uint64_t> clock_{1};
  std::uint64_t crash_ts_ = 0;  // 0 → no crash recorded
};

// ---------------------------------------------------------------------
// Dump replay: parses the exact JSONL shape to_jsonl() emits (plus
// the reproducer files under tests/corpus/) back into events, so a CI
// failure artifact or a checked-in golden history can be re-fed to the
// checker locally.  Unknown lines (metadata framing, comments) are
// skipped; this is a reader for our own dumps, not a JSON parser.
// ---------------------------------------------------------------------

namespace history_detail {

inline bool field_u64(const char* line, const char* key,
                      std::uint64_t& out) {
  const char* p = std::strstr(line, key);
  if (p == nullptr) return false;
  out = std::strtoull(p + std::strlen(key), nullptr, 10);
  return true;
}
inline bool field_i64(const char* line, const char* key,
                      std::int64_t& out) {
  const char* p = std::strstr(line, key);
  if (p == nullptr) return false;
  out = std::strtoll(p + std::strlen(key), nullptr, 10);
  return true;
}

}  // namespace history_detail

// One event per parseable line, in file order (dumps are
// timestamp-sorted already).  Returns false only on a line that names
// an event type but is missing its required fields.
inline bool parse_history_jsonl(const std::string& text,
                                std::vector<HistoryEvent>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const char* l = line.c_str();
    HistoryEvent e;
    if (std::strstr(l, "\"type\":\"crash\"") != nullptr) {
      e.type = EventType::crash;
      if (!history_detail::field_u64(l, "\"ts\":", e.ts)) return false;
      out.push_back(e);
      continue;
    }
    const bool inv = std::strstr(l, "\"type\":\"invoke\"") != nullptr;
    const bool rsp = std::strstr(l, "\"type\":\"response\"") != nullptr;
    if (!inv && !rsp) continue;  // metadata framing line
    e.type = inv ? EventType::invoke : EventType::response;
    std::int64_t lane = 0;
    if (!history_detail::field_u64(l, "\"ts\":", e.ts) ||
        !history_detail::field_i64(l, "\"lane\":", lane) ||
        !history_detail::field_u64(l, "\"op\":", e.op) ||
        !history_detail::field_i64(l, "\"input\":", e.input)) {
      return false;
    }
    e.lane = static_cast<int>(lane);
    const char* k = std::strstr(l, "\"kind\":\"");
    if (k == nullptr) return false;
    k += std::strlen("\"kind\":\"");
    const char* kend = std::strchr(k, '"');
    if (kend == nullptr) return false;
    e.kind = op_kind_from_name(std::string_view(k, kend - k));
    if (rsp) {
      e.ok = std::strstr(l, "\"ok\":true") != nullptr;
      if (!history_detail::field_u64(l, "\"result\":", e.result)) {
        return false;
      }
    }
    out.push_back(e);
  }
  return true;
}

// ---------------------------------------------------------------------
// Recording adapters: the history recorder wired through the
// type-erased Structure interfaces.  A worker talks to the same
// SetIface/QueueIface/... surface the registry hands out; every call
// brackets the inner operation with invoke/response events, and an
// operation that unwinds (CrashUnwind) leaves its invoke dangling —
// the pending-at-crash op.
//
// The crash::check() between the inner call and the response event
// closes a pure-load hole: once the simulated power has failed, any
// tracked store or persistence instruction unwinds, but an operation
// on a load-only path (a find, a failed search) can still return
// normally while reading volatile state the crash is about to erase.
// Its response was never delivered to a client of the powered-off
// machine, so the adapter converts it into the same CrashUnwind a
// mid-op crash produces and the invoke stays dangling (verdict: may).
// ---------------------------------------------------------------------

class RecordedSet final : public SetIface {
 public:
  RecordedSet(SetIface& inner, HistoryRecorder& rec, int lane)
      : inner_(inner), rec_(rec), lane_(lane) {}

  bool insert(std::int64_t k) override {
    const std::uint64_t op = rec_.invoke(lane_, ds::OpKind::insert, k);
    const bool ok = inner_.insert(k);
    pmem::crash::check();
    rec_.response(lane_, op, ok, ok ? 1 : 0);
    return ok;
  }
  bool erase(std::int64_t k) override {
    const std::uint64_t op = rec_.invoke(lane_, ds::OpKind::erase, k);
    const bool ok = inner_.erase(k);
    pmem::crash::check();
    rec_.response(lane_, op, ok, ok ? 1 : 0);
    return ok;
  }
  bool find(std::int64_t k) override {
    const std::uint64_t op = rec_.invoke(lane_, ds::OpKind::find, k);
    const bool ok = inner_.find(k);
    pmem::crash::check();
    rec_.response(lane_, op, ok, ok ? 1 : 0);
    return ok;
  }

 private:
  SetIface& inner_;
  HistoryRecorder& rec_;
  int lane_;
};

class RecordedQueue final : public QueueIface {
 public:
  RecordedQueue(QueueIface& inner, HistoryRecorder& rec, int lane)
      : inner_(inner), rec_(rec), lane_(lane) {}

  void enqueue(std::uint64_t v) override {
    const std::uint64_t op = rec_.invoke(
        lane_, ds::OpKind::enqueue, static_cast<std::int64_t>(v));
    inner_.enqueue(v);
    pmem::crash::check();
    rec_.response(lane_, op, true, v);
  }
  bool dequeue(std::uint64_t& out) override {
    const std::uint64_t op = rec_.invoke(lane_, ds::OpKind::dequeue, 0);
    const bool ok = inner_.dequeue(out);
    pmem::crash::check();
    rec_.response(lane_, op, ok, out);
    return ok;
  }

 private:
  QueueIface& inner_;
  HistoryRecorder& rec_;
  int lane_;
};

class RecordedStack final : public StackIface {
 public:
  RecordedStack(StackIface& inner, HistoryRecorder& rec, int lane)
      : inner_(inner), rec_(rec), lane_(lane) {}

  void push(std::uint64_t v) override {
    const std::uint64_t op = rec_.invoke(
        lane_, ds::OpKind::push, static_cast<std::int64_t>(v));
    inner_.push(v);
    pmem::crash::check();
    rec_.response(lane_, op, true, v);
  }
  bool pop(std::uint64_t& out) override {
    const std::uint64_t op = rec_.invoke(lane_, ds::OpKind::pop, 0);
    const bool ok = inner_.pop(out);
    pmem::crash::check();
    rec_.response(lane_, op, ok, out);
    return ok;
  }

 private:
  StackIface& inner_;
  HistoryRecorder& rec_;
  int lane_;
};

class RecordedExchanger final : public ExchangerIface {
 public:
  RecordedExchanger(ExchangerIface& inner, HistoryRecorder& rec,
                    int lane)
      : inner_(inner), rec_(rec), lane_(lane) {}

  bool exchange(std::uint64_t v, int attempts,
                std::uint64_t& out) override {
    const std::uint64_t op = rec_.invoke(
        lane_, ds::OpKind::exchange, static_cast<std::int64_t>(v));
    const bool ok = inner_.exchange(v, attempts, out);
    pmem::crash::check();
    rec_.response(lane_, op, ok, out);
    return ok;
  }

 private:
  ExchangerIface& inner_;
  HistoryRecorder& rec_;
  int lane_;
};

}  // namespace repro::harness
