// Structured result output: every grid point the experiment driver runs
// is emitted as a ResultRow through pluggable ResultSinks — the aligned
// stdout table the figures have always printed, plus machine-readable
// CSV and JSON-lines writers so a run can be diffed against the paper
// (or a previous run) mechanically.  REPRO_OUT=<path> adds a file sink:
// *.csv selects CSV, anything else JSON lines.
//
// Flush discipline: the file sinks flush after EVERY row, so a run
// that crashes — or is deliberately SIGKILLed by the kill harness —
// loses at most the row being formatted, never completed
// measurements.  The kill harness's own op journal
// (harness/killfuzz.hpp) takes the same rule one step further: each
// line is a single O_APPEND write(2), durable in the page cache the
// instant it returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "repro/harness/report.hpp"
#include "repro/harness/runner.hpp"

namespace repro::harness {

// One grid point's identity plus its measurements — everything a sink
// needs to emit a self-contained row (RunResult carries threads and the
// monotonic point_index).
struct ResultRow {
  std::string figure;
  std::string algo;
  std::string scenario;  // human-readable point description
  std::string mode;      // pmem execution mode name
  std::string dist;      // key distribution name ("" when n/a)
  std::int64_t key_range = 0;  // 0 when n/a
  std::string mix;             // "" when n/a
  RunResult run;
  double recovery_us = -1;  // crash scenario only; < 0 → n/a
  // Effective PRNG seed (REPRO_SEED satellite): every row carries it
  // so any emitted result is replayable bit-for-bit.
  std::uint64_t seed = 0;
  int crash_points = -1;      // crash-fuzz only; < 0 → n/a
  int crash_violations = -1;  // crash-fuzz only; < 0 → n/a
  // Crash-scenario family name ("single-crash", "repeated-crash",
  // "thread-death", "stalled-thread", "timed-stop"); "" for plain
  // measurement points.
  std::string crash_scenario;
  // Reclamation scheme behind the structure ("ebr", "hp", "pop",
  // "leak"); "" when the structure predates the reclaimer matrix or
  // carries no reclaimer trait.
  std::string reclaimer;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const std::string& /*figure*/,
                     const std::string& /*what*/) {}
  virtual void row(const ResultRow& r) = 0;
};

// The paper-style stdout table (report.hpp), unchanged in appearance.
class TableSink final : public ResultSink {
 public:
  void begin(const std::string& figure, const std::string& what) override {
    print_figure_header(figure, what);
    print_columns();
  }

  void row(const ResultRow& r) override {
    std::string scenario = r.scenario;
    if (r.recovery_us >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " recover=%.1fus", r.recovery_us);
      scenario += buf;
    }
    if (r.crash_points >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " viol=%d/%d", r.crash_violations,
                    r.crash_points);
      scenario += buf;
    }
    {
      char buf[40];
      std::snprintf(buf, sizeof(buf), " seed=%llu",
                    static_cast<unsigned long long>(r.seed));
      scenario += buf;
    }
    print_row(r.algo, scenario, r.run);
  }
};

namespace detail {
inline std::atomic<int>& sink_error_cell() {
  static std::atomic<int> c{0};
  return c;
}
}  // namespace detail

// File-sink failures (e.g. an unopenable REPRO_OUT path) observed so
// far; experiment_main turns a non-zero count into a failing exit code
// so a run whose machine-readable output was silently discarded cannot
// report green.
inline int sink_errors() {
  return detail::sink_error_cell().load(std::memory_order_relaxed);
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Shortest round-trip-ish formatting shared by the CSV and JSON sinks
// so golden files stay stable.
inline std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace detail

// Owns its file stream when constructed from a path; borrows the
// ostream otherwise (tests write into a stringstream).
class StreamSinkBase : public ResultSink {
 public:
  explicit StreamSinkBase(std::ostream& out) : out_(&out) {}
  explicit StreamSinkBase(const std::string& path)
      : file_(std::make_unique<std::ofstream>(path,
                                              std::ios::out |
                                                  std::ios::trunc)),
        out_(file_.get()) {
    if (!*file_) {
      std::fprintf(stderr, "repro: cannot open REPRO_OUT file %s\n",
                   path.c_str());
      detail::sink_error_cell().fetch_add(1, std::memory_order_relaxed);
    }
  }

 protected:
  std::ostream& out() { return *out_; }

 private:
  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_;
};

class CsvSink final : public StreamSinkBase {
 public:
  using StreamSinkBase::StreamSinkBase;

  void row(const ResultRow& r) override {
    using detail::fmt_double;
    if (!header_written_) {
      out() << "point_index,figure,algo,mode,dist,key_range,mix,threads,"
               "seconds,total_ops,ops_per_sec,pwb_per_op,pbarrier_per_op,"
               "psync_per_op,coalesced_pwb_per_op,allocs_per_op,"
               "retired_per_op,reuse_ratio,recovery_us,seed,"
               "crash_points,crash_violations,crash_scenario,"
               "reclaimer\n";
      header_written_ = true;
    }
    out() << r.run.point_index << ',' << r.figure << ',' << r.algo << ','
          << r.mode << ',' << r.dist << ',' << r.key_range << ',' << r.mix
          << ',' << r.run.threads << ',' << fmt_double(r.run.seconds)
          << ',' << r.run.total_ops << ','
          << fmt_double(r.run.ops_per_sec) << ','
          << fmt_double(r.run.flushes_per_op) << ','
          << fmt_double(r.run.barriers_per_op) << ','
          << fmt_double(r.run.psyncs_per_op) << ','
          << fmt_double(r.run.coalesced_pwb_per_op) << ','
          << fmt_double(r.run.allocs_per_op) << ','
          << fmt_double(r.run.retired_per_op) << ','
          << fmt_double(r.run.reuse_ratio) << ','
          << (r.recovery_us >= 0 ? fmt_double(r.recovery_us) : "") << ','
          << r.seed << ',';
    if (r.crash_points >= 0) out() << r.crash_points;
    out() << ',';
    if (r.crash_violations >= 0) out() << r.crash_violations;
    out() << ',' << r.crash_scenario << ',' << r.reclaimer << '\n';
    out().flush();
  }

 private:
  bool header_written_ = false;
};

// One JSON object per line (JSON lines / ndjson): the format the
// BENCH_*.json perf trajectories consume.
class JsonlSink final : public StreamSinkBase {
 public:
  using StreamSinkBase::StreamSinkBase;

  void row(const ResultRow& r) override {
    using detail::fmt_double;
    using detail::json_escape;
    out() << "{\"point_index\":" << r.run.point_index << ",\"figure\":\""
          << json_escape(r.figure) << "\",\"algo\":\""
          << json_escape(r.algo) << "\",\"mode\":\""
          << json_escape(r.mode) << "\",\"dist\":\""
          << json_escape(r.dist) << "\",\"key_range\":" << r.key_range
          << ",\"mix\":\"" << json_escape(r.mix)
          << "\",\"threads\":" << r.run.threads
          << ",\"seconds\":" << fmt_double(r.run.seconds)
          << ",\"total_ops\":" << r.run.total_ops
          << ",\"ops_per_sec\":" << fmt_double(r.run.ops_per_sec)
          << ",\"pwb_per_op\":" << fmt_double(r.run.flushes_per_op)
          << ",\"pbarrier_per_op\":" << fmt_double(r.run.barriers_per_op)
          << ",\"psync_per_op\":" << fmt_double(r.run.psyncs_per_op)
          << ",\"coalesced_pwb_per_op\":"
          << fmt_double(r.run.coalesced_pwb_per_op)
          << ",\"allocs_per_op\":" << fmt_double(r.run.allocs_per_op)
          << ",\"retired_per_op\":" << fmt_double(r.run.retired_per_op)
          << ",\"reuse_ratio\":" << fmt_double(r.run.reuse_ratio)
          << ",\"seed\":" << r.seed;
    if (r.recovery_us >= 0) {
      out() << ",\"recovery_us\":" << fmt_double(r.recovery_us);
    }
    if (r.crash_points >= 0) {
      out() << ",\"crash_points\":" << r.crash_points
            << ",\"crash_violations\":" << r.crash_violations;
    }
    if (!r.crash_scenario.empty()) {
      out() << ",\"crash_scenario\":\"" << json_escape(r.crash_scenario)
            << "\"";
    }
    if (!r.reclaimer.empty()) {
      out() << ",\"reclaimer\":\"" << json_escape(r.reclaimer)
            << "\"";
    }
    out() << "}\n";
    out().flush();
  }
};

// Fan-out over the configured sinks.
class SinkSet {
 public:
  void add(std::unique_ptr<ResultSink> s) {
    sinks_.push_back(std::move(s));
  }
  void begin(const std::string& figure, const std::string& what) {
    for (auto& s : sinks_) s->begin(figure, what);
  }
  void row(const ResultRow& r) {
    for (auto& s : sinks_) s->row(r);
  }
  std::size_t size() const { return sinks_.size(); }

 private:
  std::vector<std::unique_ptr<ResultSink>> sinks_;
};

// stdout table always; REPRO_OUT adds a CSV (*.csv) or JSON-lines sink.
inline SinkSet default_sinks() {
  SinkSet sinks;
  sinks.add(std::make_unique<TableSink>());
  if (const char* path = std::getenv("REPRO_OUT");
      path != nullptr && path[0] != '\0') {
    const std::string p(path);
    if (p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0) {
      sinks.add(std::make_unique<CsvSink>(p));
    } else {
      sinks.add(std::make_unique<JsonlSink>(p));
    }
  }
  return sinks;
}

}  // namespace repro::harness
