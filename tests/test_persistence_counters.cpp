// Persistence-instruction invariants, measured in count_only mode —
// these are the deterministic properties Figures 1b/1c, 5 and 6 rest
// on: the tuned ISB placement issues strictly fewer pwbs and pbarriers
// than the general one, the read-only optimization makes find() free,
// capsule costs dominate, and counts are independent of the execution
// mode.
#include <gtest/gtest.h>

#include <cstdint>

#include "repro/baselines/capsules_list.hpp"
#include "repro/baselines/log_queue.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/ds/isb_queue.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::baselines::CapsulesList;
using repro::baselines::LogQueue;
using repro::ds::IsbList;
using repro::ds::IsbQueue;
using repro::ds::PersistProfile;
using repro::pmem::Counters;

template <typename F>
Counters count(F&& f) {
  const Counters before = repro::pmem::counters();
  f();
  return repro::pmem::counters() - before;
}

template <typename Set>
void churn(Set& s) {
  for (std::int64_t k = 1; k <= 64; ++k) s.insert(k);
  for (std::int64_t k = 1; k <= 64; ++k) s.find(k);
  for (std::int64_t k = 1; k <= 64; ++k) s.erase(k);
}

TEST(PersistenceCounters, IsbOptimizedStrictlyCheaper) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbList general(IsbList::Config{PersistProfile::general, true});
  IsbList optimized(IsbList::Config{PersistProfile::optimized, true});
  const Counters cg = count([&] { churn(general); });
  const Counters co = count([&] { churn(optimized); });
  EXPECT_LT(co.flushes, cg.flushes);
  EXPECT_LT(co.fences, cg.fences);
  EXPECT_EQ(co.psyncs, cg.psyncs);  // one durable point per update
  EXPECT_GT(co.psyncs, 0u);
}

TEST(PersistenceCounters, ReadOnlyOptimizationMakesFindsFree) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  for (const auto profile :
       {PersistProfile::general, PersistProfile::optimized}) {
    IsbList with_opt(IsbList::Config{profile, true});
    IsbList without_opt(IsbList::Config{profile, false});
    for (std::int64_t k = 1; k <= 32; ++k) {
      with_opt.insert(k);
      without_opt.insert(k);
    }
    const Counters free_finds = count([&] {
      for (std::int64_t k = 1; k <= 32; ++k) with_opt.find(k);
    });
    EXPECT_EQ(free_finds.flushes, 0u);
    EXPECT_EQ(free_finds.fences, 0u);
    EXPECT_EQ(free_finds.psyncs, 0u);
    const Counters paid_finds = count([&] {
      for (std::int64_t k = 1; k <= 32; ++k) without_opt.find(k);
    });
    EXPECT_GT(paid_finds.flushes, 0u);
    EXPECT_GT(paid_finds.psyncs, 0u);
  }
}

TEST(PersistenceCounters, CapsulesGeneralPaysPerRead) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  CapsulesList general(CapsulesList::Variant::general);
  CapsulesList optimized(CapsulesList::Variant::optimized);
  const Counters cg = count([&] { churn(general); });
  const Counters co = count([&] { churn(optimized); });
  // The general construction checkpoints a capsule at every shared
  // read, so its traversal cost dwarfs the optimized variant's.
  EXPECT_GT(cg.flushes, 2 * co.flushes);
  EXPECT_GT(cg.fences, 2 * co.fences);
}

TEST(PersistenceCounters, IsbQueueBeatsLogQueuePerOp) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbQueue isb;
  LogQueue log;
  const Counters ci = count([&] {
    for (std::uint64_t v = 0; v < 128; ++v) isb.enqueue(v);
    for (std::uint64_t v = 0; v < 128; ++v) isb.dequeue();
  });
  const Counters cl = count([&] {
    for (std::uint64_t v = 0; v < 128; ++v) log.enqueue(v);
    for (std::uint64_t v = 0; v < 128; ++v) log.dequeue();
  });
  EXPECT_LT(ci.flushes, cl.flushes);
  // Fences are tied since the queue's persist-link-before-tail-swing
  // rule (IsbPolicy::expose) added one ordering fence per enqueue —
  // the price of staying crash-consistent when concurrent enqueuers
  // build on each other's links.
  EXPECT_LE(ci.fences, cl.fences);
}

TEST(PersistenceCounters, CountsIndependentOfMode) {
  // The same operation sequence must tally identically whether the
  // instructions execute (shared_cache / private_cache) or not
  // (count_only) — this is what makes Figures 1b/1c deterministic.
  Counters per_mode[3];
  const repro::pmem::Mode modes[3] = {repro::pmem::Mode::shared_cache,
                                      repro::pmem::Mode::private_cache,
                                      repro::pmem::Mode::count_only};
  for (int i = 0; i < 3; ++i) {
    repro::pmem::ModeGuard guard(modes[i]);
    IsbList list;
    per_mode[i] = count([&] { churn(list); });
  }
  EXPECT_EQ(per_mode[0].flushes, per_mode[1].flushes);
  EXPECT_EQ(per_mode[1].flushes, per_mode[2].flushes);
  EXPECT_EQ(per_mode[0].fences, per_mode[1].fences);
  EXPECT_EQ(per_mode[1].fences, per_mode[2].fences);
  EXPECT_EQ(per_mode[0].psyncs, per_mode[2].psyncs);
}

TEST(PersistenceCounters, PersistWordHelpers) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::pmem::persist<std::uint64_t> w{0};
  const Counters c = count([&] {
    w.store_flush(1);
    w.store_persist(2);
  });
  EXPECT_EQ(w.load(), 2u);
  EXPECT_EQ(c.flushes, 2u);
  EXPECT_EQ(c.fences, 1u);
}

TEST(PersistenceCounters, PersistCasAndCasWeak) {
  repro::pmem::persist<std::uint64_t> w{5};
  std::uint64_t expected = 4;
  EXPECT_FALSE(w.cas(expected, 9));
  EXPECT_EQ(expected, 5u);  // failure loads the observed value
  EXPECT_TRUE(w.cas(expected, 9));
  EXPECT_EQ(w.load(), 9u);

  // cas_weak may fail spuriously but must succeed in a retry loop and
  // never lose the expected-value contract.
  expected = 9;
  while (!w.cas_weak(expected, 12)) {
    EXPECT_EQ(expected, 9u);
  }
  EXPECT_EQ(w.load(), 12u);

  // Explicit orders are accepted (the satellite API surface).
  expected = 12;
  EXPECT_TRUE(w.cas(expected, 13, std::memory_order_seq_cst,
                    std::memory_order_relaxed));
  EXPECT_EQ(w.load(), 13u);
}

}  // namespace
