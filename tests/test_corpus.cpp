// Reproducer-corpus regression tests: every past failing (or
// bug-class-pinning) reproducer under tests/corpus/ replays bit-for-bit
// on every run.
//
//   regressions.jsonl        — {structure, seed, crash_point} triples
//                              for the single-threaded fuzzer, one per
//                              bug class PR 4 found (commit-ordering,
//                              pre-publish) plus the read-only-opt
//                              interaction; each must replay with zero
//                              violations and a deterministic report.
//                              An entry may extend the triple with a
//                              "crash_chain":[...] array (the
//                              repeated-crash reproducer format): the
//                              points replay verbatim as chained
//                              crashes inside recovery via
//                              CrashPlan::replay_chain.  A
//                              "scenario":"<name>" field retargets the
//                              replay at that scenario family (the
//                              crash-during-reclaim entry uses it).
//   history_tail_tear.jsonl  — the real failing history the concurrent
//                              fuzzer dumped for the Isb-Queue
//                              tail-swing tear (an in-flight enqueue's
//                              unfenced link orphaning every later
//                              thread's durably-committed effect);
//                              the checker must still reject it, with
//                              a deterministic verdict.
//   history_queue_nonfifo.jsonl — golden non-linearizable queue
//                              history; the checker must reject it.
//
// REPRO_CORPUS_DIR is injected by tests/CMakeLists.txt and points at
// the source-tree corpus, so the files are versioned with the code.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "repro/harness/crashfuzz.hpp"
#include "repro/harness/history.hpp"
#include "repro/harness/linearize.hpp"
#include "repro/harness/registry.hpp"

namespace {

using namespace repro;
using harness::AlgoEntry;
using harness::CrashPlan;
using harness::FuzzReport;
using harness::HistoryEvent;

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

std::string corpus_path(const char* name) {
  return std::string(REPRO_CORPUS_DIR) + "/" + name;
}

// Minimal field scraping for the corpus's own metadata lines, reusing
// the history parser's helpers.
bool meta_u64(const std::string& line, const char* key,
              std::uint64_t& out) {
  return harness::history_detail::field_u64(line.c_str(), key, out);
}

// Optional repeated-crash extension: "crash_chain":[p1,p2,...].
// Returns false (out untouched) for old-format triples.
bool meta_chain(const std::string& line,
                std::vector<std::uint64_t>& out) {
  static const std::string kKey = "\"crash_chain\":[";
  const std::size_t c0 = line.find(kKey);
  if (c0 == std::string::npos) return false;
  std::size_t p = c0 + kKey.size();
  while (p < line.size() && line[p] != ']') {
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(line.c_str() + p, &end, 10);
    if (end == line.c_str() + p) break;
    out.push_back(v);
    p = static_cast<std::size_t>(end - line.c_str());
    if (p < line.size() && line[p] == ',') ++p;
  }
  return !out.empty();
}

TEST(Corpus, RegressionTriplesReplayCleanAndDeterministic) {
  const std::string text = read_file(corpus_path("regressions.jsonl"));
  ASSERT_FALSE(text.empty());
  int entries = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t s0 = line.find("\"structure\":\"");
    if (s0 == std::string::npos) continue;
    const std::size_t s1 = s0 + std::string("\"structure\":\"").size();
    const std::string structure = line.substr(s1, line.find('"', s1) - s1);
    std::uint64_t seed = 0, crash_point = 0;
    ASSERT_TRUE(meta_u64(line, "\"seed\":", seed)) << line;
    ASSERT_TRUE(meta_u64(line, "\"crash_point\":", crash_point)) << line;

    const AlgoEntry* algo =
        harness::Registry::instance().find(structure);
    ASSERT_NE(algo, nullptr) << structure;
    CrashPlan plan;
    plan.seed = 1;  // irrelevant for an explicit {seed, crash_point}
    static const std::string kScenarioKey = "\"scenario\":\"";
    if (const std::size_t sc0 = line.find(kScenarioKey);
        sc0 != std::string::npos) {
      const std::size_t sc1 = sc0 + kScenarioKey.size();
      const std::string sc = line.substr(sc1, line.find('"', sc1) - sc1);
      ASSERT_TRUE(harness::scenario_from_name(sc.c_str(), plan.scenario))
          << line;
    }
    std::vector<std::uint64_t> chain;
    if (meta_chain(line, chain)) {
      plan.scenario = harness::ScenarioKind::repeated_crash;
      plan.replay_chain = chain;
      plan.chain_depth = static_cast<int>(chain.size());
    }
    FuzzReport a, b;
    harness::fuzz_one(*algo, plan, seed, crash_point, 0, a);
    harness::fuzz_one(*algo, plan, seed, crash_point, 0, b);
    EXPECT_EQ(a.violations, 0)
        << structure << " seed=" << seed << " cp=" << crash_point
        << ": " << (a.failures.empty() ? "?" : a.failures.front().what);
    EXPECT_EQ(a.crashes, 1) << structure << ": crash point must fire";
    if (!chain.empty()) {
      // The explicit chain replays verbatim: every listed point fires
      // inside a recovery pass.
      EXPECT_EQ(a.chain_crashes, static_cast<int>(chain.size()))
          << structure;
      EXPECT_EQ(a.chain_crashes, b.chain_crashes) << structure;
    }
    // Bit-for-bit: the same triple produces the identical report.
    EXPECT_EQ(a.crashes, b.crashes) << structure;
    EXPECT_EQ(a.violations, b.violations) << structure;
    EXPECT_EQ(a.total_ops, b.total_ops) << structure;
    ++entries;
  }
  EXPECT_GE(entries, 6) << "corpus lost entries";
}

TEST(Corpus, TailTearHistoryStillRejected) {
  const std::string text =
      read_file(corpus_path("history_tail_tear.jsonl"));
  ASSERT_FALSE(text.empty());
  std::vector<HistoryEvent> ev;
  ASSERT_TRUE(harness::parse_history_jsonl(text, ev));
  ASSERT_GT(ev.size(), 40u);  // 48 events + crash marker

  auto ops = harness::lin::ops_from_events(ev);
  ASSERT_EQ(ops.size(), 25u);
  // The metadata line records what the fuzz driver derived at crash
  // time: lane 2's pending enqueue(304) had a durably-committed
  // descriptor (must, ok, result=304); lane 0's enqueue(109) stayed
  // may.  The walked durable image was [107] — the chain torn at the
  // un-fenced link.
  for (auto& op : ops) {
    if (op.lane == 2 && op.response_ts == harness::lin::kNever) {
      op.pending = harness::lin::Pending::must;
      op.ok = true;
      op.result = 304;
    }
  }
  harness::lin::Spec sp;
  sp.kind = harness::lin::Semantics::queue;
  sp.initial_values = {1, 2, 3, 4, 5, 6};
  sp.check_durable = true;
  sp.durable_values = {107};
  const auto r1 = harness::lin::check(ops, sp);
  const auto r2 = harness::lin::check(ops, sp);
  EXPECT_EQ(r1.verdict, harness::lin::Verdict::violation)
      << "the tail-swing tear must stay a checker violation";
  EXPECT_EQ(r2.verdict, r1.verdict);
  EXPECT_EQ(r2.states, r1.states);  // deterministic verdict
}

TEST(Corpus, NonFifoGoldenHistoryRejected) {
  const std::string text =
      read_file(corpus_path("history_queue_nonfifo.jsonl"));
  ASSERT_FALSE(text.empty());
  std::vector<HistoryEvent> ev;
  ASSERT_TRUE(harness::parse_history_jsonl(text, ev));
  const auto ops = harness::lin::ops_from_events(ev);
  ASSERT_EQ(ops.size(), 4u);
  harness::lin::Spec sp;
  sp.kind = harness::lin::Semantics::queue;
  const auto r = harness::lin::check(ops, sp);
  EXPECT_EQ(r.verdict, harness::lin::Verdict::violation);
  // Restoring FIFO responses accepts — the file itself is the broken
  // variant.
  auto fixed = ops;
  fixed[2].result = 101;
  fixed[3].result = 102;
  EXPECT_EQ(harness::lin::check(fixed, sp).verdict,
            harness::lin::Verdict::linearizable);
}

}  // namespace
