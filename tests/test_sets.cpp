// Set semantics across every list-shaped structure in the library:
// single-thread correctness against a reference std::set, and
// multi-thread smoke under 8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "repro/baselines/capsules_list.hpp"
#include "repro/baselines/harris_list.hpp"
#include "repro/ds/dt_list.hpp"
#include "repro/ds/dt_skiplist.hpp"
#include "repro/ds/isb_bst.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::baselines::CapsulesList;
using repro::baselines::HarrisList;
using repro::ds::DtList;
using repro::ds::DtSkipList;
using repro::ds::IsbBst;
using repro::ds::IsbList;
using repro::ds::PersistProfile;

template <typename Set>
void check_basic_semantics(Set& s) {
  EXPECT_FALSE(s.find(5));
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.find(5));
  EXPECT_FALSE(s.find(6));
  EXPECT_TRUE(s.insert(6));
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_FALSE(s.find(5));
  EXPECT_TRUE(s.find(6));
  // Re-insert after erase (exercises tombstone revival in BST/skiplist).
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.find(5));
}

template <typename Set>
void check_against_reference(Set& s, unsigned seed) {
  std::mt19937 rng(seed);
  std::set<std::int64_t> ref;
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng() % 64);
    switch (rng() % 3) {
      case 0:
        EXPECT_EQ(s.insert(k), ref.insert(k).second) << "key " << k;
        break;
      case 1:
        EXPECT_EQ(s.erase(k), ref.erase(k) > 0) << "key " << k;
        break;
      default:
        EXPECT_EQ(s.find(k), ref.count(k) > 0) << "key " << k;
        break;
    }
  }
}

// Threads own disjoint key ranges: afterwards everything inserted and
// not erased must be present, everything erased absent.
template <typename Set>
void check_disjoint_threads(Set& s) {
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 512;
  std::vector<std::thread> ws;
  for (int t = 0; t < kThreads; ++t) {
    ws.emplace_back([&s, t] {
      const std::int64_t base = t * kPerThread * 2;
      for (std::int64_t k = 0; k < kPerThread; ++k) {
        ASSERT_TRUE(s.insert(base + k));
      }
      for (std::int64_t k = 0; k < kPerThread; k += 2) {
        ASSERT_TRUE(s.erase(base + k));
      }
    });
  }
  for (auto& w : ws) w.join();
  for (int t = 0; t < kThreads; ++t) {
    const std::int64_t base = t * kPerThread * 2;
    for (std::int64_t k = 0; k < kPerThread; ++k) {
      EXPECT_EQ(s.find(base + k), k % 2 == 1) << "key " << base + k;
    }
  }
}

// Contended random mix; afterwards single-thread invariants must hold
// for every key (present => duplicate insert fails, erase succeeds).
template <typename Set>
void check_contended_chaos(Set& s) {
  constexpr int kThreads = 8;
  constexpr std::int64_t kRange = 128;
  std::vector<std::thread> ws;
  for (int t = 0; t < kThreads; ++t) {
    ws.emplace_back([&s, t] {
      std::mt19937 rng(1234u + static_cast<unsigned>(t));
      for (int i = 0; i < 20000; ++i) {
        const std::int64_t k = 1 + static_cast<std::int64_t>(rng() % kRange);
        switch (rng() % 3) {
          case 0:
            s.insert(k);
            break;
          case 1:
            s.erase(k);
            break;
          default:
            s.find(k);
            break;
        }
      }
    });
  }
  for (auto& w : ws) w.join();
  for (std::int64_t k = 1; k <= kRange; ++k) {
    if (s.find(k)) {
      EXPECT_FALSE(s.insert(k)) << "key " << k;
      EXPECT_TRUE(s.erase(k)) << "key " << k;
    } else {
      EXPECT_FALSE(s.erase(k)) << "key " << k;
      EXPECT_TRUE(s.insert(k)) << "key " << k;
    }
  }
}

template <typename Set, typename... Args>
void run_all_set_checks(Args&&... args) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  {
    Set s(std::forward<Args>(args)...);
    check_basic_semantics(s);
  }
  {
    Set s(std::forward<Args>(args)...);
    check_against_reference(s, 42);
  }
  {
    Set s(std::forward<Args>(args)...);
    check_disjoint_threads(s);
  }
  {
    Set s(std::forward<Args>(args)...);
    check_contended_chaos(s);
  }
}

TEST(Sets, HarrisList) { run_all_set_checks<HarrisList>(); }

TEST(Sets, IsbListGeneral) {
  run_all_set_checks<IsbList>(
      IsbList::Config{PersistProfile::general, true});
}

TEST(Sets, IsbListOptimized) {
  run_all_set_checks<IsbList>(
      IsbList::Config{PersistProfile::optimized, true});
}

TEST(Sets, IsbListNoReadOnlyOpt) {
  run_all_set_checks<IsbList>(
      IsbList::Config{PersistProfile::general, false});
}

TEST(Sets, DtListGeneral) {
  run_all_set_checks<DtList>(PersistProfile::general);
}

TEST(Sets, DtListOptimized) {
  run_all_set_checks<DtList>(PersistProfile::optimized);
}

TEST(Sets, CapsulesListGeneral) {
  run_all_set_checks<CapsulesList>(CapsulesList::Variant::general);
}

TEST(Sets, CapsulesListOptimized) {
  run_all_set_checks<CapsulesList>(CapsulesList::Variant::optimized);
}

TEST(Sets, IsbBst) { run_all_set_checks<IsbBst>(PersistProfile::general); }

TEST(Sets, DtSkipList) { run_all_set_checks<DtSkipList>(); }

}  // namespace
