// Harness behaviour: RNG bounds, mix distribution, prefill density, and
// the measurement loop's accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>

#include "repro/harness/runner.hpp"
#include "repro/harness/workload.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::harness::kReadIntensive;
using repro::harness::kUpdateIntensive;
using repro::harness::Mix;
using repro::harness::OpType;
using repro::harness::Rng;
using repro::harness::Workload;

TEST(Workload, KeysStayInRange) {
  Rng rng(7);
  const Workload w{500, kReadIntensive};
  for (int i = 0; i < 10000; ++i) {
    const auto k = w.pick_key(rng);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 500);
  }
}

TEST(Workload, MixMatchesConfiguredPercentages) {
  for (const Mix& mix : {kReadIntensive, kUpdateIntensive}) {
    Rng rng(11);
    const Workload w{100, mix};
    int counts[3] = {0, 0, 0};
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
      ++counts[static_cast<int>(w.pick_op(rng))];
    }
    EXPECT_NEAR(counts[static_cast<int>(OpType::insert)],
                kDraws * mix.insert_pct / 100, kDraws / 50);
    EXPECT_NEAR(counts[static_cast<int>(OpType::erase)],
                kDraws * mix.erase_pct / 100, kDraws / 50);
    EXPECT_NEAR(counts[static_cast<int>(OpType::find)],
                kDraws * mix.find_pct / 100, kDraws / 50);
  }
}

struct RecordingSet {
  std::set<std::int64_t> keys;
  bool insert(std::int64_t k) { return keys.insert(k).second; }
};

TEST(Harness, PrefillInsertsRoughlyFortyPercent) {
  RecordingSet s;
  repro::harness::prefill(s, 10000);
  EXPECT_GT(s.keys.size(), 3500u);
  EXPECT_LT(s.keys.size(), 4500u);
  for (const auto k : s.keys) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 10000);
  }
}

TEST(Harness, PrefillPercentIsParameterized) {
  // Explicit percent argument wins.
  RecordingSet dense;
  repro::harness::prefill(dense, 10000, 80);
  EXPECT_NEAR(dense.keys.size(), 8000u, 500u);

  // REPRO_PREFILL_PCT drives the default.
  setenv("REPRO_PREFILL_PCT", "10", 1);
  EXPECT_EQ(repro::harness::prefill_pct(), 10);
  RecordingSet sparse;
  repro::harness::prefill(sparse, 10000);
  unsetenv("REPRO_PREFILL_PCT");
  EXPECT_NEAR(sparse.keys.size(), 1000u, 400u);
  EXPECT_EQ(repro::harness::prefill_pct(), 40);

  // 0 is a valid empty-start density, not "unset".
  setenv("REPRO_PREFILL_PCT", "0", 1);
  EXPECT_EQ(repro::harness::prefill_pct(), 0);
  RecordingSet empty_set;
  repro::harness::prefill(empty_set, 1000);
  unsetenv("REPRO_PREFILL_PCT");
  EXPECT_TRUE(empty_set.keys.empty());
}

TEST(Harness, RunThreadsAccountsOpsAndCounters) {
  setenv("REPRO_BENCH_MS", "30", 1);
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  const auto r = repro::harness::run_threads(4, [](int, Rng&) {
    // One pwb+pfence+psync per "operation".
    int x = 0;
    repro::pmem::flush(&x);
    repro::pmem::fence();
    repro::pmem::psync();
  });
  unsetenv("REPRO_BENCH_MS");
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_EQ(r.threads, 4);  // RunResult rows are self-contained
  EXPECT_GT(r.ops_per_sec, 0.0);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_NEAR(r.flushes_per_op, 1.0, 0.01);
  EXPECT_NEAR(r.barriers_per_op, 1.0, 0.01);
  EXPECT_NEAR(r.psyncs_per_op, 1.0, 0.01);
}

TEST(Harness, EnvKnobsAreRespected) {
  setenv("REPRO_BENCH_MS", "17", 1);
  EXPECT_EQ(repro::harness::bench_ms(), 17);
  unsetenv("REPRO_BENCH_MS");
  EXPECT_EQ(repro::harness::bench_ms(), 100);

  setenv("REPRO_MAX_THREADS", "3", 1);
  EXPECT_EQ(repro::harness::max_threads(), 3);
  unsetenv("REPRO_MAX_THREADS");
  EXPECT_GE(repro::harness::max_threads(), 1);
}

}  // namespace
