// Tests for the fork-kill-recover harness (harness/killfuzz.hpp).
//
// These fork real children, SIGKILL them, and verify from fresh
// processes — the same machinery CI's kill-recovery job runs at scale.
// Budgets here are small; the point is the harness's own contracts:
// deterministic {seed, kill_point} replay, idempotent reopen-twice
// recovery, and zero violations across a randomized batch per family.
//
// Under -DREPRO_MUTATE_DROP_MSYNC=ON the commit's mmap persistence
// mapping is elided (emulating the store reorder the missing fence
// permits) and the ONLY test compiled is the detection sweep: the
// harness must catch the mutant in well under 200 deterministic kill
// points, or the whole kill apparatus is vacuous.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "repro/harness/killfuzz.hpp"

namespace {

namespace kill = repro::harness::kill;

std::string test_heap_path(const char* tag) {
  return "/tmp/repro_kill_test." + std::to_string(::getpid()) + "." +
         tag + ".pmem";
}

std::string slurp_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// The harness skips (never fails) where the fixed-base mapping is
// unavailable; probe once with a kill-free trial.
bool harness_usable(const std::string& path) {
  kill::KillPlan plan;
  plan.heap_path = path;
  plan.ops_budget = 4;
  const kill::TrialResult r = kill::kill_one(plan);
  kill::cleanup_heap_files(plan);
  return r.infra_ok;
}

#define SKIP_IF_NO_HARNESS(path)                                       \
  if (!harness_usable(path)) {                                         \
    GTEST_SKIP() << "fixed-base mmap unavailable in this environment"; \
  }

#ifndef REPRO_MUTATE_DROP_MSYNC

TEST(KillRecovery, CompletedRunVerifiesCleanAndReopenIsIdempotent) {
  const std::string path = test_heap_path("clean");
  SKIP_IF_NO_HARNESS(path);
  kill::KillPlan plan;
  plan.heap_path = path;
  plan.family = kill::Family::isb_list;
  plan.seed = 0xC1EA7ull;
  plan.ops_budget = 200;

  const kill::TrialResult r = kill::kill_one(plan);
  ASSERT_TRUE(r.infra_ok);
  EXPECT_FALSE(r.killed) << "no kill was requested";
  EXPECT_FALSE(r.vacuous);
  EXPECT_EQ(r.violations, 0) << r.what;

  // kill_one already verified twice; a third and fourth fresh-process
  // reopen must keep agreeing — recovery reads, it never rewrites.
  EXPECT_EQ(kill::fork_verify(plan), 0);
  EXPECT_EQ(kill::fork_verify(plan), 0);
  kill::cleanup_heap_files(plan);
}

TEST(KillRecovery, DeterministicSeedAndKillPointReplayIdentically) {
  const std::string path = test_heap_path("replay");
  SKIP_IF_NO_HARNESS(path);
  kill::KillPlan plan;
  plan.heap_path = path;
  plan.family = kill::Family::isb_list;
  plan.seed = 0xD5ull;
  plan.threads = 1;
  plan.ops_budget = 256;
  plan.kill_point = 150;

  const kill::TrialResult a = kill::kill_one(plan);
  ASSERT_TRUE(a.infra_ok);
  const std::string journal_a = slurp_file(plan.journal_path());

  const kill::TrialResult b = kill::kill_one(plan);
  ASSERT_TRUE(b.infra_ok);
  const std::string journal_b = slurp_file(plan.journal_path());

  EXPECT_TRUE(a.killed) << "kill point 150 should land mid-workload";
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.vacuous, b.vacuous);
  EXPECT_EQ(a.violations, 0) << a.what;
  EXPECT_EQ(b.violations, 0) << b.what;
  EXPECT_EQ(journal_a, journal_b)
      << "single-lane replay must reproduce the journal byte-for-byte";
  kill::cleanup_heap_files(plan);
}

TEST(KillRecovery, RandomizedKillBatchFindsNoViolationsPerFamily) {
  const std::string path = test_heap_path("batch");
  SKIP_IF_NO_HARNESS(path);
  for (kill::Family f : kill::all_families()) {
    kill::KillPlan plan;
    plan.heap_path = path;
    plan.family = f;
    plan.seed = 0xBA7C4ull;
    plan.threads = 2;
    plan.ops_budget = 128;
    const kill::KillReport rep = kill::kill_many(plan, 15);
    EXPECT_EQ(rep.violations, 0)
        << kill::family_name(f) << ": "
        << (rep.failures.empty() ? "" : rep.failures.front().what);
    EXPECT_LT(rep.infra_skips, rep.trials) << kill::family_name(f);
    EXPECT_GT(rep.kills, 0)
        << kill::family_name(f)
        << ": no kill landed; the batch tested nothing";
    kill::cleanup_heap_files(plan);
  }
}

// Double-kill: the first verifier pass is itself SIGKILLed at a
// seed-derived point inside its recovery seal, and a third fresh
// process delivers the verdict.  The seal bracket spans every code
// path of the pass, so the second kill must land on every trial; the
// verdict must still be zero violations — crash-during-recovery
// leaves a state a later recovery handles.
TEST(KillRecovery, DoubleKillLandsInVerifierAndThirdProcessIsClean) {
  const std::string path = test_heap_path("dbl");
  SKIP_IF_NO_HARNESS(path);
  kill::KillPlan plan;
  plan.heap_path = path;
  plan.family = kill::Family::isb_list;
  plan.seed = 0xD0B1Eull;
  plan.threads = 1;
  plan.ops_budget = 128;
  plan.kill_point = 90;
  plan.double_kill = true;

  const kill::TrialResult a = kill::kill_one(plan);
  ASSERT_TRUE(a.infra_ok);
  EXPECT_TRUE(a.killed) << "kill point 90 should land mid-workload";
  EXPECT_TRUE(a.verifier_killed)
      << "the seal bracket spans the whole verify pass; the armed "
         "second SIGKILL must land";
  EXPECT_EQ(a.violations, 0) << a.what;

  // Deterministic: the same {seed, kill_point} replays the same
  // double-kill outcome.
  const kill::TrialResult b = kill::kill_one(plan);
  ASSERT_TRUE(b.infra_ok);
  EXPECT_EQ(b.verifier_killed, a.verifier_killed);
  EXPECT_EQ(b.violations, 0) << b.what;
  kill::cleanup_heap_files(plan);
}

TEST(KillRecovery, DoubleKillBatchFindsNoViolationsPerFamily) {
  const std::string path = test_heap_path("dblbatch");
  SKIP_IF_NO_HARNESS(path);
  for (kill::Family f : kill::all_families()) {
    kill::KillPlan plan;
    plan.heap_path = path;
    plan.family = f;
    plan.seed = 0xD0B7C4ull;
    plan.threads = 2;
    plan.ops_budget = 128;
    plan.double_kill = true;
    const kill::KillReport rep = kill::kill_many(plan, 10);
    EXPECT_EQ(rep.violations, 0)
        << kill::family_name(f) << ": "
        << (rep.failures.empty() ? "" : rep.failures.front().what);
    EXPECT_LT(rep.infra_skips, rep.trials) << kill::family_name(f);
    // Every non-skipped, non-vacuous trial must kill its verifier —
    // the double-kill scenario is vacuous otherwise.
    EXPECT_EQ(rep.verifier_kills,
              rep.trials - rep.infra_skips - rep.vacuous)
        << kill::family_name(f);
    kill::cleanup_heap_files(plan);
  }
}

TEST(KillRecovery, UnmutatedBuildSurvivesDeterministicSweep) {
  const std::string path = test_heap_path("sweep");
  SKIP_IF_NO_HARNESS(path);
  kill::KillPlan plan;
  plan.heap_path = path;
  plan.family = kill::Family::isb_list;
  plan.seed = 0x5EEDull;
  plan.threads = 1;
  plan.ops_budget = 64;
  int violations = 0;
  for (std::uint64_t point = 1; point <= 120; ++point) {
    plan.kill_point = point;
    const kill::TrialResult r = kill::kill_one(plan);
    if (!r.infra_ok) continue;
    if (r.violations > 0 && violations == 0) {
      ADD_FAILURE() << "kill_point=" << point << ": " << r.what;
    }
    violations += r.violations;
  }
  EXPECT_EQ(violations, 0);
  kill::cleanup_heap_files(plan);
}

#else  // REPRO_MUTATE_DROP_MSYNC

// Mutation self-test: commit() now emulates the reorder an elided
// msync/fence mapping permits (durable "done" ahead of the response).
// A deterministic kill-point sweep over the ISB list must observe a
// descriptor that says done-with-stale-response — the violation class
// K3 exists to catch — within 200 points, i.e. within the first few
// dozen operations.
TEST(KillRecoveryMutation, DropMsyncIsDetectedWithin200KillPoints) {
  const std::string path = test_heap_path("mutant");
  SKIP_IF_NO_HARNESS(path);
  kill::KillPlan plan;
  plan.heap_path = path;
  plan.family = kill::Family::isb_list;
  plan.seed = 0x5EEDull;
  plan.threads = 1;
  plan.ops_budget = 64;
  int violations = 0;
  std::uint64_t caught_at = 0;
  for (std::uint64_t point = 1; point <= 200 && violations == 0;
       ++point) {
    plan.kill_point = point;
    const kill::TrialResult r = kill::kill_one(plan);
    if (!r.infra_ok) continue;
    violations += r.violations;
    if (violations > 0) caught_at = point;
  }
  EXPECT_GT(violations, 0)
      << "dropped commit persistence went undetected across 200 "
         "deterministic kill points";
  if (violations > 0) {
    std::printf("mutation caught at kill_point=%llu\n",
                static_cast<unsigned long long>(caught_at));
  }
  kill::cleanup_heap_files(plan);
}

#endif  // REPRO_MUTATE_DROP_MSYNC

}  // namespace
