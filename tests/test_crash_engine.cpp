// The crash-simulation engine: shadow-NVM word semantics (un-fenced
// writes are lost, pwb-without-fence is lost, fenced writes survive,
// the coalescing window spills correctly), crash-point arming at
// persistence-instruction boundaries, deterministic replay of a
// {seed, crash_point} pair, and the crash-point fuzzer's detectability
// verdicts — including the mutation self-test: a build with
// REPRO_MUTATE_DROP_PFENCE (one elided pfence in DtList's policy) must
// be caught within 2000 crash points, and the unmutated build must
// survive 50000.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "repro/harness/crashfuzz.hpp"
#include "repro/harness/registry.hpp"
#include "repro/pmem/crash.hpp"
#include "repro/pmem/persist.hpp"
#include "repro/pmem/shadow.hpp"

namespace {

using namespace repro;
using harness::AlgoEntry;
using harness::CrashPlan;
using harness::FuzzReport;
using pmem::Mode;
using pmem::persist;
namespace shadow = pmem::shadow;
namespace crash = pmem::crash;

// Every test runs inside a shadow session with a clean slate, and
// clears the word table again on exit so no later crash() can touch a
// dead stack frame's registered cells.
class ShadowNvm : public ::testing::Test {
 protected:
  void SetUp() override {
    pmem::set_mode(Mode::shadow);
    shadow::reset();
  }
  void TearDown() override {
    crash::disarm();
    shadow::reset();
    pmem::set_mode(Mode::shared_cache);
  }
};

TEST_F(ShadowNvm, UnfencedStoreIsLostOnCrash) {
  persist<std::uint64_t> w{1};
  w.store(2);
  EXPECT_EQ(w.load(), 2u);  // volatile view sees the store
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 1u);  // durable image never did
}

TEST_F(ShadowNvm, PwbWithoutFenceIsLostOnCrash) {
  persist<std::uint64_t> w{1};
  w.store(2);
  pmem::flush(&w);  // pwb issued, never ordered
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 1u);
}

TEST_F(ShadowNvm, FencedWriteSurvivesCrash) {
  persist<std::uint64_t> w{1};
  w.store(2);
  pmem::flush(&w);
  pmem::fence();
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 2u);

  w.store_persist(3);  // the store+pwb+pfence composite
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 3u);
}

TEST_F(ShadowNvm, PsyncCommitsLikeFence) {
  persist<std::uint64_t> w{1};
  w.store(2);
  pmem::flush(&w);
  pmem::psync();
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 2u);
}

TEST_F(ShadowNvm, AdversarialCrashCoinDecidesPendingLines) {
  // Distinct cache lines, or there is only one pending line to flip.
  struct alignas(64) Line {
    persist<std::uint64_t> w{1};
  };
  Line a, b;
  persist<std::uint64_t>& kept = a.w;
  persist<std::uint64_t>& dropped = b.w;
  kept.store(2);
  dropped.store(2);
  pmem::flush(&kept);
  pmem::flush(&dropped);
  // No fence: both lines are pending; the coin keeps the first line it
  // is asked about and drops the second (iteration order over the two
  // lines is not specified, so assert the aggregate instead).
  bool first = true;
  const auto stats =
      shadow::crash(shadow::CrashFidelity::adversarial, [&first] {
        const bool keep = first;
        first = false;
        return keep;
      });
  EXPECT_EQ(stats.lines_committed, 1u);
  EXPECT_EQ(stats.lines_dropped, 1u);
  EXPECT_EQ((kept.load() == 2u) + (dropped.load() == 2u), 1);
}

TEST_F(ShadowNvm, CoalescingWindowSpillsIntoShadowLog) {
  // More distinct lines than the 8-line coalescing window: the
  // overflow executes some write-backs immediately, but none of them
  // may count as durable until the fence commits the window.
  struct alignas(64) Line {
    persist<std::uint64_t> w{0};
  };
  static Line lines[12];
  ASSERT_TRUE(pmem::coalescing());
  for (int i = 0; i < 12; ++i) {
    lines[i].w.store(7);
    pmem::flush(&lines[i].w);
  }
  shadow::crash_strict();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(lines[i].w.load(), 0u) << "line " << i;
  }
  // Same spill, fence before the crash: everything commits.
  for (int i = 0; i < 12; ++i) {
    lines[i].w.store(9);
    pmem::flush(&lines[i].w);
  }
  pmem::fence();
  shadow::crash_strict();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(lines[i].w.load(), 9u) << "line " << i;
  }
}

TEST_F(ShadowNvm, DuplicatePwbInWindowStaysOnePendingLine) {
  persist<std::uint64_t> w{1};
  w.store(2);
  pmem::flush(&w);
  pmem::flush(&w);  // coalesced away, still exactly one pending line
  const auto stats = shadow::crash_strict();
  EXPECT_EQ(stats.lines_dropped, 1u);
  EXPECT_EQ(w.load(), 1u);
}

TEST_F(ShadowNvm, UncrashRestoresTheVolatileView) {
  persist<std::uint64_t> w{1};
  w.store(2);
  shadow::crash_strict();
  ASSERT_EQ(w.load(), 1u);
  shadow::uncrash();
  EXPECT_EQ(w.load(), 2u);
}

TEST_F(ShadowNvm, CasRoutesThroughTheWriteLog) {
  persist<std::uint64_t> w{5};
  std::uint64_t expected = 5;
  ASSERT_TRUE(w.cas(expected, 8));
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 5u);  // un-persisted CAS rewound
  expected = 5;
  ASSERT_TRUE(w.cas(expected, 8));
  pmem::flush(&w);
  pmem::fence();
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 8u);
}

TEST_F(ShadowNvm, CrashFiresAtTheArmedInstructionBoundary) {
  persist<std::uint64_t> w{1};
  crash::arm(2);
  w.store(2);        // stores are not persistence instructions
  pmem::flush(&w);   // instruction 1: executes
  EXPECT_THROW(pmem::fence(), crash::CrashUnwind);  // instruction 2
  EXPECT_FALSE(crash::armed());   // countdown consumed by the throw
  EXPECT_TRUE(crash::crashed());  // power stays failed until disarm()
  // The machine is off: every further persistence instruction (any
  // thread's) unwinds too, so concurrent workers cannot commit past
  // the crash.
  EXPECT_THROW(pmem::fence(), crash::CrashUnwind);
  // The fence never executed: the pwb stayed pending.
  shadow::crash_strict();
  EXPECT_EQ(w.load(), 1u);
  crash::disarm();  // power restored
  pmem::fence();    // runs normally again
}

// ---------------------------------------------------------------------
// Crash-point fuzzer
// ---------------------------------------------------------------------

const AlgoEntry& algo(const char* name) {
  const AlgoEntry* e = harness::Registry::instance().find(name);
  EXPECT_NE(e, nullptr) << name;
  return *e;
}

CrashPlan quick_plan(int points) {
  CrashPlan p;
  p.seed = 0xFACADEull;
  p.points = points;
  return p;
}

TEST(CrashFuzz, ReplayOfSeedAndCrashPointIsDeterministic) {
  const AlgoEntry& dt = algo("DT");
  const CrashPlan plan = quick_plan(0);
  FuzzReport a, b;
  harness::fuzz_one(dt, plan, /*iter_seed=*/0xABCDEFull,
                    /*crash_point=*/37, 0, a);
  harness::fuzz_one(dt, plan, 0xABCDEFull, 37, 0, b);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(a.crashes, 1);
}

TEST(CrashFuzz, ExplicitCrashPointReplaysTheDrawnIteration) {
  // A reported failure carries the crash point the original iteration
  // *drew* from its own PRNG.  Replaying with that value passed
  // explicitly must leave the workload PRNG in the same state — i.e.
  // run the identical iteration, not a shifted one.
  const AlgoEntry& dt = algo("DT");
  const CrashPlan plan = quick_plan(0);
  const std::uint64_t seed = 0xFEEDF00Dull;
  repro::harness::Rng probe(seed);
  const std::uint64_t drawn = 1 + probe.below(plan.max_events);
  FuzzReport original, replay;
  harness::fuzz_one(dt, plan, seed, /*crash_point=*/0, 0, original);
  harness::fuzz_one(dt, plan, seed, drawn, 0, replay);
  EXPECT_EQ(original.crashes, replay.crashes);
  EXPECT_EQ(original.total_ops, replay.total_ops);
  EXPECT_EQ(original.violations, replay.violations);
}

// Isb-leak (the leak-everything ablation) is deliberately absent: its
// reclaimer leaks retired nodes by design, which LeakSanitizer would
// flag in the ASan CI leg.  The crash-fuzz CI job still fuzzes it
// through crash_recovery's trait:detectable selector.
TEST(CrashFuzz, ListAndQueueFamiliesSurviveFuzzing) {
  for (const char* name :
       {"Isb", "Isb-Opt", "Isb-noROopt", "Isb-Opt-noROopt",
        "DT-Opt", "Isb-Queue"}) {
    const FuzzReport rep =
        harness::fuzz_structure(algo(name), quick_plan(400));
    EXPECT_EQ(rep.violations, 0)
        << name << ": " << (rep.failures.empty()
                                ? "?"
                                : rep.failures.front().what);
    EXPECT_GT(rep.crashes, 0) << name;
    EXPECT_EQ(rep.points, 400) << name;
  }
}

TEST(CrashFuzz, DescriptorLevelStructuresSurviveFuzzing) {
  for (const char* name : {"Bst-Isb", "Bst-Isb-Opt", "DT-SkipList",
                           "DT-Treiber", "DT-Elimination",
                           "Isb-Exchanger"}) {
    const FuzzReport rep =
        harness::fuzz_structure(algo(name), quick_plan(150));
    EXPECT_EQ(rep.violations, 0)
        << name << ": " << (rep.failures.empty()
                                ? "?"
                                : rep.failures.front().what);
  }
}

// ---------------------------------------------------------------------
// Repeated-crash scenario (crash-during-recovery adversary)
// ---------------------------------------------------------------------

TEST_F(ShadowNvm, ChainedCrashKeepsTheUndoLogAcrossLinks) {
  // The chained-crash protocol: stay crashed between links, accumulate
  // rewinds with keep_undo, and one final uncrash() restores the whole
  // pre-crash volatile view.
  persist<std::uint64_t> w{1};
  w.store(2);
  shadow::crash_strict();
  ASSERT_EQ(w.load(), 1u);
  // Second crash while still down: the volatile view has not changed,
  // but the accumulated undo must survive the second rewind.
  w.store(3);  // a recovery-path consolidation write, not yet fenced
  shadow::crash(shadow::CrashFidelity::strict, [] { return false; },
                /*keep_undo=*/true);
  ASSERT_EQ(w.load(), 1u);
  shadow::uncrash();
  // The latest volatile value a rewound word held wins the replay.
  EXPECT_EQ(w.load(), 3u);
}

CrashPlan chain_plan(int points) {
  CrashPlan p = quick_plan(points);
  p.scenario = harness::ScenarioKind::repeated_crash;
  return p;
}

TEST(ChainFuzz, RepeatedCrashReplayIsDeterministic) {
  const AlgoEntry& dt = algo("DT");
  const CrashPlan plan = chain_plan(0);
  FuzzReport a, b;
  harness::fuzz_one(dt, plan, 0xABCDEFull, 37, 0, a);
  harness::fuzz_one(dt, plan, 0xABCDEFull, 37, 0, b);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.chain_crashes, b.chain_crashes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(a.crashes, 1);  // the first crash; chain links count apart
  EXPECT_GT(a.chain_crashes, 0);
}

TEST(ChainFuzz, ReplayChainOverridesTheDerivedPoints) {
  // A reproducer's crash_chain replays the exact chain the original
  // iteration derived — passing those points explicitly must land the
  // same verdict and the same number of chained crashes.
  const AlgoEntry& dt = algo("DT");
  CrashPlan derived = chain_plan(0);
  const std::uint64_t seed = 0xFEEDF00Dull;
  FuzzReport a;
  harness::fuzz_one(dt, derived, seed, 41, 0, a);
  ASSERT_EQ(a.violations, 0);
  CrashPlan explicit_plan = derived;
  const std::uint64_t link = harness::mix_seed(seed, 41);
  for (int d = 0; d < explicit_plan.chain_depth; ++d) {
    explicit_plan.replay_chain.push_back(
        1 + harness::mix_seed(link, static_cast<std::uint64_t>(d)) %
                harness::fuzz_detail::RecoverySeal::kSealWindow);
  }
  FuzzReport b;
  harness::fuzz_one(dt, explicit_plan, seed, 41, 0, b);
  EXPECT_EQ(a.chain_crashes, b.chain_crashes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.total_ops, b.total_ops);
}

TEST(ChainFuzz, AllDetectableFamiliesSurviveChainedCrashes) {
  for (const char* name : {"Isb", "Isb-Opt", "DT", "DT-Opt",
                           "Isb-Queue", "DT-Treiber"}) {
    const FuzzReport rep =
        harness::fuzz_structure(algo(name), chain_plan(200));
    EXPECT_EQ(rep.violations, 0)
        << name << ": " << (rep.failures.empty()
                                ? "?"
                                : rep.failures.front().what);
    EXPECT_GT(rep.chain_crashes, 0) << name;
  }
}

#ifdef REPRO_MUTATE_DROP_RECOVERY_FENCE

// Mutated build: the recovery seal's ordering fence between its seq
// and valid stores is elided, so a chained crash landing inside the
// recovery pass can persist valid while dropping seq.  The
// repeated-crash scenario must notice well within 2000 points.
TEST(ChainFuzz, DroppedRecoveryFenceIsDetectedWithin2000Points) {
  const AlgoEntry& dt = algo("DT");
  CrashPlan plan = chain_plan(2000);
  FuzzReport rep;
  int used = 0;
  const std::uint64_t base = plan.effective_seed();
  for (; used < plan.points && rep.violations == 0; ++used) {
    harness::fuzz_one(dt, plan,
                      harness::mix_seed(base,
                                        static_cast<std::uint64_t>(used)),
                      0, used, rep);
  }
  EXPECT_GT(rep.violations, 0)
      << "mutation not detected in " << used << " crash points";
}

#else

// Unmutated build: the chained sweep must stay clean at the nightly
// budget (the other direction of the mutation self-test).
TEST(ChainFuzz, UnmutatedDtListSurvives5000ChainedPoints) {
  const FuzzReport rep =
      harness::fuzz_structure(algo("DT"), chain_plan(5000));
  EXPECT_EQ(rep.violations, 0)
      << (rep.failures.empty() ? "?" : rep.failures.front().what);
  EXPECT_GT(rep.chain_crashes, 2500);
}

#endif  // REPRO_MUTATE_DROP_RECOVERY_FENCE

// ---------------------------------------------------------------------
// Crash-during-reclaim scenario (persist-before-retire adversary)
// ---------------------------------------------------------------------

CrashPlan reclaim_plan(int points) {
  CrashPlan p = quick_plan(points);
  p.scenario = harness::ScenarioKind::reclaim_crash;
  return p;
}

TEST(ReclaimFuzz, ReclaimCrashReplayIsDeterministic) {
  const AlgoEntry& isb = algo("Isb-Opt");
  const CrashPlan plan = reclaim_plan(0);
  FuzzReport a, b;
  harness::fuzz_one(isb, plan, 0xABCDEFull, 37, 0, a);
  harness::fuzz_one(isb, plan, 0xABCDEFull, 37, 0, b);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(a.crashes, 1);
}

// The full reclaimer matrix under the erase-biased crash-during-
// reclaim mix: every scheme's parked cells must be durably clean at
// every crash (persist-before-retire), and recovery must still satisfy
// the detectability contract.  The deeper sweep runs in the CI
// reclaim-fuzz figure; this pins each scheme's wiring in-tree.
TEST(ReclaimFuzz, ReclaimerMatrixSurvivesReclaimCrashFuzzing) {
  for (const char* name :
       {"Isb-List-HP", "Isb-Queue-HP", "DT-HashMap-HP", "Isb-List-POP",
        "Isb-Queue-POP", "DT-HashMap-POP"}) {
    const FuzzReport rep =
        harness::fuzz_structure(algo(name), reclaim_plan(150));
    EXPECT_EQ(rep.violations, 0)
        << name << ": " << (rep.failures.empty()
                                ? "?"
                                : rep.failures.front().what);
    EXPECT_GT(rep.crashes, 0) << name;
  }
}

#ifdef REPRO_MUTATE_DROP_RETIRE_PERSIST

// Mutated build: retire() parks nodes without flushing+fencing their
// lines first.  Isb-Opt's optimized profile leaves erase post_update
// flushes unfenced, so a crash landing between a retire and the
// thread's next fence finds the parked cell's lines still pending —
// the scenario's parked-cell walk must report it well within 2000
// points.
TEST(ReclaimFuzz, DroppedRetirePersistIsDetectedWithin2000Points) {
  const AlgoEntry& isb = algo("Isb-Opt");
  CrashPlan plan = reclaim_plan(2000);
  FuzzReport rep;
  int used = 0;
  const std::uint64_t base = plan.effective_seed();
  for (; used < plan.points && rep.violations == 0; ++used) {
    harness::fuzz_one(isb, plan,
                      harness::mix_seed(base,
                                        static_cast<std::uint64_t>(used)),
                      0, used, rep);
  }
  EXPECT_GT(rep.violations, 0)
      << "mutation not detected in " << used << " crash points";
}

#else

// Unmutated build: the same structure must survive the nightly budget
// (the other direction of the mutation self-test).
TEST(ReclaimFuzz, UnmutatedIsbOptSurvives5000ReclaimPoints) {
  const FuzzReport rep =
      harness::fuzz_structure(algo("Isb-Opt"), reclaim_plan(5000));
  EXPECT_EQ(rep.violations, 0)
      << (rep.failures.empty() ? "?" : rep.failures.front().what);
  EXPECT_GT(rep.crashes, 2500);
}

#endif  // REPRO_MUTATE_DROP_RETIRE_PERSIST

#ifdef REPRO_MUTATE_DROP_PFENCE

// Mutated build: DtList is missing its post-update ordering fence, so
// an adversarial crash can persist the commit record while dropping
// the structural update.  The fuzzer must notice well within 2000
// crash points (empirically it takes a few dozen).
TEST(CrashFuzz, DroppedPfenceIsDetectedWithin2000Points) {
  const AlgoEntry& dt = algo("DT");
  CrashPlan plan = quick_plan(2000);
  FuzzReport rep;
  int used = 0;
  const std::uint64_t base = plan.effective_seed();
  for (; used < plan.points && rep.violations == 0; ++used) {
    harness::fuzz_one(dt, plan,
                      harness::mix_seed(base,
                                        static_cast<std::uint64_t>(used)),
                      0, used, rep);
  }
  EXPECT_GT(rep.violations, 0)
      << "mutation not detected in " << used << " crash points";
}

#else

// Unmutated build: the same structure must survive the full 50000
// crash points the nightly job runs (the other direction of the
// mutation self-test).
TEST(CrashFuzz, UnmutatedDtListSurvives50000Points) {
  const FuzzReport rep =
      harness::fuzz_structure(algo("DT"), quick_plan(50000));
  EXPECT_EQ(rep.violations, 0)
      << (rep.failures.empty() ? "?" : rep.failures.front().what);
  EXPECT_GT(rep.crashes, 25000);  // most points must actually crash
}

#endif  // REPRO_MUTATE_DROP_PFENCE

}  // namespace
