// The memory subsystem: pool slab alignment and reuse accounting, EBR
// grace-period correctness under both a deterministic pin and a
// concurrent retire/reuse stress (canary values catch premature
// reclamation; TSan/ASan catch it as a race/use-after-free), the
// bounded-RSS property an update-only churn must keep, pwb coalescing
// windows, and recover() safety on descriptors whose nodes were
// pool-recycled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/harness/runner.hpp"
#include "repro/harness/workload.hpp"
#include "repro/mem/ebr.hpp"
#include "repro/mem/hp.hpp"
#include "repro/mem/pool.hpp"
#include "repro/mem/pop.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::mem::EbrReclaimer;
using repro::mem::EpochDomain;
using repro::mem::kCacheLine;
using repro::mem::NodePool;
using repro::mem::outstanding_blocks;
using repro::mem::Stats;

constexpr std::uint64_t kAlive = 0xA11CEull;  // not 8-aligned: can never
                                              // collide with a free-list
                                              // pointer overlaying the cell

// Canary node: constructed alive, its destructor marks the cell dead —
// a reader holding an epoch guard must never observe anything but
// kAlive through a pointer it loaded while pinned.
struct CanaryNode {
  explicit CanaryNode(std::uint64_t v) : value(v) {}
  ~CanaryNode() { value.store(0xDEADull, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value;
};

// Separate type so alignment assertions get their own pool.
struct alignas(64) WideNode {
  explicit WideNode(int v) : tag(v) {}
  int tag;
  char pad[60];
};

TEST(Pool, SlabAlignmentAndDistinctCells) {
  auto& pool = NodePool<WideNode>::instance();
  constexpr int kN = 300;  // spans more than one 64 KiB slab
  std::vector<WideNode*> nodes;
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(i));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(nodes[i]) % 64, 0u)
        << "cell " << i << " violates alignas(64)";
    EXPECT_EQ(nodes[i]->tag, i);
    for (int j = i + 1; j < kN; ++j) EXPECT_NE(nodes[i], nodes[j]);
  }
  EXPECT_GE(pool.slab_count(), 1u);
  for (WideNode* n : nodes) pool.destroy(n);
}

TEST(Pool, ReuseAccountingAndOutstanding) {
  auto& pool = NodePool<CanaryNode>::instance();
  const Stats s0 = repro::mem::stats();
  const std::int64_t out0 = outstanding_blocks();
  constexpr int kN = 500;

  std::vector<CanaryNode*> nodes;
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(kAlive));
  EXPECT_EQ(repro::mem::stats().allocs, s0.allocs + kN);
  EXPECT_EQ(outstanding_blocks(), out0 + kN);

  for (CanaryNode* n : nodes) pool.destroy(n);
  EXPECT_EQ(outstanding_blocks(), out0);

  // A second wave must be served entirely from the free list.
  nodes.clear();
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(kAlive));
  EXPECT_GE(repro::mem::stats().reuses, s0.reuses + kN);
  EXPECT_EQ(repro::mem::stats().allocs, s0.allocs + 2 * kN);
  for (CanaryNode* n : nodes) pool.destroy(n);
}

TEST(Ebr, GracePeriodBlocksReclaimWhilePinned) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);

  CanaryNode* n = NodePool<CanaryNode>::instance().create(kAlive);
  {
    EpochDomain::Guard guard;
    EbrReclaimer::retire<CanaryNode>(n);
    EXPECT_EQ(dom.limbo_size(), 1u);
    // With this thread pinned, the epoch can advance at most once, so
    // the retired node's two-epoch grace period cannot elapse.
    for (int i = 0; i < 10; ++i) dom.try_advance();
    EXPECT_EQ(dom.limbo_size(), 1u);
    EXPECT_EQ(n->value.load(std::memory_order_relaxed), kAlive)
        << "node reclaimed while a guard was pinned";
  }
  // Unpinned: the grace period can be forced to elapse.
  const Stats before = repro::mem::stats();
  dom.quiesce();
  EXPECT_EQ(dom.limbo_size(), 0u);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + 1);
}

// Writers publish fresh canary nodes into a shared slot and retire what
// they displace; pinned readers must only ever observe live cells.
// Premature reclamation shows up as a dead canary here, and as a data
// race / use-after-free under the TSan and ASan CI jobs (the free-list
// link is written over the canary word).
TEST(Ebr, ConcurrentRetireReuseStress) {
  std::atomic<CanaryNode*> slot{
      NodePool<CanaryNode>::instance().create(kAlive)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reclaims{0};

  std::vector<std::thread> ws;
  for (int w = 0; w < 2; ++w) {
    ws.emplace_back([&] {
      const Stats s0 = repro::mem::stats();
      for (int i = 0; i < 30000; ++i) {
        EpochDomain::Guard guard;
        CanaryNode* fresh = NodePool<CanaryNode>::instance().create(kAlive);
        CanaryNode* old = slot.exchange(fresh, std::memory_order_acq_rel);
        EbrReclaimer::retire<CanaryNode>(old);
      }
      reclaims.fetch_add(repro::mem::stats().reclaims - s0.reclaims);
    });
  }
  for (int r = 0; r < 2; ++r) {
    ws.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard guard;
        CanaryNode* p = slot.load(std::memory_order_acquire);
        ASSERT_EQ(p->value.load(std::memory_order_relaxed), kAlive)
            << "reader observed a reclaimed cell";
      }
    });
  }
  ws[0].join();
  ws[1].join();
  stop.store(true, std::memory_order_release);
  ws[2].join();
  ws[3].join();

  // Reclamation genuinely ran (nodes cycled through limbo back to the
  // pool), it just never outran a pinned reader.
  EXPECT_GT(reclaims.load(), 0u);
  EbrReclaimer::destroy<CanaryNode>(
      slot.load(std::memory_order_acquire));
}

// The chained-recovery regression: crash-engine iterations wrap every
// recovery link in a ReclaimPause, and the FINAL resume must drain
// what the pause parked — before the fix, resume_reclaim() only
// decremented the nesting depth, so a chain's whole retire footprint
// sat in limbo until some later iteration's retire tick.
TEST(Ebr, FinalResumeDrainsRipeLimboParkedDuringPause) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);

  constexpr std::size_t kN = 10;
  for (std::size_t i = 0; i < kN; ++i) {
    EbrReclaimer::retire<CanaryNode>(
        NodePool<CanaryNode>::instance().create(kAlive));
  }
  ASSERT_EQ(dom.limbo_size(), kN);
  // Let the grace period elapse while nothing runs a reclaim sweep:
  // the nodes are ripe but parked.
  dom.try_advance();
  dom.try_advance();

  const Stats before = repro::mem::stats();
  dom.pause_reclaim();
  dom.pause_reclaim();   // nested: a crash landing inside recover()
  dom.resume_reclaim();  // inner resume must NOT drain
  EXPECT_EQ(dom.limbo_size(), kN);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims);
  dom.resume_reclaim();  // final resume drains the parked nodes
  EXPECT_EQ(dom.limbo_size(), 0u);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + kN);
}

// While paused, a retire tick must neither advance the epoch nor
// recycle a cell — the crash engine relies on rewound durable links
// staying bit-intact (never re-initialised by a pool reuse) while the
// post-crash image is verified, across every link of a crash chain.
TEST(Ebr, PausedRetireTicksParkNodesWithoutRecycling) {
  using repro::mem::kAdvanceEvery;
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);
  const std::uint64_t e0 = dom.epoch();

  std::vector<CanaryNode*> nodes;
  {
    repro::mem::ReclaimPause pause;
    // Enough retires that the kAdvanceEvery tick fires repeatedly
    // under the pause.
    for (int i = 0; i < 2 * kAdvanceEvery; ++i) {
      CanaryNode* n = NodePool<CanaryNode>::instance().create(kAlive);
      nodes.push_back(n);
      EbrReclaimer::retire<CanaryNode>(n);
    }
    EXPECT_EQ(dom.limbo_size(), nodes.size());
    EXPECT_EQ(dom.epoch(), e0) << "epoch advanced under pause";
    for (CanaryNode* n : nodes) {
      ASSERT_EQ(n->value.load(std::memory_order_relaxed), kAlive)
          << "cell recycled while reclamation was paused";
    }
  }
  // Pause scope ended (final resume); the epoch moves again and a
  // quiesce reclaims everything the pause parked.
  dom.quiesce();
  EXPECT_EQ(dom.limbo_size(), 0u);
}

// The ReclaimPause-bypass regression (this PR's bugfix): retire()'s
// stale-limbo drain ran unconditionally, even while reclamation was
// paused.  Force the epoch/index collision — retire a node at epoch e,
// advance the epoch by kEpochLists so the next retire hashes to the
// *same* limbo list (whose recorded epoch is now stale), then retire
// under a pause.  Pre-fix, the drain recycled the first node in the
// middle of the pause (the crash engine could see a rewound durable
// link re-initialised under its verification walk); post-fix the stale
// items are parked and the final resume frees them.
TEST(Ebr, StaleLimboDrainRespectsReclaimPause) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);

  CanaryNode* first = NodePool<CanaryNode>::instance().create(kAlive);
  EbrReclaimer::retire<CanaryNode>(first);
  ASSERT_EQ(dom.limbo_size(), 1u);

  // Advance by exactly kEpochLists: the next retire's limbo index
  // collides with `first`'s list.
  const std::uint64_t e0 = dom.epoch();
  for (int i = 0; i < repro::mem::kEpochLists; ++i) {
    ASSERT_TRUE(dom.try_advance()) << "advance " << i;
  }
  ASSERT_EQ(dom.epoch(), e0 + repro::mem::kEpochLists);

  const Stats before = repro::mem::stats();
  dom.pause_reclaim();
  CanaryNode* second = NodePool<CanaryNode>::instance().create(kAlive);
  EbrReclaimer::retire<CanaryNode>(second);  // stale-drain path, paused
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims)
      << "the stale-limbo drain recycled a cell during a ReclaimPause";
  EXPECT_EQ(first->value.load(std::memory_order_relaxed), kAlive)
      << "pause bypass: first node reclaimed mid-pause";
  // `first` parked + `second` in limbo.
  EXPECT_EQ(dom.limbo_size(), 2u);

  dom.resume_reclaim();  // final resume frees what the pause parked
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + 1);
  dom.quiesce();
  EXPECT_EQ(dom.limbo_size(), 0u);
}

// Per-thread-death support: the crash driver resets a dead lane's
// slot before a fresh thread adopts it, so an abandoned pin cannot
// stall epoch advancement forever.
TEST(Ebr, ResetSlotPinUnblocksAdvancement) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();

  std::atomic<int> slot{-1};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread th([&] {
    EpochDomain::Guard guard;
    slot.store(repro::ds::thread_slot(), std::memory_order_relaxed);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
  });
  while (!pinned.load(std::memory_order_acquire)) {
  }

  // The parked slot announces the pre-advance epoch: the first
  // advance can succeed, the second must stall on it.
  dom.try_advance();
  EXPECT_FALSE(dom.try_advance())
      << "a parked pin should stall the second advance";

  dom.reset_slot_pin(slot.load(std::memory_order_relaxed));
  EXPECT_TRUE(dom.try_advance())
      << "reset_slot_pin should unblock advancement";

  // Out-of-range slots are ignored (the adoption path passes whatever
  // slot index the dead lane recorded).
  dom.reset_slot_pin(-1);
  dom.reset_slot_pin(repro::ds::kMaxThreads);

  release.store(true, std::memory_order_release);
  th.join();
}

// The leak ablation keeps the seed's semantics: counted, never
// recycled.
TEST(Ebr, LeakReclaimerCountsButNeverReclaims) {
  using repro::mem::LeakReclaimer;
  const Stats s0 = repro::mem::stats();
  auto* n = LeakReclaimer::create<CanaryNode>(kAlive);
  LeakReclaimer::retire<CanaryNode>(n);
  const Stats d = repro::mem::stats() - s0;
  EXPECT_EQ(d.allocs, 1u);
  EXPECT_EQ(d.retires, 1u);
  EXPECT_EQ(d.reuses, 0u);
  EXPECT_EQ(d.reclaims, 0u);
  delete n;  // the test cleans up what the ablation would leak
}

// Update-only churn: the live-cell count must stay O(key range), not
// O(operations) — the property the seed's leak-everything allocation
// lacked.  Single-threaded so the grace-period cadence is
// deterministic: the epoch advances every kAdvanceEvery retires, so
// limbo never holds more than a few advance windows.  (Multi-threaded
// reclamation progress is covered by ConcurrentRetireReuseStress; its
// residue depends on the host's scheduling, an oversubscribed box can
// park a scheduling round's worth of retires in limbo.)
TEST(Ebr, BoundedRssUnderUpdateOnlyChurn) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  EpochDomain::instance().quiesce();
  const std::int64_t out0 = outstanding_blocks();
  constexpr int kOps = 100000;  // ~50k inserts: the leak's RSS shape
  constexpr std::int64_t kRange = 128;
  {
    repro::ds::IsbList list;
    std::mt19937 rng(77u);
    for (int i = 0; i < kOps; ++i) {
      const std::int64_t k = 1 + static_cast<std::int64_t>(rng() % kRange);
      if (rng() % 2 == 0) {
        list.insert(k);
      } else {
        list.erase(k);
      }
    }
    // Live cells: the list itself (<= range + sentinels) plus at most a
    // few advance windows of limbo — three orders of magnitude under
    // the ~50k cells a leak would hold here.
    EXPECT_LT(outstanding_blocks() - out0, 2000);
  }
  // Structure destroyed and this thread's limbo drained: every cell is
  // back in the pools.
  EpochDomain::instance().quiesce();
  EXPECT_LT(outstanding_blocks() - out0, 100);
}

// The run_threads accounting: allocs/retires per op and the reuse ratio
// reach the RunResult the sinks emit.
TEST(Harness, RunThreadsReportsMemoryMetrics) {
  setenv("REPRO_BENCH_MS", "60", 1);
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::ds::IsbList list;
  const repro::harness::Workload w(64, repro::harness::kUpdateOnly);
  const auto r = repro::harness::run_threads(
      2, [&](int, repro::harness::Rng& rng) {
        const auto key = w.pick_key(rng);
        if (w.pick_op(rng) == repro::harness::OpType::insert) {
          list.insert(key);
        } else {
          list.erase(key);
        }
      });
  unsetenv("REPRO_BENCH_MS");
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.allocs_per_op, 0.0);
  EXPECT_GT(r.retired_per_op, 0.0);
  // Churn over a small range recycles cells; the exact ratio depends
  // on how often the host's scheduler lets grace periods elapse during
  // the short interval (the bench trajectory tracks the steady-state
  // value), so this only pins that recycling reached the accounting.
  EXPECT_GT(r.reuse_ratio, 0.0);
  EXPECT_LE(r.reuse_ratio, 1.0);
}

// pwb coalescing: duplicates of one line inside a fence window are
// elided and tallied; a fence opens a new window; the raw pwb count
// (what the figures plot) is never affected.
TEST(Coalescing, SameLineDuplicatesElideWithinFenceWindow) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::pmem::fence();  // clear any window left by earlier tests
  alignas(64) char buf[256];
  const auto c0 = repro::pmem::counters();
  repro::pmem::flush(buf);       // first touch: buffered
  repro::pmem::flush(buf + 8);   // same line: elided
  repro::pmem::flush(buf + 63);  // same line: elided
  repro::pmem::flush(buf + 64);  // second line: buffered
  auto d = repro::pmem::counters() - c0;
  EXPECT_EQ(d.flushes, 4u);
  EXPECT_EQ(d.coalesced, 2u);

  repro::pmem::fence();          // window boundary
  repro::pmem::flush(buf);       // fresh window: not a duplicate
  d = repro::pmem::counters() - c0;
  EXPECT_EQ(d.flushes, 5u);
  EXPECT_EQ(d.coalesced, 2u);
  repro::pmem::fence();
}

TEST(Coalescing, OverflowFallsBackToImmediateAndToggleDisables) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::pmem::fence();
  alignas(64) char buf[64 * 12];
  const auto c0 = repro::pmem::counters();
  // More distinct lines than the window holds: the overflow executes
  // immediately, nothing is mis-counted as coalesced.
  for (int i = 0; i < 12; ++i) repro::pmem::flush(buf + 64 * i);
  // A line that made it into the window still coalesces.
  repro::pmem::flush(buf);
  auto d = repro::pmem::counters() - c0;
  EXPECT_EQ(d.flushes, 13u);
  EXPECT_EQ(d.coalesced, 1u);
  repro::pmem::fence();

  repro::pmem::set_coalescing(false);
  const auto c1 = repro::pmem::counters();
  repro::pmem::flush(buf);
  repro::pmem::flush(buf);  // duplicate, but coalescing is off
  d = repro::pmem::counters() - c1;
  repro::pmem::set_coalescing(true);
  EXPECT_EQ(d.flushes, 2u);
  EXPECT_EQ(d.coalesced, 0u);
}

// The directory keeps extents sorted and coalesced: registering the
// slab after an existing one must merge, not append — nightly fuzz
// runs register thousands of slabs and every durable-walk pointer
// check pays one owns() lookup.
TEST(Pool, SlabDirectoryCoalescesAdjacentExtents) {
  auto& dir = repro::mem::SlabDirectory::instance();
  alignas(64) static char arena[64 * 8];

  dir.add(arena, 64);
  const std::size_t n0 = dir.range_count();
  dir.add(arena + 64, 64);  // adjacent: absorbed, not appended
  EXPECT_EQ(dir.range_count(), n0);
  EXPECT_TRUE(dir.owns(arena));
  EXPECT_TRUE(dir.owns(arena + 64));
  EXPECT_FALSE(dir.owns(arena + 128));  // past the merged extent
  EXPECT_FALSE(dir.owns(arena + 1));    // unaligned is never a node

  dir.add(arena + 256, 64);  // disjoint (gap at [128, 256)): new extent
  EXPECT_EQ(dir.range_count(), n0 + 1);
  EXPECT_FALSE(dir.owns(arena + 128));

  // Bridge the gap: extends the predecessor and absorbs the successor.
  dir.add(arena + 128, 128);
  EXPECT_EQ(dir.range_count(), n0);
  for (std::size_t off = 0; off < 320; off += 64) {
    EXPECT_TRUE(dir.owns(arena + off)) << "offset " << off;
  }
  EXPECT_FALSE(dir.owns(arena + 320));

  dir.add(arena, 320);  // fully covered: a no-op
  EXPECT_EQ(dir.range_count(), n0);
}

// A node type whose cell size does not divide the 64 KiB slab; the
// pool must trim the slab request to a whole number of cells so the
// tail bytes stay with the allocator (on the mmap heap: with the
// arena) instead of being stranded behind bump_end forever.
struct OddNode {
  explicit OddNode(int v) { data[0] = static_cast<char>(v); }
  char data[136];  // 136 -> 192-byte cell; 64 KiB % 192 == 64
};

TEST(Pool, OddCellSizeTrimsSlabTailNoWaste) {
  using Pool = NodePool<OddNode>;
  auto& pool = Pool::instance();
  static_assert(Pool::cell_bytes() == 192);
  static_assert(Pool::slab_payload_bytes() % Pool::cell_bytes() == 0,
                "slab requests must be a whole number of cells");
  static_assert(repro::mem::kSlabBytes - Pool::slab_payload_bytes() <
                    Pool::cell_bytes(),
                "the trim may only drop a sub-cell tail");
  constexpr std::size_t kPerSlab =
      Pool::slab_payload_bytes() / Pool::cell_bytes();

  // Exactly one slab's worth of cells comes out of one slab; the
  // (kPerSlab + 1)-th allocation is what forces slab two.
  const std::int64_t out0 = outstanding_blocks();
  const std::size_t slabs0 = pool.slab_count();
  std::vector<OddNode*> nodes;
  for (std::size_t i = 0; i < kPerSlab; ++i) {
    nodes.push_back(pool.create(static_cast<int>(i)));
  }
  EXPECT_EQ(pool.slab_count(), slabs0 + 1);
  nodes.push_back(pool.create(0));
  EXPECT_EQ(pool.slab_count(), slabs0 + 2);
  EXPECT_EQ(outstanding_blocks() - out0,
            static_cast<std::int64_t>(kPerSlab + 1));

  // Freed cells all round-trip through the free list: the second wave
  // allocates no slab and reuses every cell, so no cell of the first
  // wave was stranded.
  for (OddNode* n : nodes) pool.destroy(n);
  EXPECT_EQ(outstanding_blocks(), out0);
  const Stats s0 = repro::mem::stats();
  nodes.clear();
  for (std::size_t i = 0; i < kPerSlab + 1; ++i) {
    nodes.push_back(pool.create(static_cast<int>(i)));
  }
  EXPECT_EQ(pool.slab_count(), slabs0 + 2);
  EXPECT_EQ(repro::mem::stats().reuses - s0.reuses, kPerSlab + 1);
  for (OddNode* n : nodes) pool.destroy(n);
}

// Hazard pointers: a published hazard blocks the scan from freeing the
// node it names until the guard exits (which clears the slot's
// hazards).
TEST(Hp, HazardBlocksScanUntilGuardExit) {
  using repro::mem::HpDomain;
  using repro::mem::HpReclaimer;
  HpDomain& dom = HpDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.batch_size(), 0u);

  CanaryNode* n = NodePool<CanaryNode>::instance().create(kAlive);
  const Stats before = repro::mem::stats();
  {
    HpDomain::Guard guard;
    guard.protect(0, n);
    HpReclaimer::retire<CanaryNode>(n);
    EXPECT_EQ(dom.batch_size(), 1u);
    dom.quiesce();  // forced scan: the hazard must keep n parked
    EXPECT_EQ(dom.batch_size(), 1u);
    EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims);
    EXPECT_EQ(n->value.load(std::memory_order_relaxed), kAlive)
        << "scan freed a hazard-protected node";
  }
  dom.quiesce();  // hazards cleared at guard exit: now it frees
  EXPECT_EQ(dom.batch_size(), 0u);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + 1);
}

// POP: a pinned (lagging) slot stalls the advance — and gets pinged;
// the slot's next guard entry re-announces and unblocks it.  This is
// the whole scheme: announcements refresh on demand, not per entry.
TEST(Pop, LaggingPinStallsAdvanceUntilPingRefresh) {
  using repro::mem::PopDomain;
  PopDomain& dom = PopDomain::instance();
  dom.quiesce();

  { PopDomain::Guard g; }  // pin persists between ops (DEBRA-style)
  const std::uint64_t e0 = dom.epoch();
  EXPECT_TRUE(dom.try_advance());  // announce == e0: one advance fits
  EXPECT_FALSE(dom.try_advance())
      << "a lagging pin must stall the second advance";
  // The failed advance pinged this slot; the next guard entry
  // re-announces the current epoch and clears the ping.
  { PopDomain::Guard g; }
  EXPECT_TRUE(dom.try_advance()) << "ping refresh should unblock";
  EXPECT_EQ(dom.epoch(), e0 + 2);
  dom.quiesce();
}

// POP grace periods mirror EBR's: nothing retired under a live pin is
// recycled until the pin goes quiescent.
TEST(Pop, GracePeriodBlocksReclaimWhilePinned) {
  using repro::mem::PopDomain;
  using repro::mem::PopReclaimer;
  PopDomain& dom = PopDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);

  CanaryNode* n = NodePool<CanaryNode>::instance().create(kAlive);
  {
    PopDomain::Guard guard;
    PopReclaimer::retire<CanaryNode>(n);
    EXPECT_EQ(dom.limbo_size(), 1u);
    for (int i = 0; i < 10; ++i) dom.try_advance();
    EXPECT_EQ(dom.limbo_size(), 1u);
    EXPECT_EQ(n->value.load(std::memory_order_relaxed), kAlive)
        << "node reclaimed while a POP guard was pinned";
  }
  const Stats before = repro::mem::stats();
  dom.quiesce();
  EXPECT_EQ(dom.limbo_size(), 0u);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + 1);
}

// One ReclaimPause freezes every scheme: concurrent retire storms on
// EBR, HP and POP all park (limbo / batch growth, zero reclaims) until
// the pause lifts, then each thread's drain frees its backlog.  The
// crash engine relies on exactly this — whichever reclaimer the
// structure under test carries, a single pause stops recycling.
TEST(Reclaimers, PauseFreezesEverySchemeUntilResume) {
  using repro::mem::HpDomain;
  using repro::mem::HpReclaimer;
  using repro::mem::PopDomain;
  using repro::mem::PopReclaimer;
  EpochDomain::instance().quiesce();
  PopDomain::instance().quiesce();
  HpDomain::instance().quiesce();

  std::atomic<int> parked{0};
  std::atomic<bool> resumed{false};
  // Crosses both kAdvanceEvery (EBR/POP advance ticks) and
  // kHpScanThreshold (HP scan trigger) while paused.
  constexpr std::size_t kN = 400;

  auto storm = [&](auto retire_one, auto pending, auto drain) {
    const Stats s0 = repro::mem::stats();  // thread-local tallies
    const std::size_t p0 = pending();
    for (std::size_t i = 0; i < kN; ++i) retire_one();
    EXPECT_EQ(repro::mem::stats().reclaims, s0.reclaims)
        << "a retired cell recycled while reclamation was paused";
    EXPECT_EQ(pending(), p0 + kN);
    parked.fetch_add(1, std::memory_order_release);
    while (!resumed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    drain();
    EXPECT_EQ(pending(), 0u);
    EXPECT_GE(repro::mem::stats().reclaims - s0.reclaims, kN);
  };

  EpochDomain::instance().pause_reclaim();
  std::vector<std::thread> ws;
  ws.emplace_back([&] {
    storm(
        [] {
          EbrReclaimer::retire<CanaryNode>(
              NodePool<CanaryNode>::instance().create(kAlive));
        },
        [] { return EpochDomain::instance().limbo_size(); },
        [] { EpochDomain::instance().quiesce(); });
  });
  ws.emplace_back([&] {
    storm(
        [] {
          PopReclaimer::retire<CanaryNode>(
              NodePool<CanaryNode>::instance().create(kAlive));
        },
        [] { return PopDomain::instance().limbo_size(); },
        [] { PopDomain::instance().quiesce(); });
  });
  ws.emplace_back([&] {
    storm(
        [] {
          HpReclaimer::retire<CanaryNode>(
              NodePool<CanaryNode>::instance().create(kAlive));
        },
        [] { return HpDomain::instance().batch_size(); },
        [] { HpDomain::instance().quiesce(); });
  });
  while (parked.load(std::memory_order_acquire) < 3) {
    std::this_thread::yield();
  }
  EpochDomain::instance().resume_reclaim();
  resumed.store(true, std::memory_order_release);
  for (auto& w : ws) w.join();
}

// Satellite: recover() reads the announcement board, which is never
// pool-allocated — recycling the nodes an operation touched must not
// disturb what a crashed thread would learn.
TEST(Recovery, RecoverSafeAfterNodesRecycled) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::ds::IsbList list;
  const int slot = repro::ds::thread_slot();

  ASSERT_TRUE(list.insert(7));
  ASSERT_TRUE(list.erase(7));  // unlinks and retires the node
  EpochDomain::instance().quiesce();  // cell is back in the pool
  ASSERT_TRUE(list.insert(8));        // very likely reuses that cell

  const repro::ds::Recovered rec = list.recover(slot);
  EXPECT_TRUE(rec.completed);
  EXPECT_EQ(rec.kind, repro::ds::OpKind::insert);
  EXPECT_EQ(rec.key, 8);
  EXPECT_TRUE(rec.ok);
}

}  // namespace
