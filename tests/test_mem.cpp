// The memory subsystem: pool slab alignment and reuse accounting, EBR
// grace-period correctness under both a deterministic pin and a
// concurrent retire/reuse stress (canary values catch premature
// reclamation; TSan/ASan catch it as a race/use-after-free), the
// bounded-RSS property an update-only churn must keep, pwb coalescing
// windows, and recover() safety on descriptors whose nodes were
// pool-recycled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "repro/ds/detectable.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/harness/runner.hpp"
#include "repro/harness/workload.hpp"
#include "repro/mem/ebr.hpp"
#include "repro/mem/pool.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::mem::EbrReclaimer;
using repro::mem::EpochDomain;
using repro::mem::kCacheLine;
using repro::mem::NodePool;
using repro::mem::outstanding_blocks;
using repro::mem::Stats;

constexpr std::uint64_t kAlive = 0xA11CEull;  // not 8-aligned: can never
                                              // collide with a free-list
                                              // pointer overlaying the cell

// Canary node: constructed alive, its destructor marks the cell dead —
// a reader holding an epoch guard must never observe anything but
// kAlive through a pointer it loaded while pinned.
struct CanaryNode {
  explicit CanaryNode(std::uint64_t v) : value(v) {}
  ~CanaryNode() { value.store(0xDEADull, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value;
};

// Separate type so alignment assertions get their own pool.
struct alignas(64) WideNode {
  explicit WideNode(int v) : tag(v) {}
  int tag;
  char pad[60];
};

TEST(Pool, SlabAlignmentAndDistinctCells) {
  auto& pool = NodePool<WideNode>::instance();
  constexpr int kN = 300;  // spans more than one 64 KiB slab
  std::vector<WideNode*> nodes;
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(i));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(nodes[i]) % 64, 0u)
        << "cell " << i << " violates alignas(64)";
    EXPECT_EQ(nodes[i]->tag, i);
    for (int j = i + 1; j < kN; ++j) EXPECT_NE(nodes[i], nodes[j]);
  }
  EXPECT_GE(pool.slab_count(), 1u);
  for (WideNode* n : nodes) pool.destroy(n);
}

TEST(Pool, ReuseAccountingAndOutstanding) {
  auto& pool = NodePool<CanaryNode>::instance();
  const Stats s0 = repro::mem::stats();
  const std::int64_t out0 = outstanding_blocks();
  constexpr int kN = 500;

  std::vector<CanaryNode*> nodes;
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(kAlive));
  EXPECT_EQ(repro::mem::stats().allocs, s0.allocs + kN);
  EXPECT_EQ(outstanding_blocks(), out0 + kN);

  for (CanaryNode* n : nodes) pool.destroy(n);
  EXPECT_EQ(outstanding_blocks(), out0);

  // A second wave must be served entirely from the free list.
  nodes.clear();
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(kAlive));
  EXPECT_GE(repro::mem::stats().reuses, s0.reuses + kN);
  EXPECT_EQ(repro::mem::stats().allocs, s0.allocs + 2 * kN);
  for (CanaryNode* n : nodes) pool.destroy(n);
}

TEST(Ebr, GracePeriodBlocksReclaimWhilePinned) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);

  CanaryNode* n = NodePool<CanaryNode>::instance().create(kAlive);
  {
    EpochDomain::Guard guard;
    EbrReclaimer::retire<CanaryNode>(n);
    EXPECT_EQ(dom.limbo_size(), 1u);
    // With this thread pinned, the epoch can advance at most once, so
    // the retired node's two-epoch grace period cannot elapse.
    for (int i = 0; i < 10; ++i) dom.try_advance();
    EXPECT_EQ(dom.limbo_size(), 1u);
    EXPECT_EQ(n->value.load(std::memory_order_relaxed), kAlive)
        << "node reclaimed while a guard was pinned";
  }
  // Unpinned: the grace period can be forced to elapse.
  const Stats before = repro::mem::stats();
  dom.quiesce();
  EXPECT_EQ(dom.limbo_size(), 0u);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + 1);
}

// Writers publish fresh canary nodes into a shared slot and retire what
// they displace; pinned readers must only ever observe live cells.
// Premature reclamation shows up as a dead canary here, and as a data
// race / use-after-free under the TSan and ASan CI jobs (the free-list
// link is written over the canary word).
TEST(Ebr, ConcurrentRetireReuseStress) {
  std::atomic<CanaryNode*> slot{
      NodePool<CanaryNode>::instance().create(kAlive)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reclaims{0};

  std::vector<std::thread> ws;
  for (int w = 0; w < 2; ++w) {
    ws.emplace_back([&] {
      const Stats s0 = repro::mem::stats();
      for (int i = 0; i < 30000; ++i) {
        EpochDomain::Guard guard;
        CanaryNode* fresh = NodePool<CanaryNode>::instance().create(kAlive);
        CanaryNode* old = slot.exchange(fresh, std::memory_order_acq_rel);
        EbrReclaimer::retire<CanaryNode>(old);
      }
      reclaims.fetch_add(repro::mem::stats().reclaims - s0.reclaims);
    });
  }
  for (int r = 0; r < 2; ++r) {
    ws.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard guard;
        CanaryNode* p = slot.load(std::memory_order_acquire);
        ASSERT_EQ(p->value.load(std::memory_order_relaxed), kAlive)
            << "reader observed a reclaimed cell";
      }
    });
  }
  ws[0].join();
  ws[1].join();
  stop.store(true, std::memory_order_release);
  ws[2].join();
  ws[3].join();

  // Reclamation genuinely ran (nodes cycled through limbo back to the
  // pool), it just never outran a pinned reader.
  EXPECT_GT(reclaims.load(), 0u);
  EbrReclaimer::destroy<CanaryNode>(
      slot.load(std::memory_order_acquire));
}

// The chained-recovery regression: crash-engine iterations wrap every
// recovery link in a ReclaimPause, and the FINAL resume must drain
// what the pause parked — before the fix, resume_reclaim() only
// decremented the nesting depth, so a chain's whole retire footprint
// sat in limbo until some later iteration's retire tick.
TEST(Ebr, FinalResumeDrainsRipeLimboParkedDuringPause) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);

  constexpr std::size_t kN = 10;
  for (std::size_t i = 0; i < kN; ++i) {
    EbrReclaimer::retire<CanaryNode>(
        NodePool<CanaryNode>::instance().create(kAlive));
  }
  ASSERT_EQ(dom.limbo_size(), kN);
  // Let the grace period elapse while nothing runs a reclaim sweep:
  // the nodes are ripe but parked.
  dom.try_advance();
  dom.try_advance();

  const Stats before = repro::mem::stats();
  dom.pause_reclaim();
  dom.pause_reclaim();   // nested: a crash landing inside recover()
  dom.resume_reclaim();  // inner resume must NOT drain
  EXPECT_EQ(dom.limbo_size(), kN);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims);
  dom.resume_reclaim();  // final resume drains the parked nodes
  EXPECT_EQ(dom.limbo_size(), 0u);
  EXPECT_EQ(repro::mem::stats().reclaims, before.reclaims + kN);
}

// While paused, a retire tick must neither advance the epoch nor
// recycle a cell — the crash engine relies on rewound durable links
// staying bit-intact (never re-initialised by a pool reuse) while the
// post-crash image is verified, across every link of a crash chain.
TEST(Ebr, PausedRetireTicksParkNodesWithoutRecycling) {
  using repro::mem::kAdvanceEvery;
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();
  ASSERT_EQ(dom.limbo_size(), 0u);
  const std::uint64_t e0 = dom.epoch();

  std::vector<CanaryNode*> nodes;
  {
    repro::mem::ReclaimPause pause;
    // Enough retires that the kAdvanceEvery tick fires repeatedly
    // under the pause.
    for (int i = 0; i < 2 * kAdvanceEvery; ++i) {
      CanaryNode* n = NodePool<CanaryNode>::instance().create(kAlive);
      nodes.push_back(n);
      EbrReclaimer::retire<CanaryNode>(n);
    }
    EXPECT_EQ(dom.limbo_size(), nodes.size());
    EXPECT_EQ(dom.epoch(), e0) << "epoch advanced under pause";
    for (CanaryNode* n : nodes) {
      ASSERT_EQ(n->value.load(std::memory_order_relaxed), kAlive)
          << "cell recycled while reclamation was paused";
    }
  }
  // Pause scope ended (final resume); the epoch moves again and a
  // quiesce reclaims everything the pause parked.
  dom.quiesce();
  EXPECT_EQ(dom.limbo_size(), 0u);
}

// Per-thread-death support: the crash driver resets a dead lane's
// slot before a fresh thread adopts it, so an abandoned pin cannot
// stall epoch advancement forever.
TEST(Ebr, ResetSlotPinUnblocksAdvancement) {
  EpochDomain& dom = EpochDomain::instance();
  dom.quiesce();

  std::atomic<int> slot{-1};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread th([&] {
    EpochDomain::Guard guard;
    slot.store(repro::ds::thread_slot(), std::memory_order_relaxed);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
  });
  while (!pinned.load(std::memory_order_acquire)) {
  }

  // The parked slot announces the pre-advance epoch: the first
  // advance can succeed, the second must stall on it.
  dom.try_advance();
  EXPECT_FALSE(dom.try_advance())
      << "a parked pin should stall the second advance";

  dom.reset_slot_pin(slot.load(std::memory_order_relaxed));
  EXPECT_TRUE(dom.try_advance())
      << "reset_slot_pin should unblock advancement";

  // Out-of-range slots are ignored (the adoption path passes whatever
  // slot index the dead lane recorded).
  dom.reset_slot_pin(-1);
  dom.reset_slot_pin(repro::ds::kMaxThreads);

  release.store(true, std::memory_order_release);
  th.join();
}

// The leak ablation keeps the seed's semantics: counted, never
// recycled.
TEST(Ebr, LeakReclaimerCountsButNeverReclaims) {
  using repro::mem::LeakReclaimer;
  const Stats s0 = repro::mem::stats();
  auto* n = LeakReclaimer::create<CanaryNode>(kAlive);
  LeakReclaimer::retire<CanaryNode>(n);
  const Stats d = repro::mem::stats() - s0;
  EXPECT_EQ(d.allocs, 1u);
  EXPECT_EQ(d.retires, 1u);
  EXPECT_EQ(d.reuses, 0u);
  EXPECT_EQ(d.reclaims, 0u);
  delete n;  // the test cleans up what the ablation would leak
}

// Update-only churn: the live-cell count must stay O(key range), not
// O(operations) — the property the seed's leak-everything allocation
// lacked.  Single-threaded so the grace-period cadence is
// deterministic: the epoch advances every kAdvanceEvery retires, so
// limbo never holds more than a few advance windows.  (Multi-threaded
// reclamation progress is covered by ConcurrentRetireReuseStress; its
// residue depends on the host's scheduling, an oversubscribed box can
// park a scheduling round's worth of retires in limbo.)
TEST(Ebr, BoundedRssUnderUpdateOnlyChurn) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  EpochDomain::instance().quiesce();
  const std::int64_t out0 = outstanding_blocks();
  constexpr int kOps = 100000;  // ~50k inserts: the leak's RSS shape
  constexpr std::int64_t kRange = 128;
  {
    repro::ds::IsbList list;
    std::mt19937 rng(77u);
    for (int i = 0; i < kOps; ++i) {
      const std::int64_t k = 1 + static_cast<std::int64_t>(rng() % kRange);
      if (rng() % 2 == 0) {
        list.insert(k);
      } else {
        list.erase(k);
      }
    }
    // Live cells: the list itself (<= range + sentinels) plus at most a
    // few advance windows of limbo — three orders of magnitude under
    // the ~50k cells a leak would hold here.
    EXPECT_LT(outstanding_blocks() - out0, 2000);
  }
  // Structure destroyed and this thread's limbo drained: every cell is
  // back in the pools.
  EpochDomain::instance().quiesce();
  EXPECT_LT(outstanding_blocks() - out0, 100);
}

// The run_threads accounting: allocs/retires per op and the reuse ratio
// reach the RunResult the sinks emit.
TEST(Harness, RunThreadsReportsMemoryMetrics) {
  setenv("REPRO_BENCH_MS", "60", 1);
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::ds::IsbList list;
  const repro::harness::Workload w(64, repro::harness::kUpdateOnly);
  const auto r = repro::harness::run_threads(
      2, [&](int, repro::harness::Rng& rng) {
        const auto key = w.pick_key(rng);
        if (w.pick_op(rng) == repro::harness::OpType::insert) {
          list.insert(key);
        } else {
          list.erase(key);
        }
      });
  unsetenv("REPRO_BENCH_MS");
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.allocs_per_op, 0.0);
  EXPECT_GT(r.retired_per_op, 0.0);
  // Churn over a small range recycles cells; the exact ratio depends
  // on how often the host's scheduler lets grace periods elapse during
  // the short interval (the bench trajectory tracks the steady-state
  // value), so this only pins that recycling reached the accounting.
  EXPECT_GT(r.reuse_ratio, 0.0);
  EXPECT_LE(r.reuse_ratio, 1.0);
}

// pwb coalescing: duplicates of one line inside a fence window are
// elided and tallied; a fence opens a new window; the raw pwb count
// (what the figures plot) is never affected.
TEST(Coalescing, SameLineDuplicatesElideWithinFenceWindow) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::pmem::fence();  // clear any window left by earlier tests
  alignas(64) char buf[256];
  const auto c0 = repro::pmem::counters();
  repro::pmem::flush(buf);       // first touch: buffered
  repro::pmem::flush(buf + 8);   // same line: elided
  repro::pmem::flush(buf + 63);  // same line: elided
  repro::pmem::flush(buf + 64);  // second line: buffered
  auto d = repro::pmem::counters() - c0;
  EXPECT_EQ(d.flushes, 4u);
  EXPECT_EQ(d.coalesced, 2u);

  repro::pmem::fence();          // window boundary
  repro::pmem::flush(buf);       // fresh window: not a duplicate
  d = repro::pmem::counters() - c0;
  EXPECT_EQ(d.flushes, 5u);
  EXPECT_EQ(d.coalesced, 2u);
  repro::pmem::fence();
}

TEST(Coalescing, OverflowFallsBackToImmediateAndToggleDisables) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::pmem::fence();
  alignas(64) char buf[64 * 12];
  const auto c0 = repro::pmem::counters();
  // More distinct lines than the window holds: the overflow executes
  // immediately, nothing is mis-counted as coalesced.
  for (int i = 0; i < 12; ++i) repro::pmem::flush(buf + 64 * i);
  // A line that made it into the window still coalesces.
  repro::pmem::flush(buf);
  auto d = repro::pmem::counters() - c0;
  EXPECT_EQ(d.flushes, 13u);
  EXPECT_EQ(d.coalesced, 1u);
  repro::pmem::fence();

  repro::pmem::set_coalescing(false);
  const auto c1 = repro::pmem::counters();
  repro::pmem::flush(buf);
  repro::pmem::flush(buf);  // duplicate, but coalescing is off
  d = repro::pmem::counters() - c1;
  repro::pmem::set_coalescing(true);
  EXPECT_EQ(d.flushes, 2u);
  EXPECT_EQ(d.coalesced, 0u);
}

// Satellite: recover() reads the announcement board, which is never
// pool-allocated — recycling the nodes an operation touched must not
// disturb what a crashed thread would learn.
TEST(Recovery, RecoverSafeAfterNodesRecycled) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  repro::ds::IsbList list;
  const int slot = repro::ds::thread_slot();

  ASSERT_TRUE(list.insert(7));
  ASSERT_TRUE(list.erase(7));  // unlinks and retires the node
  EpochDomain::instance().quiesce();  // cell is back in the pool
  ASSERT_TRUE(list.insert(8));        // very likely reuses that cell

  const repro::ds::Recovered rec = list.recover(slot);
  EXPECT_TRUE(rec.completed);
  EXPECT_EQ(rec.kind, repro::ds::OpKind::insert);
  EXPECT_EQ(rec.key, 8);
  EXPECT_TRUE(rec.ok);
}

}  // namespace
