// Golden accept/reject histories for the durable-linearizability
// checker (harness/linearize.hpp), per registry Kind: plain
// linearizability over completed ops, real-time precedence, the
// exchanger pairing rule, and the durable-cut extension — must / may /
// must_not pending verdicts against a walked durable image, including
// a crash history where the same pending op both may linearize (may +
// effect durable) and must not (must_not + effect durable), and the
// buffered-cut case a strict end-state check would wrongly reject.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "repro/harness/history.hpp"
#include "repro/harness/linearize.hpp"

namespace {

using namespace repro;
using harness::HistoryEvent;
using harness::lin::check;
using harness::lin::kNever;
using harness::lin::Op;
using harness::lin::Pending;
using harness::lin::Result;
using harness::lin::Semantics;
using harness::lin::Spec;
using harness::lin::Verdict;
using ds::OpKind;

Op op(int lane, OpKind k, std::int64_t input, std::uint64_t inv,
      std::uint64_t resp, bool ok, std::uint64_t result,
      Pending p = Pending::completed) {
  Op o;
  o.lane = lane;
  o.kind = k;
  o.input = input;
  o.invoke_ts = inv;
  o.response_ts = resp;
  o.ok = ok;
  o.result = result;
  o.pending = p;
  return o;
}

Spec spec_of(Semantics s) {
  Spec sp;
  sp.kind = s;
  return sp;
}

// ---------------------------------------------------------------------
// Set
// ---------------------------------------------------------------------

TEST(LinearizeSet, SequentialHistoryAccepted) {
  const std::vector<Op> ops = {
      op(0, OpKind::insert, 5, 1, 2, true, 1),
      op(0, OpKind::find, 5, 3, 4, true, 1),
      op(0, OpKind::erase, 5, 5, 6, true, 1),
      op(0, OpKind::find, 5, 7, 8, false, 0),
  };
  EXPECT_EQ(check(ops, spec_of(Semantics::set)).verdict,
            Verdict::linearizable);
}

TEST(LinearizeSet, FindOfNeverInsertedKeyRejected) {
  const std::vector<Op> ops = {
      op(0, OpKind::insert, 5, 1, 2, true, 1),
      op(1, OpKind::find, 7, 3, 4, true, 1),  // 7 was never inserted
  };
  const Result r = check(ops, spec_of(Semantics::set));
  EXPECT_EQ(r.verdict, Verdict::violation);
}

TEST(LinearizeSet, OverlappingInsertsOfOneKeyOneWins) {
  // Two concurrent inserts of 5: exactly one may succeed.
  const std::vector<Op> both_ok = {
      op(0, OpKind::insert, 5, 1, 10, true, 1),
      op(1, OpKind::insert, 5, 2, 11, true, 1),
  };
  EXPECT_EQ(check(both_ok, spec_of(Semantics::set)).verdict,
            Verdict::violation);
  const std::vector<Op> one_ok = {
      op(0, OpKind::insert, 5, 1, 10, true, 1),
      op(1, OpKind::insert, 5, 2, 11, false, 0),
  };
  EXPECT_EQ(check(one_ok, spec_of(Semantics::set)).verdict,
            Verdict::linearizable);
}

TEST(LinearizeSet, RealTimePrecedenceEnforced) {
  // erase(5)=true completes strictly before insert(5) is invoked, so
  // the erase cannot linearize after the insert even though that
  // ordering would explain the responses.
  const std::vector<Op> ops = {
      op(0, OpKind::erase, 5, 1, 2, true, 1),   // needs 5 present
      op(1, OpKind::insert, 5, 3, 4, true, 1),  // starts after the erase
  };
  Spec sp = spec_of(Semantics::set);
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
  sp.initial_keys = {5};  // prefilled: erase first is now legal
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
}

// ---------------------------------------------------------------------
// Queue / stack
// ---------------------------------------------------------------------

TEST(LinearizeQueue, FifoOrderAccepted) {
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, 2, true, 101),
      op(0, OpKind::enqueue, 102, 3, 4, true, 102),
      op(1, OpKind::dequeue, 0, 5, 6, true, 101),
      op(1, OpKind::dequeue, 0, 7, 8, true, 102),
  };
  EXPECT_EQ(check(ops, spec_of(Semantics::queue)).verdict,
            Verdict::linearizable);
}

TEST(LinearizeQueue, NonFifoHistoryRejected) {
  // The known-non-linearizable queue history: both enqueues complete
  // (in real time) before the dequeues run, yet the dequeues observe
  // LIFO order.
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, 2, true, 101),
      op(0, OpKind::enqueue, 102, 3, 4, true, 102),
      op(1, OpKind::dequeue, 0, 5, 6, true, 102),
      op(1, OpKind::dequeue, 0, 7, 8, true, 101),
  };
  const Result r = check(ops, spec_of(Semantics::queue));
  EXPECT_EQ(r.verdict, Verdict::violation);
}

TEST(LinearizeQueue, OverlappingEnqueuesDequeueEitherOrder) {
  // The two enqueues overlap, so the dequeue order is free.
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, 10, true, 101),
      op(1, OpKind::enqueue, 102, 2, 11, true, 102),
      op(2, OpKind::dequeue, 0, 12, 13, true, 102),
      op(2, OpKind::dequeue, 0, 14, 15, true, 101),
  };
  EXPECT_EQ(check(ops, spec_of(Semantics::queue)).verdict,
            Verdict::linearizable);
}

TEST(LinearizeQueue, EmptyDequeueOnlyWhenEmptyExplainable) {
  Spec sp = spec_of(Semantics::queue);
  sp.initial_values = {7};
  const std::vector<Op> ops = {
      op(0, OpKind::dequeue, 0, 1, 2, false, 0),  // before the drain?
      op(0, OpKind::dequeue, 0, 3, 4, true, 7),
  };
  // Sequential: the failed dequeue runs first but the queue holds 7.
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
}

TEST(LinearizeStack, LifoAcceptedAndRejected) {
  const std::vector<Op> good = {
      op(0, OpKind::push, 1, 1, 2, true, 1),
      op(0, OpKind::push, 2, 3, 4, true, 2),
      op(1, OpKind::pop, 0, 5, 6, true, 2),
      op(1, OpKind::pop, 0, 7, 8, true, 1),
  };
  EXPECT_EQ(check(good, spec_of(Semantics::stack)).verdict,
            Verdict::linearizable);
  const std::vector<Op> bad = {
      op(0, OpKind::push, 1, 1, 2, true, 1),
      op(0, OpKind::push, 2, 3, 4, true, 2),
      op(1, OpKind::pop, 0, 5, 6, true, 1),  // FIFO order: not a stack
      op(1, OpKind::pop, 0, 7, 8, true, 2),
  };
  EXPECT_EQ(check(bad, spec_of(Semantics::stack)).verdict,
            Verdict::violation);
}

// ---------------------------------------------------------------------
// Exchanger
// ---------------------------------------------------------------------

TEST(LinearizeExchanger, OverlappingPairSwapsValues) {
  const std::vector<Op> ops = {
      op(0, OpKind::exchange, 10, 1, 4, true, 20),
      op(1, OpKind::exchange, 20, 2, 5, true, 10),
  };
  EXPECT_EQ(check(ops, spec_of(Semantics::exchanger)).verdict,
            Verdict::linearizable);
}

TEST(LinearizeExchanger, MismatchedOrNonOverlappingPairRejected) {
  const std::vector<Op> wrong_value = {
      op(0, OpKind::exchange, 10, 1, 4, true, 99),  // nobody offered 99
      op(1, OpKind::exchange, 20, 2, 5, true, 10),
  };
  EXPECT_EQ(check(wrong_value, spec_of(Semantics::exchanger)).verdict,
            Verdict::violation);
  const std::vector<Op> disjoint = {
      op(0, OpKind::exchange, 10, 1, 2, true, 20),  // done before #2
      op(1, OpKind::exchange, 20, 3, 4, true, 10),  // starts after #1
  };
  EXPECT_EQ(check(disjoint, spec_of(Semantics::exchanger)).verdict,
            Verdict::violation);
  const std::vector<Op> timeouts = {
      op(0, OpKind::exchange, 10, 1, 2, false, 0),
      op(1, OpKind::exchange, 20, 3, 4, false, 0),
  };
  EXPECT_EQ(check(timeouts, spec_of(Semantics::exchanger)).verdict,
            Verdict::linearizable);
}

// ---------------------------------------------------------------------
// Durable cut: crash histories
// ---------------------------------------------------------------------

// One crash history, the verdict spectrum for the same pending
// insert(5):
//   may      + 5 durable     → accepted (cut after the insert)
//   may      + 5 not durable → accepted (insert excluded / after cut)
//   must     + 5 not durable → accepted for sets — the hostage window
//              (see lin::check) means a committed set op's effect can
//              be durably unreachable through an upstream thread's
//              unfenced link, so only the response is pinned
//   must     + wrong response → rejected (descriptor lies about the
//              response: insert(5)=false is impossible on an empty set)
//   must_not + 5 durable     → rejected (trace of an op that left none)
TEST(LinearizeDurable, PendingVerdictsAgainstTheDurableImage) {
  auto pending_insert = [](Pending p, bool ok) {
    Op o = op(0, OpKind::insert, 5, 1, kNever, ok, ok ? 1 : 0, p);
    return std::vector<Op>{o};
  };
  Spec with5 = spec_of(Semantics::set);
  with5.check_durable = true;
  with5.durable_keys = {5};
  Spec without5 = spec_of(Semantics::set);
  without5.check_durable = true;

  EXPECT_EQ(check(pending_insert(Pending::may, false), with5).verdict,
            Verdict::linearizable);
  EXPECT_EQ(check(pending_insert(Pending::may, false), without5).verdict,
            Verdict::linearizable);
  EXPECT_EQ(check(pending_insert(Pending::must, true), without5).verdict,
            Verdict::linearizable);
  EXPECT_EQ(check(pending_insert(Pending::must, true), with5).verdict,
            Verdict::linearizable);
  // A must verdict still pins the response: a durably-committed
  // insert(5)=false on an empty initial set cannot linearize.
  EXPECT_EQ(check(pending_insert(Pending::must, false), without5).verdict,
            Verdict::violation);
  EXPECT_EQ(
      check(pending_insert(Pending::must_not, true), with5).verdict,
      Verdict::violation);
  EXPECT_EQ(
      check(pending_insert(Pending::must_not, true), without5).verdict,
      Verdict::linearizable);
}

TEST(LinearizeDurable, MustEnqueueInsideTheCut) {
  // Descriptor-committed enqueue: its value must be in the durable
  // queue, at a FIFO-consistent position.
  Spec sp = spec_of(Semantics::queue);
  sp.initial_values = {1};
  sp.check_durable = true;
  sp.durable_values = {1};  // effect missing
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, kNever, true, 101, Pending::must),
  };
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
  sp.durable_values = {1, 101};  // effect present
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
}

TEST(LinearizeDurable, BufferedCutAcceptsVolatileSuffix) {
  // Thread 1 completes find(5)=true having observed thread 0's still
  // in-flight insert(5); the crash then loses the insert.  A strict
  // end-state check would reject this history, but the durable image
  // is a legal *cut* (before both ops), and the suffix [insert, find]
  // linearizes on volatile state — exactly the flush-on-read window
  // the Isb/DT policies leave open (pre_cas is a no-op).
  Spec sp = spec_of(Semantics::set);
  sp.check_durable = true;  // durable image: empty
  const std::vector<Op> ops = {
      op(0, OpKind::insert, 5, 1, kNever, false, 0, Pending::may),
      op(1, OpKind::find, 5, 2, 3, true, 1),
  };
  const Result r = check(ops, sp);
  EXPECT_EQ(r.verdict, Verdict::linearizable);
  EXPECT_EQ(r.cut, 0);  // the durable prefix is empty
}

TEST(LinearizeDurable, CompletedEffectAfterCutIsLegal) {
  // A completed insert built on another thread's unpersisted link can
  // be rewound wholesale; buffered durable linearizability places it
  // after the cut rather than rejecting the history.
  Spec sp = spec_of(Semantics::set);
  sp.check_durable = true;  // durable image: empty
  const std::vector<Op> ops = {
      op(0, OpKind::insert, 7, 1, 2, true, 1),
  };
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
}

TEST(LinearizeDurable, DurableValueNobodyEnqueuedRejected) {
  // The durable queue contains a value no operation produced — what a
  // dropped pre_publish leaves behind (zero/stale payload).
  Spec sp = spec_of(Semantics::queue);
  sp.initial_values = {1, 2};
  sp.check_durable = true;
  sp.durable_values = {1, 2, 0};
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, kNever, false, 0, Pending::may),
  };
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
}

// ---------------------------------------------------------------------
// Adversarial crash scenarios: stalled threads, dead-lane adoption,
// crash-during-recovery cuts (the shapes the scenario fuzzers feed the
// checker, pinned here as goldens)
// ---------------------------------------------------------------------

// Stalled-thread resume: a worker parked across the crash finally
// responds; resolve_pending turns its pending op into a completed one
// with the late response, and the verdict must follow the response.
TEST(LinearizeScenario, StalledThreadResumeResolvesToCompleted) {
  std::vector<Op> ops = {
      op(1, OpKind::insert, 9, 2, 3, true, 1),
      op(0, OpKind::insert, 5, 1, kNever, false, 0, Pending::may),
  };
  ASSERT_TRUE(harness::lin::resolve_pending(ops, 0, /*response_ts=*/10,
                                            /*ok=*/true, /*result=*/1));
  EXPECT_EQ(ops[1].pending, Pending::completed);
  EXPECT_EQ(ops[1].response_ts, 10u);
  EXPECT_EQ(check(ops, spec_of(Semantics::set)).verdict,
            Verdict::linearizable);
  // A lane with nothing pending resolves nothing.
  EXPECT_FALSE(harness::lin::resolve_pending(ops, 1, 11, true, 1));
}

// A stalled worker resuming with a STALE response: it claims
// insert(5)=true, but another lane's successful insert(5) completed
// before the stalled op was even invoked — no linearization explains
// two winning inserts of one key.
TEST(LinearizeScenario, StalledThreadStaleResponseRejected) {
  std::vector<Op> ops = {
      op(1, OpKind::insert, 5, 1, 2, true, 1),
      op(0, OpKind::insert, 5, 3, kNever, false, 0, Pending::may),
  };
  ASSERT_TRUE(harness::lin::resolve_pending(ops, 0, 10, true, 1));
  EXPECT_EQ(check(ops, spec_of(Semantics::set)).verdict,
            Verdict::violation);
  // The consistent late response (false: 5 was already there) passes.
  std::vector<Op> ok_ops = {
      op(1, OpKind::insert, 5, 1, 2, true, 1),
      op(0, OpKind::insert, 5, 3, kNever, false, 0, Pending::may),
  };
  ASSERT_TRUE(harness::lin::resolve_pending(ok_ops, 0, 10, false, 0));
  EXPECT_EQ(check(ok_ops, spec_of(Semantics::set)).verdict,
            Verdict::linearizable);
}

// Dead-lane adoption: the adopter's recover() finds the dead lane's
// enqueue descriptor-committed, upgrading its pending verdict to must
// — the value must then sit in the durable queue.
TEST(LinearizeScenario, DeadLaneAdoptionUpgradesPendingToMust) {
  Spec sp = spec_of(Semantics::queue);
  sp.check_durable = true;
  const std::vector<Op> ops = {
      op(1, OpKind::enqueue, 7, 1, 2, true, 7),
      op(0, OpKind::enqueue, 101, 3, kNever, true, 101, Pending::must),
  };
  sp.durable_values = {7, 101};
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
  sp.durable_values = {7};  // committed effect durably lost
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
}

// Dead-lane adoption, the other verdict: recover() reports the dead
// lane's op NOT applied (must_not) — any durable trace of it is a
// violation.
TEST(LinearizeScenario, DeadLaneMustNotWithDurableTraceRejected) {
  Spec sp = spec_of(Semantics::queue);
  sp.check_durable = true;
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, kNever, false, 0,
         Pending::must_not),
  };
  sp.durable_values = {};
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
  sp.durable_values = {101};
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
}

// Crash-during-recovery (repeated crash): however many links the
// chain had, the final durable image must still be a PREFIX of some
// linearization.  Holding the second of two sequential enqueues while
// dropping the first is no prefix — the cut shape a broken
// consolidation write leaves behind.
TEST(LinearizeScenario, ChainedCrashCutMustRemainAPrefix) {
  Spec sp = spec_of(Semantics::queue);
  sp.check_durable = true;
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, 2, true, 101),
      op(0, OpKind::enqueue, 102, 3, 4, true, 102),
  };
  sp.durable_values = {101};  // cut between the enqueues: legal
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
  sp.durable_values = {101, 102};  // cut after both: legal
  EXPECT_EQ(check(ops, sp).verdict, Verdict::linearizable);
  sp.durable_values = {102};  // second without the first: no prefix
  EXPECT_EQ(check(ops, sp).verdict, Verdict::violation);
}

// A stalled worker's late dequeue may return a value enqueued while
// it was parked (its interval spans the enqueue), but never a value
// whose enqueue began after the dequeue responded.
TEST(LinearizeScenario, StalledDequeueRespectsRealTimeOrder) {
  std::vector<Op> ops = {
      op(0, OpKind::dequeue, 0, 1, kNever, false, 0, Pending::may),
      op(1, OpKind::enqueue, 55, 5, 6, true, 55),
  };
  ASSERT_TRUE(harness::lin::resolve_pending(ops, 0, 10, true, 55));
  EXPECT_EQ(check(ops, spec_of(Semantics::queue)).verdict,
            Verdict::linearizable);
  std::vector<Op> bad = {
      op(0, OpKind::dequeue, 0, 1, kNever, false, 0, Pending::may),
      op(1, OpKind::enqueue, 55, 5, 6, true, 55),
  };
  // Resume BEFORE the enqueue was invoked, yet return its value.
  ASSERT_TRUE(harness::lin::resolve_pending(bad, 0, 3, true, 55));
  EXPECT_EQ(check(bad, spec_of(Semantics::queue)).verdict,
            Verdict::violation);
}

// ---------------------------------------------------------------------
// Determinism and event plumbing
// ---------------------------------------------------------------------

TEST(Linearize, VerdictIsDeterministic) {
  const std::vector<Op> ops = {
      op(0, OpKind::enqueue, 101, 1, 10, true, 101),
      op(1, OpKind::enqueue, 102, 2, 11, true, 102),
      op(2, OpKind::dequeue, 0, 3, 12, true, 102),
      op(2, OpKind::dequeue, 0, 13, 14, true, 101),
      op(1, OpKind::enqueue, 103, 15, kNever, false, 0, Pending::may),
  };
  Spec sp = spec_of(Semantics::queue);
  sp.check_durable = true;
  sp.durable_values = {103};
  const Result a = check(ops, sp);
  const Result b = check(ops, sp);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.witness, b.witness);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(Linearize, OpsFromEventsPairsInterleavedLanes) {
  using harness::EventType;
  std::vector<HistoryEvent> ev(5);
  ev[0] = {1, 0, EventType::invoke, 0, OpKind::enqueue, 101, false, 0};
  ev[1] = {2, 1, EventType::invoke, 0, OpKind::dequeue, 0, false, 0};
  ev[2] = {3, 0, EventType::response, 0, OpKind::enqueue, 101, true, 101};
  ev[3] = {4, 1, EventType::response, 0, OpKind::dequeue, 0, true, 101};
  ev[4] = {5, 0, EventType::invoke, 1, OpKind::enqueue, 102, false, 0};
  const auto ops = harness::lin::ops_from_events(ev);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].pending, Pending::completed);
  EXPECT_EQ(ops[1].pending, Pending::completed);
  EXPECT_EQ(ops[1].result, 101u);
  EXPECT_EQ(ops[2].pending, Pending::may);
  EXPECT_EQ(ops[2].response_ts, kNever);
  EXPECT_EQ(check(ops, spec_of(Semantics::queue)).verdict,
            Verdict::linearizable);
}

TEST(Linearize, JsonlRoundTripsThroughTheParser) {
  harness::HistoryRecorder rec(2, 4);
  const auto a = rec.invoke(0, OpKind::enqueue, 101);
  rec.response(0, a, true, 101);
  const auto b = rec.invoke(1, OpKind::dequeue, 0);
  rec.response(1, b, true, 101);
  rec.invoke(0, OpKind::enqueue, 102);  // pending
  rec.mark_crash();

  std::vector<HistoryEvent> parsed;
  ASSERT_TRUE(harness::parse_history_jsonl(rec.to_jsonl(), parsed));
  ASSERT_EQ(parsed.size(), 6u);
  const auto ops = harness::lin::ops_from_events(parsed);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[2].pending, Pending::may);
  const auto direct = harness::lin::ops_from_history(rec);
  ASSERT_EQ(direct.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].kind, direct[i].kind) << i;
    EXPECT_EQ(ops[i].invoke_ts, direct[i].invoke_ts) << i;
    EXPECT_EQ(ops[i].response_ts, direct[i].response_ts) << i;
  }
}

}  // namespace
