// Queue semantics across every queue in the library, all through the
// unified DequeueResult dequeue() signature: single-thread FIFO order,
// and an MPMC stress checking no loss, no duplication, and per-producer
// order.  Also covers the stack and the exchanger.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "repro/baselines/capsules_queue.hpp"
#include "repro/baselines/log_queue.hpp"
#include "repro/baselines/ms_queue.hpp"
#include "repro/ds/dt_stack.hpp"
#include "repro/ds/isb_exchanger.hpp"
#include "repro/ds/isb_queue.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::baselines::CapsulesQueue;
using repro::baselines::LogQueue;
using repro::baselines::MsQueue;
using repro::ds::DtStack;
using repro::ds::IsbExchanger;
using repro::ds::IsbQueue;

template <typename Queue>
void check_fifo(Queue& q) {
  EXPECT_FALSE(q.dequeue().ok);
  for (std::uint64_t v = 1; v <= 100; ++v) q.enqueue(v);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    const auto r = q.dequeue();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, v);
  }
  EXPECT_FALSE(q.dequeue().ok);
}

// 4 producers tag items (producer << 32 | seq); 4 consumers drain.
// Checks: every item received exactly once, and per-producer FIFO.
template <typename Queue>
void check_mpmc(Queue& q) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  std::atomic<std::uint64_t> received{0};
  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::vector<std::thread> ws;
  for (int p = 0; p < kProducers; ++p) {
    ws.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(static_cast<std::uint64_t>(p) << 32 | i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ws.emplace_back([&q, &received, &got, c] {
      while (received.load() < kProducers * kPerProducer) {
        const auto r = q.dequeue();
        if (r.ok) {
          got[c].push_back(r.value);
          received.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : ws) w.join();

  std::map<std::uint64_t, int> seen;
  std::vector<std::vector<std::uint64_t>> per_producer(kProducers);
  for (const auto& v : got) {
    for (const std::uint64_t x : v) {
      ++seen[x];
      per_producer[x >> 32].push_back(x & 0xFFFFFFFFu);
    }
  }
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
  for (const auto& [value, count] : seen) {
    ASSERT_EQ(count, 1) << "duplicated value " << value;
  }
  // Per-producer order within a single consumer's stream must ascend.
  for (int c = 0; c < kConsumers; ++c) {
    std::vector<std::uint64_t> last(kProducers, 0);
    std::vector<bool> any(kProducers, false);
    for (const std::uint64_t x : got[c]) {
      const auto p = static_cast<int>(x >> 32);
      const std::uint64_t i = x & 0xFFFFFFFFu;
      if (any[p]) EXPECT_LT(last[p], i);
      last[p] = i;
      any[p] = true;
    }
  }
}

template <typename Queue, typename... Args>
void run_all_queue_checks(Args&&... args) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  {
    Queue q(std::forward<Args>(args)...);
    check_fifo(q);
  }
  {
    Queue q(std::forward<Args>(args)...);
    check_mpmc(q);
  }
}

TEST(Queues, MsQueue) { run_all_queue_checks<MsQueue>(); }

TEST(Queues, MsQueueUnifiedSignature) {
  // The satellite fix: the volatile baseline exposes the same
  // DequeueResult dequeue() as every recoverable queue.
  MsQueue q;
  q.enqueue(9);
  const repro::ds::DequeueResult r = q.dequeue();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 9u);
}

TEST(Queues, IsbQueue) { run_all_queue_checks<IsbQueue>(); }

TEST(Queues, LogQueue) { run_all_queue_checks<LogQueue>(); }

TEST(Queues, CapsulesQueueGeneral) {
  run_all_queue_checks<CapsulesQueue>(CapsulesQueue::Variant::general);
}

TEST(Queues, CapsulesQueueOptimized) {
  run_all_queue_checks<CapsulesQueue>(CapsulesQueue::Variant::optimized);
}

TEST(Queues, CapsulesQueueNormalized) {
  run_all_queue_checks<CapsulesQueue>(CapsulesQueue::Variant::normalized);
}

TEST(Stack, LifoSingleThread) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  DtStack s;
  EXPECT_FALSE(s.pop().ok);
  for (std::uint64_t v = 1; v <= 50; ++v) s.push(v);
  for (std::uint64_t v = 50; v >= 1; --v) {
    const auto r = s.pop();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, v);
  }
  EXPECT_FALSE(s.pop().ok);
}

TEST(Stack, ConcurrentPushPopConserved) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  for (const bool elim : {false, true}) {
    DtStack::Config cfg;
    cfg.elimination = elim;
    DtStack s(cfg);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 4000;
    std::atomic<std::uint64_t> pushed_sum{0};
    std::atomic<std::uint64_t> popped_sum{0};
    std::atomic<std::uint64_t> popped_n{0};
    std::vector<std::thread> ws;
    for (int t = 0; t < kThreads; ++t) {
      ws.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          // High bit set: elimination must transfer full 64-bit values.
          const auto v = (1ull << 63) |
                         static_cast<std::uint64_t>(t * kPerThread + i + 1);
          if (i % 2 == 0) {
            s.push(v);
            pushed_sum.fetch_add(v);
          } else {
            const auto r = s.pop();
            if (r.ok) {
              popped_sum.fetch_add(r.value);
              popped_n.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& w : ws) w.join();
    // Drain the remainder; pushed and popped values must balance.
    while (true) {
      const auto r = s.pop();
      if (!r.ok) break;
      popped_sum.fetch_add(r.value);
      popped_n.fetch_add(1);
    }
    EXPECT_EQ(pushed_sum.load(), popped_sum.load()) << "elim=" << elim;
  }
}

TEST(Exchanger, PairsTwoThreads) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbExchanger ex;
  repro::ds::DequeueResult r1, r2;
  std::thread a([&] {
    while (!r1.ok) r1 = ex.exchange(111, 1024);
  });
  std::thread b([&] {
    while (!r2.ok) r2 = ex.exchange(222, 1024);
  });
  a.join();
  b.join();
  EXPECT_EQ(r1.value, 222u);
  EXPECT_EQ(r2.value, 111u);
}

TEST(Exchanger, TimesOutAlone) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbExchanger ex;
  const auto r = ex.exchange(7, 16);
  EXPECT_FALSE(r.ok);
}

}  // namespace
