// Detectable-recovery semantics of the shared announcement API: after
// any completed operation, the owning thread's descriptor holds the
// operation and its response; an operation that never committed (the
// crash model) is reported as incomplete.
#include <gtest/gtest.h>

#include <cstdint>

#include "repro/ds/detectable.hpp"
#include "repro/ds/dt_list.hpp"
#include "repro/ds/isb_list.hpp"
#include "repro/ds/isb_queue.hpp"
#include "repro/ds/policies.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::ds::AnnouncementBoard;
using repro::ds::DetectableOp;
using repro::ds::DtList;
using repro::ds::IsbList;
using repro::ds::IsbQueue;
using repro::ds::OpKind;
using repro::ds::PersistProfile;
using repro::ds::thread_slot;

TEST(Detectable, CompletedInsertIsRecoverable) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbList list;
  ASSERT_TRUE(list.insert(42));
  const auto rec = list.recover(thread_slot());
  EXPECT_EQ(rec.kind, OpKind::insert);
  EXPECT_EQ(rec.key, 42);
  EXPECT_TRUE(rec.completed);
  EXPECT_TRUE(rec.ok);
}

TEST(Detectable, FailedOperationRecoversItsResponse) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbList list;
  ASSERT_TRUE(list.insert(7));
  ASSERT_FALSE(list.insert(7));  // duplicate
  const auto rec = list.recover(thread_slot());
  EXPECT_EQ(rec.kind, OpKind::insert);
  EXPECT_TRUE(rec.completed);
  EXPECT_FALSE(rec.ok);
}

TEST(Detectable, DequeueRecoversValue) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbQueue q;
  q.enqueue(777);
  const auto r = q.dequeue();
  ASSERT_TRUE(r.ok);
  const auto rec = q.recover(thread_slot());
  EXPECT_EQ(rec.kind, OpKind::dequeue);
  EXPECT_TRUE(rec.completed);
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.result, 777u);
}

TEST(Detectable, FullValueSpaceSurvivesRecovery) {
  // Regression: the descriptor must preserve all 64 value bits — a
  // packed (value << 1 | ok) encoding would truncate bit 63.
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  constexpr std::uint64_t kBig = (1ull << 63) | 0xDEADBEEFull;
  IsbQueue q;
  q.enqueue(kBig);
  const auto r = q.dequeue();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.value, kBig);
  const auto rec = q.recover(thread_slot());
  EXPECT_TRUE(rec.completed);
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.result, kBig);
}

TEST(Detectable, UncommittedOpReportsIncomplete) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  AnnouncementBoard board;
  {
    // Announce and "crash" before commit.
    DetectableOp op(board, OpKind::erase, 13, PersistProfile::general);
    EXPECT_FALSE(op.committed());
  }
  const auto rec = board.recover(thread_slot());
  EXPECT_EQ(rec.kind, OpKind::erase);
  EXPECT_EQ(rec.key, 13);
  EXPECT_FALSE(rec.completed);
}

TEST(Detectable, SequenceNumberDistinguishesOperations) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  DtList list;
  ASSERT_TRUE(list.insert(1));
  const auto first = list.recover(thread_slot());
  ASSERT_TRUE(list.erase(1));
  const auto second = list.recover(thread_slot());
  EXPECT_EQ(second.seq, first.seq + 1);
  EXPECT_EQ(second.kind, OpKind::erase);
}

}  // namespace
