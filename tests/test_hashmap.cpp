// Harris-Michael hash map: semantics across buckets, collision-heavy
// small-directory stress (the TSan target — two buckets force every
// thread through the same segments), detectable recovery after node
// recycling, and the crash-engine integration (deterministic
// {seed, crash_point} replay + family fuzz sweeps).  The corpus entry
// replayed by test_corpus.cpp ("Isb-HashMap" in regressions.jsonl)
// pins the same triple bit-for-bit forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "repro/ds/hm_hashtable.hpp"
#include "repro/harness/crashfuzz.hpp"
#include "repro/harness/registry.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::ds::DtHashMap;
using repro::ds::HarrisHashMap;
using repro::ds::IsbHashMap;
using repro::ds::OpKind;
using repro::ds::PersistProfile;
using repro::ds::thread_slot;
using repro::harness::AlgoEntry;
using repro::harness::CrashPlan;
using repro::harness::FuzzReport;
using repro::harness::Registry;

IsbHashMap::Config cfg(int bucket_bits,
                       PersistProfile p = PersistProfile::general) {
  IsbHashMap::Config c;
  c.profile = p;
  c.bucket_bits = bucket_bits;
  return c;
}

template <typename Map>
void check_against_reference(Map& m, unsigned seed, std::int64_t range,
                             int ops) {
  std::mt19937 rng(seed);
  std::set<std::int64_t> ref;
  for (int i = 0; i < ops; ++i) {
    const std::int64_t k =
        1 + static_cast<std::int64_t>(rng() % static_cast<unsigned>(range));
    switch (rng() % 3) {
      case 0:
        EXPECT_EQ(m.insert(k), ref.insert(k).second) << "key " << k;
        break;
      case 1:
        EXPECT_EQ(m.erase(k), ref.erase(k) > 0) << "key " << k;
        break;
      default:
        EXPECT_EQ(m.find(k), ref.count(k) > 0) << "key " << k;
        break;
    }
  }
}

TEST(Hashmap, BasicSemanticsSpanBuckets) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbHashMap m(cfg(4));  // 16 buckets: the keys below hit several
  EXPECT_EQ(m.bucket_count(), 16u);
  // Widely-spread keys (different buckets) and near keys (hash
  // neighbours are NOT key neighbours) behave like one logical set.
  const std::int64_t keys[] = {1, 2, 3, 1'000'003, 999'999'937,
                               1'000'000'000'039};
  for (std::int64_t k : keys) {
    EXPECT_FALSE(m.find(k)) << k;
    EXPECT_TRUE(m.insert(k)) << k;
    EXPECT_FALSE(m.insert(k)) << k;  // duplicate across the whole map
  }
  for (std::int64_t k : keys) EXPECT_TRUE(m.find(k)) << k;
  EXPECT_EQ(m.size_slow(), 6u);
  EXPECT_TRUE(m.erase(keys[3]));
  EXPECT_FALSE(m.erase(keys[3]));
  EXPECT_FALSE(m.find(keys[3]));
  EXPECT_TRUE(m.insert(keys[3]));  // re-insert after erase
  EXPECT_EQ(m.size_slow(), 6u);
}

TEST(Hashmap, MatchesReferenceSetAcrossBucketCounts) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  // bucket_bits 0 degenerates to the flat list; 6 spreads 64 keys at
  // ~1 per bucket; both must be indistinguishable from std::set.
  for (int bits : {0, 2, 6}) {
    IsbHashMap m(cfg(bits));
    check_against_reference(m, 42u + static_cast<unsigned>(bits), 64,
                            4000);
  }
  DtHashMap dt(PersistProfile::optimized, 3);
  check_against_reference(dt, 7u, 64, 4000);
  HarrisHashMap vol(3);
  check_against_reference(vol, 8u, 64, 4000);
}

// The TSan stress: two buckets, eight threads, every operation
// contends on the same two Harris segments — marked-chain snips,
// helping, and retirement race exactly like the flat list but with the
// shared-tail topology in play.
TEST(Hashmap, CollisionHeavyTwoBucketChaos) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbHashMap m(cfg(1));
  constexpr int kThreads = 8;
  constexpr std::int64_t kRange = 128;
  std::vector<std::thread> ws;
  for (int t = 0; t < kThreads; ++t) {
    ws.emplace_back([&m, t] {
      std::mt19937 rng(1234u + static_cast<unsigned>(t));
      for (int i = 0; i < 20000; ++i) {
        const std::int64_t k =
            1 + static_cast<std::int64_t>(rng() % kRange);
        switch (rng() % 3) {
          case 0: m.insert(k); break;
          case 1: m.erase(k); break;
          default: m.find(k); break;
        }
      }
    });
  }
  for (auto& w : ws) w.join();
  for (std::int64_t k = 1; k <= kRange; ++k) {
    if (m.find(k)) {
      EXPECT_FALSE(m.insert(k)) << "key " << k;
      EXPECT_TRUE(m.erase(k)) << "key " << k;
    } else {
      EXPECT_FALSE(m.erase(k)) << "key " << k;
      EXPECT_TRUE(m.insert(k)) << "key " << k;
    }
  }
}

// Threads own disjoint key ranges scattered over many buckets.
TEST(Hashmap, DisjointThreadRanges) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbHashMap m(cfg(5));
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 512;
  std::vector<std::thread> ws;
  for (int t = 0; t < kThreads; ++t) {
    ws.emplace_back([&m, t] {
      const std::int64_t base = t * kPerThread * 2;
      for (std::int64_t k = 0; k < kPerThread; ++k) {
        ASSERT_TRUE(m.insert(base + k));
      }
      for (std::int64_t k = 0; k < kPerThread; k += 2) {
        ASSERT_TRUE(m.erase(base + k));
      }
    });
  }
  for (auto& w : ws) w.join();
  for (int t = 0; t < kThreads; ++t) {
    const std::int64_t base = t * kPerThread * 2;
    for (std::int64_t k = 0; k < kPerThread; ++k) {
      EXPECT_EQ(m.find(base + k), k % 2 == 1) << "key " << base + k;
    }
  }
}

TEST(Hashmap, DurableWalkConcatenatesBuckets) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbHashMap m(cfg(3));
  std::set<std::int64_t> expect;
  for (std::int64_t k = 1; k <= 100; ++k) {
    m.insert(k);
    expect.insert(k);
  }
  for (std::int64_t k = 1; k <= 100; k += 3) {
    m.erase(k);
    expect.erase(k);
  }
  std::vector<std::int64_t> walked;
  ASSERT_TRUE(m.snapshot_keys(walked));
  // Bucket order, not key order — consumers sort; so do we.
  std::sort(walked.begin(), walked.end());
  EXPECT_EQ(std::vector<std::int64_t>(expect.begin(), expect.end()),
            walked);
  // The walk is deterministic: the chain fuzzer's idempotence re-walk
  // compares raw vectors.
  std::vector<std::int64_t> again;
  ASSERT_TRUE(m.snapshot_keys(again));
  std::vector<std::int64_t> walked2;
  ASSERT_TRUE(m.snapshot_keys(walked2));
  EXPECT_EQ(again, walked2);
}

// Descriptor recovery stays truthful after the map's nodes have been
// retired and recycled through the pool many times over (the board is
// never recycled; only list cells are).
TEST(Hashmap, RecoverAfterRecycle) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  IsbHashMap m(cfg(2));
  for (int round = 0; round < 200; ++round) {
    for (std::int64_t k = 1; k <= 32; ++k) ASSERT_TRUE(m.insert(k));
    for (std::int64_t k = 1; k <= 32; ++k) ASSERT_TRUE(m.erase(k));
  }
  ASSERT_TRUE(m.insert(7));
  auto rec = m.recover(thread_slot());
  EXPECT_EQ(rec.kind, OpKind::insert);
  EXPECT_EQ(rec.key, 7);
  EXPECT_TRUE(rec.completed);
  EXPECT_TRUE(rec.ok);
  ASSERT_FALSE(m.erase(8));  // failed op: response still recovered
  rec = m.recover(thread_slot());
  EXPECT_EQ(rec.kind, OpKind::erase);
  EXPECT_EQ(rec.key, 8);
  EXPECT_TRUE(rec.completed);
  EXPECT_FALSE(rec.ok);
}

// ---------------------------------------------------------------------
// Crash-engine integration
// ---------------------------------------------------------------------

const AlgoEntry& algo(const char* name) {
  const AlgoEntry* e = Registry::instance().find(name);
  EXPECT_NE(e, nullptr) << name;
  return *e;
}

CrashPlan quick_plan(int points) {
  CrashPlan p;
  p.seed = 0xFACADEull;
  p.points = points;
  return p;
}

TEST(Hashmap, FuzzReplayOfSeedAndCrashPointIsDeterministic) {
  const AlgoEntry& hm = algo("Isb-HashMap");
  const CrashPlan plan = quick_plan(0);
  FuzzReport a, b;
  repro::harness::fuzz_one(hm, plan, /*iter_seed=*/0x4A5BA11ull,
                           /*crash_point=*/41, 0, a);
  repro::harness::fuzz_one(hm, plan, 0x4A5BA11ull, 41, 0, b);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(a.crashes, 1);
}

// Every hashmap variant survives a quick fuzz budget; the CI fuzz jobs
// run the full budgets through crash_recovery's trait:detectable
// selector, which now sweeps these automatically.
TEST(Hashmap, DetectableVariantsSurviveFuzzing) {
  for (const char* name :
       {"Isb-HashMap", "Isb-HashMap-Opt", "DT-HashMap"}) {
    const FuzzReport rep =
        repro::harness::fuzz_structure(algo(name), quick_plan(150));
    EXPECT_EQ(rep.violations, 0)
        << name << ": "
        << (rep.failures.empty() ? "?" : rep.failures.front().what);
    EXPECT_GT(rep.crashes, 0) << name;
    EXPECT_EQ(rep.points, 150) << name;
  }
}

}  // namespace
