// The experiment-engine API: registry lookup and trait filtering, grid
// expansion of known specs, golden CSV / JSON-lines sink output, the
// Zipfian picker's skew, and the crash-recovery scenario's
// detectability guarantee (every interrupted operation is reported by
// recover() as either completed-with-response or not-applied).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "repro/harness/experiment.hpp"
#include "repro/harness/registry.hpp"
#include "repro/harness/sinks.hpp"
#include "repro/harness/workload.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using namespace repro::harness;

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, FindsPaperNames) {
  const Registry& reg = Registry::instance();
  const AlgoEntry* isb = reg.find("Isb");
  ASSERT_NE(isb, nullptr);
  EXPECT_EQ(isb->kind, Kind::set);
  EXPECT_TRUE(isb->has_trait("detectable"));
  EXPECT_TRUE(isb->has_trait("paper-list"));
  EXPECT_TRUE(isb->has_trait("set"));  // the kind name counts as a trait

  const AlgoEntry* q = reg.find("Isb-Queue");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, Kind::queue);

  EXPECT_EQ(reg.find("No-Such-Algo"), nullptr);
}

TEST(Registry, TraitSelectionMatchesPaperSeries) {
  const Registry& reg = Registry::instance();
  const auto lists = reg.select("trait:paper-list");
  ASSERT_EQ(lists.size(), 5u);  // Isb, Isb-Opt, Capsules, Capsules-Opt, DT-Opt
  for (const AlgoEntry* e : lists) EXPECT_EQ(e->kind, Kind::set);

  const auto queues = reg.select("trait:paper-queue");
  EXPECT_EQ(queues.size(), 4u);

  EXPECT_TRUE(reg.select("trait:no-such-trait").empty());
}

TEST(Registry, GlobSelection) {
  const Registry& reg = Registry::instance();
  const auto isbs = reg.select("Isb*");
  // Isb, Isb-Opt, Isb-noROopt, Isb-Opt-noROopt, Isb-HashMap,
  // Isb-HashMap-Opt, Isb-Queue, Isb-Exchanger, Isb-leak (the
  // no-reclaim ablation), plus the reclaimer matrix's Isb-List-HP/POP
  // and Isb-Queue-HP/POP
  EXPECT_EQ(isbs.size(), 13u);
  // Isb-Queue, Log-Queue, MS-Queue
  EXPECT_EQ(reg.select("*-Queue").size(), 3u);
  EXPECT_TRUE(glob_match("*Queue", "MS-Queue"));
  EXPECT_FALSE(glob_match("*Queue", "MS-Queued"));
}

TEST(Registry, KindSelectorMatchesKindName) {
  const Registry& reg = Registry::instance();
  const auto sets = reg.select("kind:set");
  EXPECT_FALSE(sets.empty());
  for (const AlgoEntry* e : sets) EXPECT_EQ(e->kind, Kind::set);
  const auto queues = reg.select("kind:queue");
  EXPECT_FALSE(queues.empty());
  for (const AlgoEntry* e : queues) EXPECT_EQ(e->kind, Kind::queue);
  EXPECT_TRUE(reg.select("kind:no-such-kind").empty());
  // `kind:` filters the Kind enum; `trait:` counts the kind name among
  // the traits too (has_trait), so trait:set is a superset of kind:set
  // only in spelling — they agree on membership.
  EXPECT_EQ(reg.select("trait:set").size(), sets.size());
}

TEST(Registry, AmpersandComposesAtomsConjunctively) {
  const Registry& reg = Registry::instance();
  // All six hash maps (5 detectable + the volatile baseline)…
  const auto all_hm = reg.select("trait:hashmap");
  ASSERT_EQ(all_hm.size(), 6u);
  // …every one of them is a set, so kind:set must not narrow it…
  EXPECT_EQ(reg.select("trait:hashmap&kind:set").size(), 6u);
  // …but trait:detectable must drop the Harris baseline.
  const auto det_hm = reg.select("trait:detectable&trait:hashmap");
  ASSERT_EQ(det_hm.size(), 5u);
  for (const AlgoEntry* e : det_hm) {
    EXPECT_TRUE(e->has_trait("detectable")) << e->name;
    EXPECT_TRUE(e->has_trait("hashmap")) << e->name;
  }
  // Globs compose too, and an unsatisfiable conjunction is empty.
  EXPECT_EQ(reg.select("Isb*&trait:hashmap").size(), 2u);
  EXPECT_TRUE(reg.select("trait:hashmap&kind:queue").empty());
}

TEST(Registry, SelectAllDeduplicatesPreservingOrder) {
  const Registry& reg = Registry::instance();
  const auto sel = reg.select_all({"Isb", "trait:paper-list"});
  ASSERT_EQ(sel.size(), 5u);
  EXPECT_EQ(sel[0]->name, "Isb");
}

TEST(Registry, SelectAllDedupsHeavilyOverlappingSelectors) {
  // Every selector here re-matches entries earlier ones already kept
  // (the worst case for the old quadratic every-entry-against-every-
  // kept scan, now a pointer-set membership check): the union must
  // contain each entry exactly once, led by the first selector's
  // matches in registry order.
  const Registry& reg = Registry::instance();
  const auto sel = reg.select_all({"trait:detectable", "Isb*", "Isb",
                                   "trait:set", "trait:detectable",
                                   "*-Queue", "trait:queue"});
  std::vector<const AlgoEntry*> uniq(sel.begin(), sel.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_EQ(uniq.size(), sel.size()) << "duplicates in select_all";
  // Order: the first selector's matches lead, in registry order.
  const auto first = reg.select("trait:detectable");
  ASSERT_LE(first.size(), sel.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(sel[i], first[i]) << i;
  }
  // Completeness: everything any selector matched is present once.
  for (const char* s : {"Isb*", "*-Queue", "trait:set"}) {
    for (const AlgoEntry* e : reg.select(s)) {
      EXPECT_EQ(std::count(sel.begin(), sel.end(), e), 1) << e->name;
    }
  }
}

TEST(Registry, DuplicateRegistrationIsIgnored) {
  Registry& reg = Registry::instance();
  const auto before = reg.entries().size();
  EXPECT_FALSE(reg.add({"Isb", Kind::set, {}, nullptr}));
  EXPECT_EQ(reg.entries().size(), before);
}

TEST(Registry, FactoriesProduceWorkingStructures) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  auto s = Registry::instance().find("Isb")->make();
  auto* set = dynamic_cast<SetIface*>(s.get());
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->detectable());
  EXPECT_TRUE(set->insert(5));
  EXPECT_TRUE(set->find(5));

  auto v = Registry::instance().find("Harris-LL")->make();
  EXPECT_FALSE(v->detectable());
}

// ---------------------------------------------------------------------
// Grid expansion
// ---------------------------------------------------------------------

TEST(Expand, SetGridIsStructuresTimesRangesTimesMixesTimesThreads) {
  ExperimentSpec spec;
  spec.structures = {"trait:paper-list"};
  spec.key_ranges = {500, 1500};
  spec.mixes = {kReadIntensive, kUpdateIntensive};
  spec.threads = {1, 2};
  EXPECT_EQ(expand(spec).size(), 5u * 2u * 2u * 2u);
}

TEST(Expand, NonSetKindsIgnoreRangeAndMixAxes) {
  ExperimentSpec spec;
  spec.structures = {"trait:paper-queue", "MS-Queue"};
  spec.key_ranges = {500, 1500};  // must not multiply queue points
  spec.threads = {1};
  const auto points = expand(spec);
  EXPECT_EQ(points.size(), 5u);
  for (const auto& p : points) EXPECT_FALSE(p.has_mix);
}

TEST(Expand, ExchangerNeedsPairs) {
  ExperimentSpec spec;
  spec.structures = {"Isb-Exchanger"};
  spec.threads = {1, 2, 4};
  EXPECT_EQ(expand(spec).size(), 2u);  // threads:1 dropped
}

TEST(Expand, CrashScheduleKeepsOnlyDetectableSetsAndQueues) {
  ExperimentSpec spec;
  spec.structures = {"trait:paper-list", "trait:paper-queue",
                     "DT-Treiber"};
  spec.threads = {2};
  spec.crash_after_ms = 10;
  const auto points = expand(spec);
  // paper-list: Isb, Isb-Opt, DT-Opt (Capsules* lack recover());
  // paper-queue: Isb-Queue only; the stack kind is not modelled.
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.algo->has_trait("detectable"));
  }
}

TEST(Expand, CrashFuzzExpandsOnePointPerDetectableStructure) {
  ExperimentSpec spec;
  spec.structures = {"trait:paper-list"};
  spec.threads = {1, 2, 4};    // ignored: the fuzzer is single-threaded
  spec.key_ranges = {10, 20};  // ignored: it drives its own workload
  spec.crash_plan.points = 10;
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 3u);  // Isb, Isb-Opt, DT-Opt
  for (const auto& p : points) {
    EXPECT_EQ(p.threads, 1);
    EXPECT_EQ(p.mode, repro::pmem::Mode::shadow);
    EXPECT_TRUE(p.algo->has_trait("detectable"));
  }
}

TEST(Expand, UnmatchedSelectorCountsAsSpecError) {
  ExperimentSpec spec;
  spec.figure = "typo-test";
  spec.structures = {"Isb", "No-Such-Algo"};
  spec.threads = {1};
  const int before = spec_errors();
  const auto points = expand(spec);
  EXPECT_EQ(points.size(), 1u);  // the valid selector still runs
  EXPECT_EQ(spec_errors(), before + 1);
}

TEST(Expand, SelectedStructuresAppliesTheCrashFilter) {
  ExperimentSpec spec;
  spec.structures = {"trait:paper-list"};
  spec.crash_after_ms = 10;
  const auto algos = selected_structures(spec);
  ASSERT_EQ(algos.size(), 3u);  // Capsules* lack recover()
  spec.crash_after_ms = 0;
  EXPECT_EQ(selected_structures(spec).size(), 5u);
}

TEST(Expand, PointNamesFollowTheFilterShape) {
  ExperimentSpec spec;
  spec.figure = "figX";
  spec.structures = {"Isb", "Isb-Queue"};
  spec.key_ranges = {500};
  spec.mixes = {kReadIntensive};
  spec.threads = {2};
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(point_name(spec, points[0]),
            "figX/Isb/500/read-intensive/threads:2");
  EXPECT_EQ(point_name(spec, points[1]), "figX/Isb-Queue/threads:2");
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

ResultRow golden_row() {
  ResultRow row;
  row.figure = "figX";
  row.algo = "Algo";
  row.scenario = "range=500 read-intensive";
  row.mode = "count_only";
  row.dist = "uniform";
  row.key_range = 500;
  row.mix = "read-intensive";
  row.run.total_ops = 1000;
  row.run.seconds = 0.5;
  row.run.ops_per_sec = 2000;
  row.run.flushes_per_op = 2.25;
  row.run.barriers_per_op = 1.5;
  row.run.psyncs_per_op = 1;
  row.run.coalesced_pwb_per_op = 0.25;
  row.run.allocs_per_op = 0.75;
  row.run.retired_per_op = 0.5;
  row.run.reuse_ratio = 0.95;
  row.run.threads = 2;
  row.run.point_index = 7;
  row.seed = 42;
  return row;
}

TEST(Sinks, CsvGolden) {
  std::ostringstream os;
  CsvSink sink(os);
  sink.row(golden_row());
  EXPECT_EQ(
      os.str(),
      "point_index,figure,algo,mode,dist,key_range,mix,threads,seconds,"
      "total_ops,ops_per_sec,pwb_per_op,pbarrier_per_op,psync_per_op,"
      "coalesced_pwb_per_op,allocs_per_op,retired_per_op,reuse_ratio,"
      "recovery_us,seed,crash_points,crash_violations,crash_scenario,"
      "reclaimer\n"
      "7,figX,Algo,count_only,uniform,500,read-intensive,2,0.5,1000,2000,"
      "2.25,1.5,1,0.25,0.75,0.5,0.95,,42,,,,\n");
}

TEST(Sinks, CsvEmitsCrashScenarioColumn) {
  std::ostringstream os;
  CsvSink sink(os);
  ResultRow row = golden_row();
  row.crash_scenario = "repeated-crash";
  sink.row(row);
  const std::string got = os.str();
  EXPECT_NE(got.find(",,repeated-crash,\n"), std::string::npos) << got;
}

TEST(Sinks, CsvEmitsReclaimerColumn) {
  std::ostringstream os;
  CsvSink sink(os);
  ResultRow row = golden_row();
  row.reclaimer = "hp";
  sink.row(row);
  EXPECT_NE(os.str().find(",,,hp\n"), std::string::npos) << os.str();
}

TEST(Sinks, JsonlIncludesReclaimerWhenSet) {
  std::ostringstream os;
  JsonlSink sink(os);
  ResultRow row = golden_row();
  row.reclaimer = "pop";
  sink.row(row);
  EXPECT_NE(os.str().find("\"reclaimer\":\"pop\"}"),
            std::string::npos)
      << os.str();
}

TEST(Sinks, JsonlGolden) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.row(golden_row());
  EXPECT_EQ(
      os.str(),
      "{\"point_index\":7,\"figure\":\"figX\",\"algo\":\"Algo\","
      "\"mode\":\"count_only\",\"dist\":\"uniform\",\"key_range\":500,"
      "\"mix\":\"read-intensive\",\"threads\":2,\"seconds\":0.5,"
      "\"total_ops\":1000,\"ops_per_sec\":2000,\"pwb_per_op\":2.25,"
      "\"pbarrier_per_op\":1.5,\"psync_per_op\":1,"
      "\"coalesced_pwb_per_op\":0.25,\"allocs_per_op\":0.75,"
      "\"retired_per_op\":0.5,\"reuse_ratio\":0.95,\"seed\":42}\n");
}

TEST(Sinks, JsonlIncludesRecoveryLatencyWhenSet) {
  std::ostringstream os;
  JsonlSink sink(os);
  ResultRow row = golden_row();
  row.recovery_us = 12.5;
  sink.row(row);
  EXPECT_NE(os.str().find("\"recovery_us\":12.5}"), std::string::npos);
}

TEST(Sinks, JsonlIncludesCrashScenarioWhenSet) {
  std::ostringstream os;
  JsonlSink sink(os);
  ResultRow row = golden_row();
  row.crash_scenario = "thread-death";
  sink.row(row);
  EXPECT_NE(os.str().find("\"crash_scenario\":\"thread-death\"}"),
            std::string::npos)
      << os.str();
}

TEST(Sinks, RunSpecStreamsOneRowPerPoint) {
  setenv("REPRO_BENCH_MS", "5", 1);
  std::ostringstream os;
  SinkSet sinks;
  sinks.add(std::make_unique<JsonlSink>(os));
  ExperimentSpec spec;
  spec.figure = "unit";
  spec.structures = {"Harris-LL"};
  spec.key_ranges = {64};
  spec.mixes = {kReadIntensive};
  spec.threads = {1, 2};
  run_spec(spec, sinks);
  unsetenv("REPRO_BENCH_MS");
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.find("\"algo\":\"Harris-LL\""), std::string::npos);
  EXPECT_NE(out.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(out.find("\"figure\":\"unit\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Zipfian key distribution
// ---------------------------------------------------------------------

TEST(Zipfian, SkewsTowardLowKeys) {
  const Zipfian z(1000, 0.99);
  Rng rng(123);
  constexpr int kDraws = 200000;
  int low_decile = 0;
  int first = 0;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = z.next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    low_decile += v <= 100;
    first += v == 1;
  }
  // Under uniform keys the low decile would get ~10% and key 1 ~0.1%;
  // Zipf(0.99) concentrates ~69% and ~13% there analytically.
  EXPECT_GT(low_decile, kDraws * 55 / 100);
  EXPECT_GT(first, kDraws * 8 / 100);
}

TEST(Zipfian, OutOfRangeThetaIsClamped) {
  // theta = 1 would divide by zero in the Gray et al. form; it is
  // clamped to the strongest supported skew instead.
  const Zipfian z(1000, 1.0);
  EXPECT_DOUBLE_EQ(z.theta(), 0.999);
  Rng rng(99);
  int low_decile = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = z.next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    low_decile += v <= 100;
  }
  EXPECT_GT(low_decile, 20000 * 55 / 100);
  EXPECT_DOUBLE_EQ(Zipfian(1000, -2.0).theta(), 0.001);
}

TEST(Zipfian, WorkloadConstructorWiresTheDistribution) {
  const Workload w(1000, kReadIntensive, KeyDist::zipfian);
  Rng rng(7);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto k = w.pick_key(rng);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 1000);
    low += k <= 100;
  }
  EXPECT_GT(low, 10000 * 55 / 100);

  // Aggregate initialisation stays uniform.
  const Workload u{1000, kReadIntensive};
  EXPECT_EQ(u.dist, KeyDist::uniform);
}

// ---------------------------------------------------------------------
// Crash-recovery scenario
// ---------------------------------------------------------------------

TEST(Crash, EveryInterruptedListOpIsDetected) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  ExperimentSpec spec;
  spec.figure = "crash-unit";
  spec.structures = {"Isb"};
  spec.key_ranges = {128};
  spec.mixes = {kUpdateIntensive};
  spec.threads = {4};
  spec.crash_after_ms = 30;
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  const CrashReport rep = run_crash_point(spec, points[0]);
  EXPECT_GT(rep.run.total_ops, 0u);
  // Detectability: every thread's last operation recovered
  // completed-with-response, every in-flight one reported not-applied.
  // (A worker that was never scheduled inside the crash window — e.g.
  // under TSan on a starved CI host — has nothing to recover, so the
  // bound is >= 1 rather than == threads.)
  EXPECT_EQ(rep.mismatches, 0);
  EXPECT_GE(rep.completed, 1);
  EXPECT_EQ(rep.not_applied, rep.completed);
  EXPECT_GE(rep.recovery_us, 0.0);
}

TEST(Crash, EveryInterruptedQueueOpIsDetected) {
  repro::pmem::ModeGuard guard(repro::pmem::Mode::count_only);
  ExperimentSpec spec;
  spec.figure = "crash-unit-q";
  spec.structures = {"Isb-Queue"};
  spec.threads = {4};
  spec.queue_prefill = 256;
  spec.crash_after_ms = 30;
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  const CrashReport rep = run_crash_point(spec, points[0]);
  EXPECT_GT(rep.run.total_ops, 0u);
  EXPECT_EQ(rep.mismatches, 0);
  EXPECT_GE(rep.completed, 1);
  EXPECT_EQ(rep.not_applied, rep.completed);
}

TEST(Crash, FuzzPointRunsCleanAndStampsTheRow) {
  ExperimentSpec spec;
  spec.figure = "fuzz-unit";
  spec.structures = {"Isb"};
  spec.crash_plan.points = 40;
  spec.crash_plan.seed = 7;
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  const int before = crash_failures();
  const ResultRow row = run_point(spec, points[0]);
  EXPECT_EQ(crash_failures(), before);  // no violations
  EXPECT_EQ(row.crash_points, 40);
  EXPECT_EQ(row.crash_violations, 0);
  EXPECT_EQ(row.seed, 7u);  // the crash plan's seed stamps the row
  EXPECT_GT(row.run.total_ops, 0u);
}

TEST(Crash, RunPointEmitsRecoveryLatency) {
  ExperimentSpec spec;
  spec.figure = "crash-unit-row";
  spec.structures = {"Isb"};
  spec.key_ranges = {64};
  spec.mixes = {kUpdateIntensive};
  spec.threads = {2};
  spec.modes = {repro::pmem::Mode::count_only};
  spec.crash_after_ms = 10;
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 1u);
  const int failures_before = crash_failures();
  const ResultRow row = run_point(spec, points[0]);
  EXPECT_GE(row.recovery_us, 0.0);
  EXPECT_EQ(crash_failures(), failures_before);  // no violations
}

}  // namespace
