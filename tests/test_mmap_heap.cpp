// Unit tests for the mmap-backed persistent heap: fixed-base
// reattach, the root directory's publish protocol, the pool slab
// source, and the Mode::mmap persistence-instruction accounting.
//
// Every test attaches a real file under /tmp and skips (not fails)
// when the fixed-base mapping is unavailable in this environment —
// that is attach()'s documented contract.  Reattach tests reuse the
// SAME file from the SAME process: the heap maps at the base recorded
// in the header, so pointers (and any pool-carved cells) revalidate.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "repro/mem/pool.hpp"
#include "repro/pmem/mmap_heap.hpp"
#include "repro/pmem/persist.hpp"

namespace {

using repro::pmem::MmapHeap;

std::string test_heap_path() {
  return "/tmp/repro_mmap_heap_test." + std::to_string(::getpid()) +
         ".pmem";
}

// Attach-or-skip plus teardown; detaches but keeps the file so a test
// can reattach, removing it only at scope exit.
class HeapGuard {
 public:
  explicit HeapGuard(std::size_t bytes = MmapHeap::kDefaultBytes)
      : path_(test_heap_path()) {
    ::unlink(path_.c_str());
    heap_ = MmapHeap::attach(path_, bytes);
  }
  ~HeapGuard() {
    MmapHeap::detach();
    ::unlink(path_.c_str());
  }
  MmapHeap* reattach(std::size_t bytes = MmapHeap::kDefaultBytes) {
    MmapHeap::detach();
    heap_ = MmapHeap::attach(path_, bytes);
    return heap_;
  }
  MmapHeap* get() const { return heap_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  MmapHeap* heap_ = nullptr;
};

#define SKIP_IF_NO_HEAP(guard)                                         \
  if ((guard).get() == nullptr) {                                      \
    GTEST_SKIP() << "fixed-base mmap unavailable in this environment"; \
  }

TEST(MmapHeap, CreateWriteDetachReattachContentsIntact) {
  HeapGuard g;
  SKIP_IF_NO_HEAP(g);
  MmapHeap* h = g.get();

  auto* words = static_cast<std::uint64_t*>(h->alloc(8 * sizeof(std::uint64_t)));
  ASSERT_NE(words, nullptr);
  const auto addr = reinterpret_cast<std::uintptr_t>(words);
  for (int i = 0; i < 8; ++i) {
    words[i] = 0xABCD'0000'0000'0000ull + static_cast<std::uint64_t>(i);
  }
  repro::pmem::persist_range_raw(words, 8 * sizeof(std::uint64_t));
  const std::uint64_t used = h->used_bytes();

  h = g.reattach();
  ASSERT_NE(h, nullptr) << "reattach of an existing heap file failed";
  EXPECT_EQ(h->header()->magic, MmapHeap::kMagic);
  EXPECT_EQ(h->used_bytes(), used) << "bump offset not durable";
  auto* again = reinterpret_cast<std::uint64_t*>(addr);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(again[i],
              0xABCD'0000'0000'0000ull + static_cast<std::uint64_t>(i));
  }
}

TEST(MmapHeap, SingleActiveHeapAndAllocExhaustion) {
  HeapGuard g(std::size_t{1} << 20);  // minimum file size
  SKIP_IF_NO_HEAP(g);
  MmapHeap* h = g.get();

  // Second attach while one is active is refused.
  EXPECT_EQ(MmapHeap::attach(g.path() + ".second"), nullptr);
  ::unlink((g.path() + ".second").c_str());

  // Exhaustion returns nullptr and never over-advances the bump.
  void* p = nullptr;
  int allocs = 0;
  while ((p = h->alloc(std::size_t{64} << 10)) != nullptr) {
    ++allocs;
    ASSERT_LT(allocs, 1024) << "1 MiB heap cannot hold this many slabs";
  }
  EXPECT_GT(allocs, 0);
  EXPECT_LE(h->used_bytes(), h->bytes());
}

struct RootBlob {
  std::uint64_t tag = 0x5EED;
  std::uint64_t payload[4] = {1, 2, 3, 4};
};

TEST(MmapHeap, RootIsIdempotentAndSurvivesReattach) {
  HeapGuard g;
  SKIP_IF_NO_HEAP(g);
  MmapHeap* h = g.get();

  EXPECT_EQ(h->find_root<RootBlob>("blob"), nullptr);
  RootBlob* a = h->root<RootBlob>("blob");
  ASSERT_NE(a, nullptr);
  a->payload[0] = 42;
  repro::pmem::persist_range_raw(a, sizeof(*a));

  // Same process: root() must return the same object, ctor not re-run.
  RootBlob* b = h->root<RootBlob>("blob");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->payload[0], 42u);

  // Fresh mapping of the same file: same address, same contents.
  h = g.reattach();
  ASSERT_NE(h, nullptr);
  RootBlob* c = h->find_root<RootBlob>("blob");
  ASSERT_EQ(c, a);
  EXPECT_EQ(c->tag, 0x5EEDu);
  EXPECT_EQ(c->payload[0], 42u);
}

TEST(MmapHeap, TornRootSlotIsReusedNotTrusted) {
  HeapGuard g;
  SKIP_IF_NO_HEAP(g);
  MmapHeap* h = g.get();

  RootBlob* a = h->root<RootBlob>("torn");
  ASSERT_NE(a, nullptr);

  // Emulate a creator killed between publishing the slot and
  // persisting the initialized flag.
  for (int i = 0; i < MmapHeap::kMaxRoots; ++i) {
    auto& s = h->header()->roots[i];
    if (std::strncmp(s.name, "torn", MmapHeap::kRootNameBytes) == 0) {
      s.initialized = 0;
    }
  }
  EXPECT_EQ(h->find_root<RootBlob>("torn"), nullptr)
      << "a torn slot must not be returned as a root";
  RootBlob* b = h->root<RootBlob>("torn");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->tag, 0x5EEDu) << "reused slot must re-run the ctor";
  EXPECT_NE(h->find_root<RootBlob>("torn"), nullptr);
}

// A node type used by no other test, so this pool's shards never mix
// volatile and mapped slabs across heap attach/detach cycles.
struct HeapTestNode {
  std::uint64_t key;
  HeapTestNode* next;
};

TEST(MmapHeap, PoolSlabsCarvedFromMappedArena) {
  HeapGuard g;
  SKIP_IF_NO_HEAP(g);
  MmapHeap* h = g.get();

  auto& pool = repro::mem::NodePool<HeapTestNode>::instance();
  const std::uint64_t used_before = h->used_bytes();
  std::vector<HeapTestNode*> nodes;
  for (int i = 0; i < 64; ++i) {
    nodes.push_back(pool.create());
    nodes.back()->key = static_cast<std::uint64_t>(i);
  }
  EXPECT_GT(pool.mapped_slab_count(), 0u)
      << "pool did not draw slabs from the attached heap";
  EXPECT_GT(h->used_bytes(), used_before);
  for (HeapTestNode* n : nodes) {
    // Mapped cells are inside the arena and registered with the
    // directory the durable walks consult.
    const auto a = reinterpret_cast<std::uintptr_t>(n);
    EXPECT_GE(a, h->base() + MmapHeap::kHeaderBytes);
    EXPECT_LT(a, h->base() + h->bytes());
    EXPECT_TRUE(repro::mem::SlabDirectory::instance().owns(n));
  }
  for (HeapTestNode* n : nodes) pool.destroy(n);
}

TEST(MmapHeap, ModeMmapCountsInstructionsAndRawPathDoesNot) {
  HeapGuard g;
  SKIP_IF_NO_HEAP(g);

  const auto saved = repro::pmem::mode();
  repro::pmem::set_mode(repro::pmem::Mode::mmap);
  repro::pmem::reset_counters();

  repro::pmem::persist<std::uint64_t> cell{0};
  cell.store(7);
  repro::pmem::flush(&cell);
  repro::pmem::fence();
  repro::pmem::psync();
  const auto c = repro::pmem::counters();
  EXPECT_EQ(c.flushes, 1u);
  EXPECT_EQ(c.fences, 1u);
  EXPECT_EQ(c.psyncs, 1u);

  // Heap metadata persistence is uncounted by design: kill-point
  // replay must not depend on allocator traffic.
  repro::pmem::persist_range_raw(&cell, sizeof(cell));
  const auto c2 = repro::pmem::counters();
  EXPECT_EQ(c2.flushes, 1u);
  EXPECT_EQ(c2.fences, 1u);
  repro::pmem::set_mode(saved);
}

}  // namespace
