// The concurrent crash-point fuzzer (crashfuzz.hpp's multi-threaded
// driver): every trait:detectable family survives fuzzing under the
// durable-linearizability checker, checker verdicts are a
// deterministic function of the recorded history, failing histories
// dump as parseable JSONL — and the mutation self-test: a build with
// REPRO_MUTATE_DROP_PREPUBLISH (msqueue_core's pre_publish elided)
// must be caught within 2000 points, while the unmutated build
// survives the full budget (REPRO_CONC_POINTS, default 2000 per
// family — the CI nightly raises it).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "repro/harness/crashfuzz.hpp"
#include "repro/harness/linearize.hpp"
#include "repro/harness/registry.hpp"

namespace {

using namespace repro;
using harness::AlgoEntry;
using harness::ConcurrentCrashPlan;
using harness::ConcurrentFuzzReport;

const AlgoEntry& algo(const char* name) {
  const AlgoEntry* e = harness::Registry::instance().find(name);
  EXPECT_NE(e, nullptr) << name;
  return *e;
}

ConcurrentCrashPlan quick_plan(int points) {
  ConcurrentCrashPlan p;
  p.seed = 0xFACADEull;
  p.points = points;
  return p;
}

int env_points(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  return fallback;
}

#ifndef REPRO_MUTATE_DROP_PREPUBLISH

// All trait:detectable families, quick budget (the deep budget runs
// below and in the nightly CI job).  Isb-leak is absent for the same
// reason as in test_crash_engine: it leaks by design and would trip
// the ASan leg; the CI concurrent-fuzz job still covers it.
TEST(ConcurrentFuzz, AllDetectableFamiliesSurvive) {
  for (const char* name :
       {"Isb", "Isb-Opt", "Isb-noROopt", "Isb-Opt-noROopt", "DT",
        "DT-Opt", "Isb-Queue", "Bst-Isb", "Bst-Isb-Opt", "DT-SkipList",
        "DT-Treiber", "DT-Elimination", "Isb-Exchanger"}) {
    const ConcurrentFuzzReport rep =
        harness::concurrent_fuzz_structure(algo(name), quick_plan(300));
    EXPECT_EQ(rep.violations, 0)
        << name << ": "
        << (rep.failures.empty() ? "?" : rep.failures.front().what);
    EXPECT_EQ(rep.points, 300) << name;
    EXPECT_GT(rep.crashes, 0) << name;
    EXPECT_GT(rep.total_ops, 0u) << name;
  }
}

// The deep unmutated direction of the mutation self-test: the queue
// whose pre_publish the mutated build elides must survive the full
// point budget when unmutated.  REPRO_CONC_POINTS scales it (CI
// nightly runs 20000); alongside AllDetectableFamiliesSurvive the
// default suite still crosses 2000 + 13*300 ≈ 6k points per run.
TEST(ConcurrentFuzz, UnmutatedQueueSurvivesTheFullBudget) {
  const int points = env_points("REPRO_CONC_POINTS", 2000);
  const ConcurrentFuzzReport rep = harness::concurrent_fuzz_structure(
      algo("Isb-Queue"), quick_plan(points));
  EXPECT_EQ(rep.violations, 0)
      << (rep.failures.empty() ? "?" : rep.failures.front().what);
  // Most points must actually crash, or the budget horizon is
  // mis-sized and the fuzz is testing nothing.
  EXPECT_GT(rep.crashes, points / 2);
}

// A crash iteration where the countdown outlives the workload still
// verifies plain concurrent linearizability; and a point that crashes
// produces a history whose JSONL dump parses back to the same checker
// input (the replay path README documents).
TEST(ConcurrentFuzz, NonCrashingPointStillChecksLinearizability) {
  ConcurrentCrashPlan plan = quick_plan(0);
  plan.max_events = 100000;  // far beyond the workload: never fires
  ConcurrentFuzzReport rep;
  harness::concurrent_fuzz_one(algo("Isb-Queue"), plan,
                               /*iter_seed=*/0xABCDEFull,
                               /*crash_point=*/0, 0, rep);
  EXPECT_EQ(rep.points, 1);
  EXPECT_EQ(rep.crashes, 0);
  EXPECT_EQ(rep.violations, 0);
  EXPECT_GT(rep.total_ops, 0u);
}

// Per-thread death: the armed instruction kills only the hitting
// worker; survivors run to completion, a fresh thread adopts the dead
// lane's slot and recovers it, and the merged history (dead lane's
// pending op upgraded per the adoption verdict) must linearize.
TEST(ConcurrentFuzz, AllDetectableFamiliesSurviveThreadDeath) {
  for (const char* name :
       {"Isb", "Isb-Opt", "DT", "DT-Opt", "Isb-Queue", "Bst-Isb",
        "DT-Treiber", "Isb-Exchanger"}) {
    ConcurrentCrashPlan plan = quick_plan(150);
    plan.scenario = harness::ScenarioKind::thread_death;
    const ConcurrentFuzzReport rep =
        harness::concurrent_fuzz_structure(algo(name), plan);
    EXPECT_EQ(rep.violations, 0)
        << name << ": "
        << (rep.failures.empty() ? "?" : rep.failures.front().what);
    EXPECT_EQ(rep.points, 150) << name;
    EXPECT_GT(rep.crashes, 0) << name;  // deaths count as crashes
  }
}

// Stalled-thread adversary: one worker parks at a persistence boundary
// across a full crash+recovery, resumes afterwards, and both the
// durable cut and the post-resume completion must stay consistent.
TEST(ConcurrentFuzz, AllDetectableFamiliesSurviveStalledThread) {
  for (const char* name :
       {"Isb", "Isb-Opt", "DT", "DT-Opt", "Isb-Queue", "Bst-Isb",
        "DT-Treiber", "Isb-Exchanger"}) {
    ConcurrentCrashPlan plan = quick_plan(150);
    plan.scenario = harness::ScenarioKind::stalled_thread;
    const ConcurrentFuzzReport rep =
        harness::concurrent_fuzz_structure(algo(name), plan);
    EXPECT_EQ(rep.violations, 0)
        << name << ": "
        << (rep.failures.empty() ? "?" : rep.failures.front().what);
    EXPECT_EQ(rep.points, 150) << name;
  }
}

// The adversarial scenarios floor the worker count at 2 (a
// single-thread plan cannot stage a survivor or a stalled bystander).
TEST(ConcurrentFuzz, AdversarialScenariosFloorThreadsAtTwo) {
  ConcurrentCrashPlan plan = quick_plan(30);
  plan.threads = 1;
  for (const auto scenario : {harness::ScenarioKind::thread_death,
                              harness::ScenarioKind::stalled_thread}) {
    plan.scenario = scenario;
    const ConcurrentFuzzReport rep =
        harness::concurrent_fuzz_structure(algo("Isb"), plan);
    EXPECT_EQ(rep.violations, 0)
        << (rep.failures.empty() ? "?" : rep.failures.front().what);
  }
}

// Checker verdicts are deterministic given the recorded history: the
// dumped failing history of a (deliberately corrupted) run re-checks
// to the identical verdict and state count, twice.
TEST(ConcurrentFuzz, DumpedHistoryRechecksDeterministically) {
  harness::HistoryRecorder rec(2, 4);
  const auto a = rec.invoke(0, ds::OpKind::enqueue, 101);
  rec.response(0, a, true, 101);
  const auto b = rec.invoke(0, ds::OpKind::enqueue, 102);
  rec.response(0, b, true, 102);
  const auto c = rec.invoke(1, ds::OpKind::dequeue, 0);
  rec.response(1, c, true, 102);  // non-FIFO: 101 was first
  rec.mark_crash();

  std::vector<harness::HistoryEvent> ev;
  ASSERT_TRUE(harness::parse_history_jsonl(rec.to_jsonl(), ev));
  const auto ops = harness::lin::ops_from_events(ev);
  harness::lin::Spec sp;
  sp.kind = harness::lin::Semantics::queue;
  const auto r1 = harness::lin::check(ops, sp);
  const auto r2 = harness::lin::check(ops, sp);
  EXPECT_EQ(r1.verdict, harness::lin::Verdict::violation);
  EXPECT_EQ(r2.verdict, r1.verdict);
  EXPECT_EQ(r2.states, r1.states);
  EXPECT_EQ(r2.what, r1.what);
}

#else  // REPRO_MUTATE_DROP_PREPUBLISH

// Mutated build: msqueue_core's enqueue no longer persists a node
// before publishing it, so a crashed iteration can leave a durable
// link to a node whose payload (and next pointer) rewind to stale
// pool garbage.  The concurrent fuzzer must notice well within 2000
// crash points — empirically the very first crashing point usually
// fails, via the durable-walk guard or a value nobody enqueued.
TEST(ConcurrentFuzz, DroppedPrePublishIsDetectedWithin2000Points) {
  const AlgoEntry& q = algo("Isb-Queue");
  const ConcurrentCrashPlan plan = quick_plan(2000);
  ConcurrentFuzzReport rep;
  const std::uint64_t base = plan.effective_seed();
  int used = 0;
  for (; used < plan.points && rep.violations == 0; ++used) {
    harness::concurrent_fuzz_one(
        q, plan,
        harness::mix_seed(base,
                          0xC0C0'0000ull + static_cast<std::uint64_t>(used)),
        0, used, rep);
  }
  EXPECT_GT(rep.violations, 0)
      << "mutation not detected in " << used << " concurrent points";
}

#endif  // REPRO_MUTATE_DROP_PREPUBLISH

}  // namespace
