// Figure 1 (a, d, e, f): linked-list throughput in the shared-cache model
// (emulated NVRAM: real flush/fence instructions execute).
//
//   1a: keys [1,500],  read-intensive (15% ins / 15% del / 70% find)
//   1d: keys [1,500],  update-intensive (35/35/30)
//   1e: keys [1,1500], read-intensive
//   1f: keys [1,1500], update-intensive
//
// Series: Isb, Isb-Opt, Capsules, Capsules-Opt, DT-Opt (paper Section 5).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  const struct {
    const char* fig;
    std::int64_t range;
    Mix mix;
  } subs[] = {{"fig1a", 500, kReadIntensive},
              {"fig1d", 500, kUpdateIntensive},
              {"fig1e", 1500, kReadIntensive},
              {"fig1f", 1500, kUpdateIntensive},
              // Beyond the paper's grid: pure insert/erase churn, the
              // memory subsystem's stress point (allocs_per_op ~ 0.5,
              // reuse_ratio -> 1 once the pools warm up).  The CI perf
              // smoke tracks this point's throughput + reuse ratio.
              {"fig1-upd", 500, kUpdateOnly}};
  std::vector<ExperimentSpec> specs;
  for (const auto& sub : subs) {
    ExperimentSpec spec;
    spec.figure = sub.fig;
    spec.what = "list throughput, shared-cache model (clwb/clflush + fence)";
    spec.structures = {"trait:paper-list"};
    if (spec.figure == "fig1-upd") {
      // The churn point also runs the no-reclaim ablation so the
      // memory subsystem's win is measured in the same table.
      spec.structures.push_back("Isb-leak");
    }
    spec.key_ranges = {sub.range};
    spec.mixes = {sub.mix};
    specs.push_back(spec);
  }
  return repro::bench::experiment_main(argc, argv, std::move(specs));
}
