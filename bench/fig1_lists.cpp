// Figure 1 (a, d, e, f): linked-list throughput in the shared-cache model
// (emulated NVRAM: real flush/fence instructions execute).
//
//   1a: keys [1,500],  read-intensive (15% ins / 15% del / 70% find)
//   1d: keys [1,500],  update-intensive (35/35/30)
//   1e: keys [1,1500], read-intensive
//   1f: keys [1,1500], update-intensive
//
// Series: Isb, Isb-Opt, Capsules, Capsules-Opt, DT-Opt (paper Section 5).
#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

void bm_point(benchmark::State& state, const SetAlgo* algo,
              std::int64_t range, harness::Mix mix, int threads,
              const char* fig) {
  pmem::ModeGuard guard(pmem::Mode::shared_cache);
  for (auto _ : state) {
    const auto r = run_set_point(*algo, range, mix, threads);
    publish(state, r);
    harness::print_row(algo->name,
                       std::string(fig) + " range=" + std::to_string(range) +
                           " " + mix.name,
                       threads, r);
  }
}

const std::vector<SetAlgo>& algos() {
  static const std::vector<SetAlgo> a = paper_list_algos();
  return a;
}

void register_all() {
  struct Sub {
    const char* fig;
    std::int64_t range;
    harness::Mix mix;
  };
  const Sub subs[] = {
      {"fig1a", 500, harness::kReadIntensive},
      {"fig1d", 500, harness::kUpdateIntensive},
      {"fig1e", 1500, harness::kReadIntensive},
      {"fig1f", 1500, harness::kUpdateIntensive},
  };
  for (const auto& sub : subs) {
    for (const auto& algo : algos()) {
      for (int t : thread_series()) {
        const auto name = std::string(sub.fig) + "/" + algo.name + "/" +
                          std::to_string(sub.range) + "/" + sub.mix.name +
                          "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&algo, sub, t](benchmark::State& s) {
              bm_point(s, &algo, sub.range, sub.mix, t, sub.fig);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Figure 1a/1d/1e/1f",
      "list throughput, shared-cache model (clwb/clflush + fence)");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
