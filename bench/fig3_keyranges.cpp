// Figure 3: list throughput for the larger key ranges [1,1000] and
// [1,2000], read-intensive (left) and update-intensive (right), in the
// shared-cache model.  Same series as Figure 1.
#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

void register_all() {
  static const std::vector<SetAlgo> algos = paper_list_algos();
  for (std::int64_t range : {1000, 2000}) {
    for (auto mix : {harness::kReadIntensive, harness::kUpdateIntensive}) {
      for (const auto& algo : algos) {
        for (int t : thread_series()) {
          const auto name = "fig3/" + algo.name + "/" +
                            std::to_string(range) + "/" + mix.name +
                            "/threads:" + std::to_string(t);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [&algo, range, mix, t](benchmark::State& s) {
                pmem::ModeGuard guard(pmem::Mode::shared_cache);
                for (auto _ : s) {
                  const auto r = run_set_point(algo, range, mix, t);
                  publish(s, r);
                  harness::print_row(
                      algo.name,
                      "range=" + std::to_string(range) + " " + mix.name, t,
                      r);
                }
              })
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Figure 3", "list throughput, key ranges [1,1000] and [1,2000]");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
