// Figure 3: list throughput for the larger key ranges [1,1000] and
// [1,2000], read-intensive (left) and update-intensive (right), in the
// shared-cache model.  Same series as Figure 1.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec spec;
  spec.figure = "fig3";
  spec.what = "list throughput, key ranges [1,1000] and [1,2000]";
  spec.structures = {"trait:paper-list"};
  spec.key_ranges = {1000, 2000};
  spec.mixes = {kReadIntensive, kUpdateIntensive};
  return repro::bench::experiment_main(argc, argv, {spec});
}
