// Figures 5 and 6: pbarriers and stand-alone flushes per operation for
// key ranges [1,1000], [1,1500], [1,2000] - Figure 5 is the
// read-intensive benchmark, Figure 6 the update-intensive one.
// count_only mode: deterministic, hardware-independent.
#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

void register_all() {
  static const std::vector<SetAlgo> algos = paper_list_algos();
  struct Sub {
    const char* fig;
    harness::Mix mix;
  };
  const Sub subs[] = {{"fig5", harness::kReadIntensive},
                      {"fig6", harness::kUpdateIntensive}};
  for (const auto& sub : subs) {
    for (std::int64_t range : {1000, 1500, 2000}) {
      for (const auto& algo : algos) {
        for (int t : thread_series()) {
          const auto name = std::string(sub.fig) + "/" + algo.name + "/" +
                            std::to_string(range) +
                            "/threads:" + std::to_string(t);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [&algo, sub, range, t](benchmark::State& s) {
                pmem::ModeGuard guard(pmem::Mode::count_only);
                for (auto _ : s) {
                  const auto r = run_set_point(algo, range, sub.mix, t);
                  publish(s, r);
                  harness::print_row(
                      algo.name,
                      std::string(sub.fig) + " range=" +
                          std::to_string(range) + " " + sub.mix.name,
                      t, r);
                }
              })
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Figures 5/6",
      "persistence instructions per op, ranges 1000/1500/2000");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
