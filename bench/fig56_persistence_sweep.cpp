// Figures 5 and 6: pbarriers and stand-alone flushes per operation for
// key ranges [1,1000], [1,1500], [1,2000] - Figure 5 is the
// read-intensive benchmark, Figure 6 the update-intensive one.
// count_only mode: deterministic, hardware-independent.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  const struct {
    const char* fig;
    Mix mix;
  } subs[] = {{"fig5", kReadIntensive}, {"fig6", kUpdateIntensive}};
  std::vector<ExperimentSpec> specs;
  for (const auto& sub : subs) {
    ExperimentSpec spec;
    spec.figure = sub.fig;
    spec.what = "persistence instructions per op, ranges 1000/1500/2000";
    spec.structures = {"trait:paper-list"};
    spec.key_ranges = {1000, 1500, 2000};
    spec.mixes = {sub.mix};
    spec.modes = {repro::pmem::Mode::count_only};
    specs.push_back(spec);
  }
  return repro::bench::experiment_main(argc, argv, std::move(specs));
}
