// Shared scaffolding for the figure benches: type-erased set/queue
// adapters over every evaluated implementation, the thread series, and a
// helper that runs one data point and reports it both through
// google-benchmark counters and as a paper-style table row.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/capsules_list.hpp"
#include "baselines/capsules_queue.hpp"
#include "baselines/harris_list.hpp"
#include "baselines/log_queue.hpp"
#include "baselines/ms_queue.hpp"
#include "ds/dt_list.hpp"
#include "ds/isb_list.hpp"
#include "ds/isb_queue.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "pmem/persist.hpp"

namespace repro::bench {

// ---------------------------------------------------------------------
// Set (linked list) adapters
// ---------------------------------------------------------------------

struct SetIface {
  virtual ~SetIface() = default;
  virtual bool insert(std::int64_t k) = 0;
  virtual bool erase(std::int64_t k) = 0;
  virtual bool find(std::int64_t k) = 0;
};

template <typename L>
struct SetAdapter final : SetIface {
  L impl;
  template <typename... Args>
  explicit SetAdapter(Args&&... args)
      : impl(static_cast<Args&&>(args)...) {}
  bool insert(std::int64_t k) override { return impl.insert(k); }
  bool erase(std::int64_t k) override { return impl.erase(k); }
  bool find(std::int64_t k) override { return impl.find(k); }
};

struct SetAlgo {
  std::string name;
  std::function<std::unique_ptr<SetIface>()> make;
};

// The paper's evaluated list algorithms (Section 5 naming).
inline std::vector<SetAlgo> paper_list_algos() {
  using repro::baselines::CapsulesList;
  using repro::ds::DtList;
  using repro::ds::IsbList;
  using repro::ds::PersistProfile;
  return {
      {"Isb",
       [] {
         IsbList::Config c;
         c.profile = PersistProfile::general;
         return std::make_unique<SetAdapter<IsbList>>(c);
       }},
      {"Isb-Opt",
       [] {
         IsbList::Config c;
         c.profile = PersistProfile::optimized;
         return std::make_unique<SetAdapter<IsbList>>(c);
       }},
      {"Capsules",
       [] {
         return std::make_unique<SetAdapter<CapsulesList>>(
             CapsulesList::Variant::general);
       }},
      {"Capsules-Opt",
       [] {
         return std::make_unique<SetAdapter<CapsulesList>>(
             CapsulesList::Variant::optimized);
       }},
      {"DT-Opt",
       [] {
         return std::make_unique<SetAdapter<DtList>>(
             PersistProfile::optimized);
       }},
  };
}

inline SetAlgo harris_algo() {
  return {"Harris-LL", [] {
            return std::make_unique<SetAdapter<baselines::HarrisList>>();
          }};
}

inline SetAlgo dt_general_algo() {
  return {"DT", [] {
            return std::make_unique<SetAdapter<repro::ds::DtList>>(
                repro::ds::PersistProfile::general);
          }};
}

// ---------------------------------------------------------------------
// Data-point execution
// ---------------------------------------------------------------------

inline std::vector<int> thread_series() {
  std::vector<int> s;
  for (int t = 1; t <= harness::max_threads(); t *= 2) s.push_back(t);
  return s;
}

// Runs the paper's set benchmark on one algorithm / key range / mix /
// thread count; prefills to ~40% and measures for REPRO_BENCH_MS.
inline harness::RunResult run_set_point(const SetAlgo& algo,
                                        std::int64_t key_range,
                                        harness::Mix mix, int threads) {
  auto set = algo.make();
  harness::prefill(*set, key_range);
  const harness::Workload w{key_range, mix};
  return harness::run_threads(threads, [&](int, harness::Rng& rng) {
    const auto key = w.pick_key(rng);
    switch (w.pick_op(rng)) {
      case harness::OpType::insert:
        benchmark::DoNotOptimize(set->insert(key));
        break;
      case harness::OpType::erase:
        benchmark::DoNotOptimize(set->erase(key));
        break;
      case harness::OpType::find:
        benchmark::DoNotOptimize(set->find(key));
        break;
    }
  });
}

// Publishes a run through google-benchmark state counters.
inline void publish(benchmark::State& state, const harness::RunResult& r) {
  state.counters["ops_per_sec"] = r.ops_per_sec;
  state.counters["barriers_per_op"] = r.barriers_per_op;
  state.counters["flushes_per_op"] = r.flushes_per_op;
  state.counters["psyncs_per_op"] = r.psyncs_per_op;
  state.SetItemsProcessed(static_cast<std::int64_t>(r.total_ops));
}

// ---------------------------------------------------------------------
// Queue adapters
// ---------------------------------------------------------------------

struct QueueIface {
  virtual ~QueueIface() = default;
  virtual void enqueue(std::uint64_t v) = 0;
  virtual bool dequeue(std::uint64_t& out) = 0;
};

template <typename Q>
struct QueueAdapter final : QueueIface {
  Q impl;
  template <typename... Args>
  explicit QueueAdapter(Args&&... args)
      : impl(static_cast<Args&&>(args)...) {}
  void enqueue(std::uint64_t v) override { impl.enqueue(v); }
  // Every queue, including the volatile MS-queue baseline, returns the
  // unified ds::DequeueResult, so one adapter body covers them all.
  bool dequeue(std::uint64_t& out) override {
    const auto r = impl.dequeue();
    out = r.value;
    return r.ok;
  }
};

struct QueueAlgo {
  std::string name;
  std::function<std::unique_ptr<QueueIface>()> make;
};

inline std::vector<QueueAlgo> paper_queue_algos() {
  using repro::baselines::CapsulesQueue;
  using repro::baselines::LogQueue;
  using repro::ds::IsbQueue;
  return {
      {"Isb-Queue",
       [] { return std::make_unique<QueueAdapter<IsbQueue>>(); }},
      {"Log-Queue",
       [] { return std::make_unique<QueueAdapter<LogQueue>>(); }},
      {"Capsules-General",
       [] {
         return std::make_unique<QueueAdapter<CapsulesQueue>>(
             CapsulesQueue::Variant::general);
       }},
      {"Capsules-Normal",
       [] {
         return std::make_unique<QueueAdapter<CapsulesQueue>>(
             CapsulesQueue::Variant::normalized);
       }},
  };
}

inline QueueAlgo ms_queue_algo() {
  return {"MS-Queue", [] {
            return std::make_unique<QueueAdapter<baselines::MsQueue>>();
          }};
}

// Enqueue/dequeue pairs (the paper's queue benchmark), prefilled.
inline harness::RunResult run_queue_point(const QueueAlgo& algo,
                                          std::size_t prefill, int threads) {
  auto q = algo.make();
  for (std::size_t i = 0; i < prefill; ++i) {
    q->enqueue(static_cast<std::uint64_t>(i));
  }
  return harness::run_threads(threads, [&](int, harness::Rng& rng) {
    q->enqueue(rng.next());
    std::uint64_t out = 0;
    benchmark::DoNotOptimize(q->dequeue(out));
  });
}

}  // namespace repro::bench
