// google-benchmark glue for the figure binaries: registers every
// expanded point of each ExperimentSpec as a benchmark (so
// --benchmark_filter keeps selecting sub-grids) and publishes each
// RunResult's quantities as state counters alongside the result sinks.
// All grid mechanics live in the library (harness/experiment.hpp); a
// figure binary is just spec literals + experiment_main().
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"

namespace repro::bench {

// Process-wide sinks: stdout table + optional REPRO_OUT file.
inline harness::SinkSet& sinks() {
  static harness::SinkSet s = harness::default_sinks();
  return s;
}

// Publishes a run through google-benchmark state counters.
inline void publish(benchmark::State& state, const harness::RunResult& r) {
  state.counters["ops_per_sec"] = r.ops_per_sec;
  state.counters["barriers_per_op"] = r.barriers_per_op;
  state.counters["flushes_per_op"] = r.flushes_per_op;
  state.counters["psyncs_per_op"] = r.psyncs_per_op;
  state.counters["coalesced_pwb_per_op"] = r.coalesced_pwb_per_op;
  state.counters["allocs_per_op"] = r.allocs_per_op;
  state.counters["retired_per_op"] = r.retired_per_op;
  state.counters["reuse_ratio"] = r.reuse_ratio;
  state.SetItemsProcessed(static_cast<std::int64_t>(r.total_ops));
}

// Registered specs need stable addresses (benchmark lambdas outlive
// registration) and a once-flag so the table header prints when the
// spec's first surviving point actually runs under the filter.
struct SpecState {
  harness::ExperimentSpec spec;
  std::once_flag header_once;
};

// Returns the number of points registered; an empty grid is a spec bug
// (typo'd selector, impossible axis combination) that must not let the
// binary exit 0 having measured nothing.
inline std::size_t register_spec(SpecState* st) {
  const auto points = harness::expand(st->spec);
  for (const harness::Point& p : points) {
    const auto name = harness::point_name(st->spec, p);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [st, p](benchmark::State& s) {
          for (auto _ : s) {
            std::call_once(st->header_once, [st] {
              sinks().begin(st->spec.figure, st->spec.what);
            });
            const auto row = harness::run_point(st->spec, p);
            publish(s, row.run);
            sinks().row(row);
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return points.size();
}

// Shared main body: exit code reflects crash-scenario detectability.
inline int experiment_main(int argc, char** argv,
                           std::vector<harness::ExperimentSpec> specs) {
  // --benchmark_list_tests (and its =true form) enumerates without
  // running anything; that must not trip the no-points-ran guard below.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_list_tests", 22) == 0 &&
        std::strstr(argv[i], "false") == nullptr &&
        std::strstr(argv[i], "=0") == nullptr) {
      list_only = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  static std::deque<SpecState> states;
  bool empty_spec = false;
  std::size_t registered = 0;
  for (auto& spec : specs) {
    states.emplace_back();
    states.back().spec = std::move(spec);
    const std::size_t n = register_spec(&states.back());
    registered += n;
    if (n == 0) {
      const auto& s = states.back().spec;
      // expand() already diagnosed any unmatched selectors.
      if (harness::selected_structures(s, /*diagnose=*/false).empty()) {
        // No structure survived selection: a typo'd selector or a
        // crash schedule over non-detectable structures.
        std::fprintf(stderr, "repro: spec %s expanded to zero points\n",
                     s.figure.c_str());
        empty_spec = true;
      } else {
        // Structures matched but every point was dropped by a kind
        // constraint (e.g. the exchanger needs pairs and the thread
        // series tops out at 1) — legitimate on small hosts.
        std::fprintf(stderr, "repro: spec %s: no runnable points\n",
                     s.figure.c_str());
      }
    }
  }
  const std::uint64_t run_before = harness::points_run();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // A --benchmark_filter matching none of the registered benchmarks
  // would otherwise exit 0 having measured nothing — the same hole as
  // an empty grid, and fatal for crash_recovery, whose ctest gate is
  // this exit code.  (With zero registered points the empty_spec /
  // benign-empty diagnosis above already decided the outcome.)
  if (!list_only && registered > 0 &&
      harness::points_run() == run_before) {
    std::fprintf(stderr,
                 "repro: no data points ran (filter matched nothing?)\n");
    return 1;
  }
  return (harness::crash_failures() > 0 || harness::spec_errors() > 0 ||
          harness::sink_errors() > 0 || empty_spec)
             ? 1
             : 0;
}

}  // namespace repro::bench
