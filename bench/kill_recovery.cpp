// Fork-kill-recover driver: the process-kill counterpart of
// crash_points / concurrent_crash.  Each trial forks a child that maps
// the persistent heap (pmem/mmap_heap.hpp), runs a journaled detectable
// workload in Mode::mmap, dies by SIGKILL, and is audited by a fresh
// process that reopens the heap file and replays the detectability
// contract (harness/killfuzz.hpp).  Exits non-zero on any violation.
//
// Environment:
//   REPRO_KILL_TRIALS   trials per family          (default 200)
//   REPRO_KILL_THREADS  worker lanes in the child  (default 1)
//   REPRO_KILL_OPS      per-lane operation budget  (default 512)
//   REPRO_KILL_TIMED=1  parent-timed SIGKILL instead of deterministic
//                       armed kill points
//   REPRO_KILL_DOUBLE=1 double-kill scenario: a second SIGKILL is
//                       armed inside the first verifier's recovery
//                       pass; a third fresh process gives the verdict
//   REPRO_HEAP_PATH     heap file (default /tmp/repro_heap.<pid>.pmem;
//                       journal and diagnostics ride alongside it)
//   REPRO_KEEP_HEAP=1   keep the last trial's heap file for inspection
//   REPRO_KILL_REPRO    reproducer JSONL path for failing trials
//   REPRO_SEED          base seed (decimal or 0x-hex)
//
//   kill_recovery --persist-smoke
//     The long-lived-dataset smoke instead of the kill campaign: one
//     child writes a dataset to the heap file and exits cleanly, then
//     two fresh processes reopen the file and must find the contents
//     intact and identical.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "repro/harness/killfuzz.hpp"

namespace kf = repro::harness::kill;
using repro::harness::detail::env_int;
using repro::harness::detail::env_int_nonneg;

namespace {

kf::KillPlan base_plan() {
  kf::KillPlan plan;
  plan.heap_path = kf::default_heap_path();
  plan.seed = repro::harness::global_seed();
  plan.threads = env_int("REPRO_KILL_THREADS", 1);
  plan.ops_budget = env_int("REPRO_KILL_OPS", 512);
  return plan;
}

// Writer process completes its budget (no kill), then two fresh
// processes must reopen the heap file and agree it is intact.
int persist_smoke() {
  int failures = 0;
  for (kf::Family f : kf::all_families()) {
    kf::KillPlan plan = base_plan();
    plan.family = f;
    plan.ops_budget = 200;
    const kf::TrialResult r = kf::kill_one(plan);
    const char* name = kf::family_name(f);
    if (!r.infra_ok) {
      std::fprintf(stderr, "persist-smoke %-10s SKIP (mmap heap "
                   "unavailable in this environment)\n", name);
      kf::cleanup_heap_files(plan);
      continue;
    }
    if (r.killed || r.vacuous || r.violations != 0) {
      std::fprintf(stderr,
                   "persist-smoke %-10s FAIL: killed=%d vacuous=%d "
                   "violations=%d %s\n",
                   name, r.killed, r.vacuous, r.violations,
                   r.what.c_str());
      ++failures;
    } else {
      std::printf("persist-smoke %-10s OK: dataset survived reopen "
                  "by two fresh processes\n", name);
    }
    kf::cleanup_heap_files(plan);
  }
  return failures == 0 ? 0 : 1;
}

int kill_campaign() {
  const int trials = env_int("REPRO_KILL_TRIALS", 200);
  const bool timed = env_int_nonneg("REPRO_KILL_TIMED", 0) != 0;
  const bool dbl = env_int_nonneg("REPRO_KILL_DOUBLE", 0) != 0;
  const char* repro_path = std::getenv("REPRO_KILL_REPRO");
  const bool keep_heap = env_int_nonneg("REPRO_KEEP_HEAP", 0) != 0;

  int total_violations = 0;
  int total_infra = 0;
  int total_trials = 0;
  kf::KillPlan plan = base_plan();
  plan.double_kill = dbl;
  for (kf::Family f : kf::all_families()) {
    plan.family = f;
    const kf::KillReport rep = kf::kill_many(plan, trials, timed);
    std::printf(
        "kill-recovery %-10s trials=%d kills=%d completed=%d "
        "vacuous=%d verifier_kills=%d infra_skips=%d violations=%d "
        "mode=%s threads=%d seed=0x%llx\n",
        kf::family_name(f), rep.trials, rep.kills, rep.completed,
        rep.vacuous, rep.verifier_kills, rep.infra_skips,
        rep.violations, dbl ? "double-kill" : (timed ? "timed" : "armed"),
        plan.threads, static_cast<unsigned long long>(plan.seed));
    for (const kf::KillFailure& x : rep.failures) {
      std::fprintf(stderr,
                   "  FAIL family=%s seed=0x%llx kill_point=%llu "
                   "delay_us=%d threads=%d: %s\n",
                   x.family.c_str(),
                   static_cast<unsigned long long>(x.seed),
                   static_cast<unsigned long long>(x.kill_point),
                   x.delay_us, x.threads, x.what.c_str());
    }
    if (repro_path != nullptr && !rep.failures.empty()) {
      kf::write_kill_reproducer(rep, repro_path);
    }
    total_violations += rep.violations;
    total_infra += rep.infra_skips;
    total_trials += rep.trials;
  }
  if (!keep_heap) kf::cleanup_heap_files(plan);

  if (total_infra == total_trials && total_trials > 0) {
    // Every trial failed before the workload ran (e.g. no usable
    // fixed mapping address under this sanitizer/kernel): report the
    // environment problem distinctly from a detectability violation.
    std::fprintf(stderr,
                 "kill-recovery: all %d trials were infrastructure "
                 "skips; environment cannot run the harness\n",
                 total_trials);
    return 2;
  }
  return total_violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--persist-smoke") == 0) {
      return persist_smoke();
    }
  }
  return kill_campaign();
}
