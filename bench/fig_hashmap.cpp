// Hash-map figures (ROADMAP item 1): the Harris-Michael hash map under
// the paper's transformations, at key ranges the flat list cannot
// open.  Four specs:
//
//   fig-hm          — throughput scaling over the hash-map series
//                     (detectable ISB general/optimized, DT, and the
//                     volatile baseline; selected with the composed
//                     registry selector "trait:hashmap&kind:set"),
//                     uniform keys over [1,100k] and [1,1M], read- and
//                     update-intensive mixes, the paper thread series.
//   fig-hm-zipf     — the same series under production skew: zipfian
//                     keys (theta 0.99) over [1,1M].
//   fig-hm-modes    — per-backend persistence cost for the detectable
//                     variants across every pmem mode (shared_cache,
//                     private_cache, count_only, shadow, mmap) at 1
//                     and 8 threads.
//   fig-hm-vs-list  — the headline comparison: Isb-HashMap vs the flat
//                     Isb list on a 1M key range at 1 and 8 threads.
//                     prefill is pinned low (2%) because filling a
//                     *flat list* to 40% of 1M keys is quadratic; the
//                     same 20k-key working set makes the per-op gap
//                     the structures' own (REPRO_HM_BUCKET_BITS scales
//                     the map's directory if a different load factor
//                     is wanted).
//
// CI records the run as BENCH_PR9.json (REPRO_OUT) and shape-validates
// the (algo, threads) combinations of the pinned-thread specs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;

  ExperimentSpec scaling;
  scaling.figure = "fig-hm";
  scaling.what = "hash map throughput, key ranges [1,100k] and [1,1M]";
  scaling.structures = {"trait:hashmap&kind:set"};
  scaling.key_ranges = {100000, 1000000};
  scaling.mixes = {kReadIntensive, kUpdateIntensive};

  ExperimentSpec zipf;
  zipf.figure = "fig-hm-zipf";
  zipf.what = "hash map under zipfian skew (theta 0.99), [1,1M]";
  zipf.structures = {"trait:hashmap&kind:set"};
  zipf.key_ranges = {1000000};
  zipf.mixes = {kReadIntensive, kUpdateIntensive};
  zipf.dist = KeyDist::zipfian;

  ExperimentSpec modes;
  modes.figure = "fig-hm-modes";
  modes.what = "hash map persistence backends, [1,100k]";
  modes.structures = {"Isb-HashMap", "Isb-HashMap-Opt"};
  modes.key_ranges = {100000};
  modes.mixes = {kReadIntensive};
  modes.threads = {1, 8};
  using repro::pmem::Mode;
  modes.modes = {Mode::shared_cache, Mode::private_cache,
                 Mode::count_only, Mode::shadow, Mode::mmap};

  ExperimentSpec vs_list;
  vs_list.figure = "fig-hm-vs-list";
  vs_list.what = "hash map vs flat list, [1,1M], 2% prefill";
  vs_list.structures = {"Isb-HashMap", "Isb"};
  vs_list.key_ranges = {1000000};
  vs_list.mixes = {kReadIntensive};
  vs_list.threads = {1, 8};
  vs_list.prefill_pct = 2;

  return repro::bench::experiment_main(
      argc, argv, {scaling, zipf, modes, vs_list});
}
