// Section 6 structures (numbers deferred to the paper's full version):
// feasibility benchmarks for the recoverable BST, the recoverable
// exchanger, and the direct-tracking elimination stack.
#include "bench_common.hpp"
#include "ds/dt_stack.hpp"
#include "ds/isb_bst.hpp"
#include "ds/dt_skiplist.hpp"
#include "ds/isb_exchanger.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

void register_bst() {
  using repro::ds::IsbBst;
  using repro::ds::PersistProfile;
  static const std::vector<std::pair<std::string, PersistProfile>> profiles =
      {{"Bst-Isb", PersistProfile::general},
       {"Bst-Isb-Opt", PersistProfile::optimized}};
  for (const auto& [name, profile] : profiles) {
    for (auto mix : {harness::kReadIntensive, harness::kUpdateIntensive}) {
      for (int t : thread_series()) {
        const auto bm = "bst/" + name + "/" + mix.name +
                        "/threads:" + std::to_string(t);
        const auto p = profile;
        const auto nm = name;
        benchmark::RegisterBenchmark(
            bm.c_str(),
            [p, nm, mix, t](benchmark::State& s) {
              pmem::ModeGuard guard(pmem::Mode::shared_cache);
              for (auto _ : s) {
                IsbBst tree(p);
                harness::prefill(tree, 4096);
                const harness::Workload w{4096, mix};
                const auto r = harness::run_threads(
                    t, [&](int, harness::Rng& rng) {
                      const auto k = w.pick_key(rng);
                      switch (w.pick_op(rng)) {
                        case harness::OpType::insert:
                          benchmark::DoNotOptimize(tree.insert(k));
                          break;
                        case harness::OpType::erase:
                          benchmark::DoNotOptimize(tree.erase(k));
                          break;
                        case harness::OpType::find:
                          benchmark::DoNotOptimize(tree.find(k));
                          break;
                      }
                    });
                publish(s, r);
                harness::print_row(nm, std::string("range=4096 ") + mix.name,
                                   t, r);
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void register_stack() {
  using repro::ds::DtStack;
  for (bool elim : {false, true}) {
    for (int t : thread_series()) {
      const auto bm = std::string("stack/") +
                      (elim ? "DT-Elimination" : "DT-Treiber") +
                      "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(
          bm.c_str(),
          [elim, t](benchmark::State& s) {
            pmem::ModeGuard guard(pmem::Mode::shared_cache);
            for (auto _ : s) {
              DtStack::Config cfg;
              cfg.elimination = elim;
              DtStack stack(cfg);
              for (int i = 0; i < 1024; ++i) {
                stack.push(static_cast<std::uint64_t>(i));
              }
              const auto r =
                  harness::run_threads(t, [&](int, harness::Rng& rng) {
                    if (rng.below(2) == 0) {
                      stack.push(rng.next());
                    } else {
                      benchmark::DoNotOptimize(stack.pop());
                    }
                  });
              publish(s, r);
              harness::print_row(elim ? "DT-Elimination" : "DT-Treiber",
                                 "push/pop 50/50", t, r);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void register_skiplist() {
  using repro::ds::DtSkipList;
  for (auto mix : {harness::kReadIntensive, harness::kUpdateIntensive}) {
    for (int t : thread_series()) {
      const auto bm = std::string("skiplist/DT/") + mix.name +
                      "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(
          bm.c_str(),
          [mix, t](benchmark::State& s) {
            pmem::ModeGuard guard(pmem::Mode::shared_cache);
            for (auto _ : s) {
              DtSkipList sl;
              harness::prefill(sl, 4096);
              const harness::Workload w{4096, mix};
              const auto r =
                  harness::run_threads(t, [&](int, harness::Rng& rng) {
                    const auto k = w.pick_key(rng);
                    switch (w.pick_op(rng)) {
                      case harness::OpType::insert:
                        benchmark::DoNotOptimize(sl.insert(k));
                        break;
                      case harness::OpType::erase:
                        benchmark::DoNotOptimize(sl.erase(k));
                        break;
                      case harness::OpType::find:
                        benchmark::DoNotOptimize(sl.find(k));
                        break;
                    }
                  });
              publish(s, r);
              harness::print_row("DT-SkipList",
                                 std::string("range=4096 ") + mix.name, t,
                                 r);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void register_exchanger() {
  using repro::ds::IsbExchanger;
  for (int t : thread_series()) {
    if (t < 2) continue;  // exchanges need pairs
    const auto bm = "exchanger/Isb/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(
        bm.c_str(),
        [t](benchmark::State& s) {
          pmem::ModeGuard guard(pmem::Mode::shared_cache);
          for (auto _ : s) {
            IsbExchanger ex;
            const auto r =
                harness::run_threads(t, [&](int, harness::Rng& rng) {
                  benchmark::DoNotOptimize(ex.exchange(rng.next(), 256));
                });
            publish(s, r);
            harness::print_row("Isb-Exchanger", "pairing attempts", t, r);
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Section 6 structures", "BST / exchanger / elimination stack");
  repro::harness::print_columns();
  register_bst();
  register_skiplist();
  register_stack();
  register_exchanger();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
