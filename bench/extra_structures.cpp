// Section 6 structures (numbers deferred to the paper's full version):
// feasibility benchmarks for the recoverable BST, the recoverable
// skiplist, the direct-tracking elimination stack, and the recoverable
// exchanger.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec bst;
  bst.figure = "bst";
  bst.what = "recoverable BST throughput";
  bst.structures = {"trait:bst"};
  bst.key_ranges = {4096};
  bst.mixes = {kReadIntensive, kUpdateIntensive};

  ExperimentSpec skiplist = bst;
  skiplist.figure = "skiplist";
  skiplist.what = "direct-tracking skiplist throughput";
  skiplist.structures = {"DT-SkipList"};

  ExperimentSpec stack;
  stack.figure = "stack";
  stack.what = "Treiber vs elimination stack, push/pop 50/50";
  stack.structures = {"DT-Treiber", "DT-Elimination"};

  ExperimentSpec exchanger;
  exchanger.figure = "exchanger";
  exchanger.what = "recoverable exchanger pairing attempts";
  exchanger.structures = {"Isb-Exchanger"};

  return repro::bench::experiment_main(argc, argv,
                                       {bst, skiplist, stack, exchanger});
}
