// Figure 7: queue throughput (enqueue/dequeue pairs, prefilled queue).
//   left:   shared-cache model - Isb-Queue, Log-Queue, Capsules-General,
//           Capsules-Normal
//   middle: private-cache model, same series
//   right:  private-cache model including the plain MS-Queue
//
// The paper prefills with one million nodes; REPRO_QUEUE_PREFILL (default
// 100000) scales that to the container-sized host.
#include <cstdlib>

#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

std::size_t queue_prefill() {
  const char* v = std::getenv("REPRO_QUEUE_PREFILL");
  if (v != nullptr && std::atoll(v) > 0) {
    return static_cast<std::size_t>(std::atoll(v));
  }
  return 100'000;
}

void register_all() {
  static std::vector<QueueAlgo> shared_algos = paper_queue_algos();
  static std::vector<QueueAlgo> private_algos = [] {
    auto v = paper_queue_algos();
    v.push_back(ms_queue_algo());
    return v;
  }();
  struct Sub {
    const char* fig;
    pmem::Mode mode;
    const std::vector<QueueAlgo>* algos;
  };
  const Sub subs[] = {
      {"fig7-left(shared)", pmem::Mode::shared_cache, &shared_algos},
      {"fig7-mid+right(private)", pmem::Mode::private_cache,
       &private_algos},
  };
  for (const auto& sub : subs) {
    for (const auto& algo : *sub.algos) {
      for (int t : thread_series()) {
        const auto name = std::string(sub.fig) + "/" + algo.name +
                          "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&algo, sub, t](benchmark::State& s) {
              pmem::ModeGuard guard(sub.mode);
              for (auto _ : s) {
                const auto r = run_queue_point(algo, queue_prefill(), t);
                publish(s, r);
                harness::print_row(algo.name, sub.fig, t, r);
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Figure 7", "queue throughput, shared and private cache models");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
