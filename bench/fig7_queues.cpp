// Figure 7: queue throughput (enqueue/dequeue pairs, prefilled queue).
//   left:   shared-cache model - Isb-Queue, Log-Queue, Capsules-General,
//           Capsules-Normal
//   middle: private-cache model, same series
//   right:  private-cache model including the plain MS-Queue
//
// The paper prefills with one million nodes; REPRO_QUEUE_PREFILL (default
// 100000) scales that to the container-sized host.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec left;
  left.figure = "fig7-left(shared)";
  left.what = "queue throughput, shared-cache model";
  left.structures = {"trait:paper-queue"};

  ExperimentSpec right;
  right.figure = "fig7-mid+right(private)";
  right.what = "queue throughput, private-cache model (incl. MS-Queue)";
  right.structures = {"trait:paper-queue", "MS-Queue"};
  right.modes = {repro::pmem::Mode::private_cache};

  return repro::bench::experiment_main(argc, argv, {left, right});
}
