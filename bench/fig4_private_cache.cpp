// Figure 4: list throughput in the private-cache model (zero persistence
// cost: flushes and fences are elided).  This isolates the metadata/CAS
// overhead each detectable transformation adds over the original Harris
// list ("Harris-LL"), which is also included as in the paper's Figure 4.
#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

std::vector<SetAlgo> fig4_algos() {
  auto v = paper_list_algos();
  v.push_back(dt_general_algo());
  v.push_back(harris_algo());
  return v;
}

void register_all() {
  static const std::vector<SetAlgo> algos = fig4_algos();
  for (std::int64_t range : {500, 1500}) {
    for (auto mix : {harness::kReadIntensive, harness::kUpdateIntensive}) {
      for (const auto& algo : algos) {
        for (int t : thread_series()) {
          const auto name = "fig4/" + algo.name + "/" +
                            std::to_string(range) + "/" + mix.name +
                            "/threads:" + std::to_string(t);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [&algo, range, mix, t](benchmark::State& s) {
                pmem::ModeGuard guard(pmem::Mode::private_cache);
                for (auto _ : s) {
                  const auto r = run_set_point(algo, range, mix, t);
                  publish(s, r);
                  harness::print_row(
                      algo.name,
                      "range=" + std::to_string(range) + " " + mix.name, t,
                      r);
                }
              })
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Figure 4", "list throughput, private-cache model (no flush cost)");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
