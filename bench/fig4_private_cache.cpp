// Figure 4: list throughput in the private-cache model (zero persistence
// cost: flushes and fences are elided).  This isolates the metadata/CAS
// overhead each detectable transformation adds over the original Harris
// list ("Harris-LL"), which is also included as in the paper's Figure 4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec spec;
  spec.figure = "fig4";
  spec.what = "list throughput, private-cache model (no flush cost)";
  spec.structures = {"trait:paper-list", "DT", "Harris-LL"};
  spec.key_ranges = {500, 1500};
  spec.mixes = {kReadIntensive, kUpdateIntensive};
  spec.modes = {repro::pmem::Mode::private_cache};
  return repro::bench::experiment_main(argc, argv, {spec});
}
