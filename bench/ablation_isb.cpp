// Ablation (not a paper figure): isolates the design choices the paper
// discusses in the text -
//  (1) the hand-tuned persistence placement (Isb vs Isb-Opt),
//  (2) the Algorithm 2 read-only optimization (with vs without), and
//  (3) workload skew: the paper's uniform keys vs a Zipfian(0.99)
//      distribution that concentrates traffic on the low end of the list.
// Read-intensive workload, where (2) matters most, shared-cache model,
// plus a count_only pass for the instruction deltas.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec base;
  base.structures = {"Isb", "Isb-Opt", "Isb-noROopt", "Isb-Opt-noROopt"};
  base.key_ranges = {500};
  base.mixes = {kReadIntensive};

  ExperimentSpec throughput = base;
  throughput.figure = "ablation-throughput";
  throughput.what = "Isb persistence profiles x read-only optimization";

  ExperimentSpec counts = base;
  counts.figure = "ablation-count";
  counts.what = "persistence-instruction deltas (count_only)";
  counts.modes = {repro::pmem::Mode::count_only};

  ExperimentSpec skew = base;
  skew.figure = "ablation-zipf";
  skew.what = "Zipfian(0.99) key skew vs the uniform baseline";
  skew.structures = {"trait:paper-list"};
  skew.dist = KeyDist::zipfian;

  return repro::bench::experiment_main(argc, argv,
                                       {throughput, counts, skew});
}
