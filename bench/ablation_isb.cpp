// Ablation (not a paper figure): isolates the two design choices the
// paper discusses in the text -
//  (1) the hand-tuned persistence placement (Isb vs Isb-Opt), and
//  (2) the Algorithm 2 read-only optimization (with vs without).
// Read-intensive workload, where (2) matters most, shared-cache model,
// plus a count_only pass for the instruction deltas.
#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;
using repro::ds::IsbList;
using repro::ds::PersistProfile;

std::vector<SetAlgo> ablation_algos() {
  auto mk = [](PersistProfile p, bool ro) {
    IsbList::Config c;
    c.profile = p;
    c.read_only_opt = ro;
    return c;
  };
  return {
      {"Isb",
       [mk] {
         return std::make_unique<SetAdapter<IsbList>>(
             mk(PersistProfile::general, true));
       }},
      {"Isb-Opt",
       [mk] {
         return std::make_unique<SetAdapter<IsbList>>(
             mk(PersistProfile::optimized, true));
       }},
      {"Isb-noROopt",
       [mk] {
         return std::make_unique<SetAdapter<IsbList>>(
             mk(PersistProfile::general, false));
       }},
      {"Isb-Opt-noROopt",
       [mk] {
         return std::make_unique<SetAdapter<IsbList>>(
             mk(PersistProfile::optimized, false));
       }},
  };
}

void register_all() {
  static const std::vector<SetAlgo> algos = ablation_algos();
  struct Sub {
    const char* label;
    pmem::Mode mode;
  };
  const Sub subs[] = {{"throughput(shared)", pmem::Mode::shared_cache},
                      {"instructions(count)", pmem::Mode::count_only}};
  for (const auto& sub : subs) {
    for (const auto& algo : algos) {
      for (int t : thread_series()) {
        const auto name = std::string("ablation/") + sub.label + "/" +
                          algo.name + "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&algo, sub, t](benchmark::State& s) {
              pmem::ModeGuard guard(sub.mode);
              for (auto _ : s) {
                const auto r = run_set_point(algo, 500,
                                             harness::kReadIntensive, t);
                publish(s, r);
                harness::print_row(algo.name, sub.label, t, r);
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Ablation", "Isb persistence profiles and read-only optimization");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
