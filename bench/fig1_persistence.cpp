// Figure 1 (b, c): persistence-instruction counts per operation.
//
//   1b: number of pbarriers per operation
//   1c: number of stand-alone flushes (pwbs outside a barrier) per op
//
// Runs in count_only mode: the counts are deterministic properties of the
// algorithms (ISB issues a constant number per op; Capsules-Opt and
// DT-Opt pay one barrier per marked node traversed, which grows with
// update concurrency), so this experiment reproduces the paper's curves
// exactly in shape regardless of host hardware.
#include "bench_common.hpp"

namespace {

using namespace repro;
using namespace repro::bench;

void bm_point(benchmark::State& state, const SetAlgo* algo,
              std::int64_t range, harness::Mix mix, int threads) {
  pmem::ModeGuard guard(pmem::Mode::count_only);
  for (auto _ : state) {
    const auto r = run_set_point(*algo, range, mix, threads);
    publish(state, r);
    harness::print_row(algo->name,
                       "range=" + std::to_string(range) + " " + mix.name,
                       threads, r);
  }
}

void register_all() {
  static const std::vector<SetAlgo> algos = paper_list_algos();
  for (std::int64_t range : {500, 1500}) {
    for (auto mix : {harness::kReadIntensive, harness::kUpdateIntensive}) {
      for (const auto& algo : algos) {
        for (int t : thread_series()) {
          const auto name = "fig1bc/" + algo.name + "/" +
                            std::to_string(range) + "/" + mix.name +
                            "/threads:" + std::to_string(t);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [&algo, range, mix, t](benchmark::State& s) {
                bm_point(s, &algo, range, mix, t);
              })
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  repro::harness::print_figure_header(
      "Figure 1b/1c", "pbarriers and stand-alone flushes per operation");
  repro::harness::print_columns();
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
