// Figure 1 (b, c): persistence-instruction counts per operation.
//
//   1b: number of pbarriers per operation
//   1c: number of stand-alone flushes (pwbs outside a barrier) per op
//
// Runs in count_only mode: the counts are deterministic properties of the
// algorithms (ISB issues a constant number per op; Capsules-Opt and
// DT-Opt pay one barrier per marked node traversed, which grows with
// update concurrency), so this experiment reproduces the paper's curves
// exactly in shape regardless of host hardware.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec spec;
  spec.figure = "fig1bc";
  spec.what = "pbarriers and stand-alone flushes per operation";
  spec.structures = {"trait:paper-list"};
  spec.key_ranges = {500, 1500};
  spec.mixes = {kReadIntensive, kUpdateIntensive};
  spec.modes = {repro::pmem::Mode::count_only};
  return repro::bench::experiment_main(argc, argv, {spec});
}
