// Crash-recovery scenario (the paper's Section 2 correctness property,
// exercised dynamically): run the normal workload, stop the workers at
// the crash point with one operation in flight per thread, replay every
// thread's AnnouncementBoard::recover(), and verify detectability —
// each interrupted thread learns either completed-with-response or
// not-applied for its last operation.  The recover() replay wall time
// is reported as recovery latency (the `recover=` suffix in the table,
// `recovery_us` in CSV/JSON rows).  Any detectability violation makes
// the binary exit non-zero, which the ctest smoke test turns into a
// failure.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace repro::harness;
  ExperimentSpec lists;
  lists.figure = "crash-lists";
  lists.what = "detectable recovery after a mid-interval crash (lists)";
  lists.structures = {"Isb", "Isb-Opt", "DT-Opt"};
  lists.key_ranges = {500};
  lists.mixes = {kUpdateIntensive};
  lists.crash_after_ms = 30;

  ExperimentSpec queues = lists;
  queues.figure = "crash-queues";
  queues.what = "detectable recovery after a mid-interval crash (queues)";
  queues.structures = {"trait:paper-queue"};  // non-detectable are skipped

  return repro::bench::experiment_main(argc, argv, {lists, queues});
}
