// Crash engine driver: three specs over the shared experiment engine.
//
//   crash-fuzz       — the crash-point fuzzer (harness/crashfuzz.hpp)
//                      over every registered trait:detectable
//                      structure: REPRO_FUZZ_POINTS simulated crashes
//                      per structure at PRNG-chosen persistence-
//                      instruction boundaries under shadow-NVM mode,
//                      each verified against the detectability
//                      contract.  Any violation makes the binary exit
//                      non-zero (the ctest / CI gate) and writes the
//                      {structure, seed, crash_point} reproducers to
//                      REPRO_CRASH_REPRO (default crash_repro.jsonl).
//   chain-fuzz       — the repeated-crash adversary: every fuzz point
//                      crashes again inside the recovery pass (at the
//                      RecoverySeal consolidation write), up to
//                      REPRO_CHAIN_DEPTH times, re-recovering after
//                      each link and holding recovery to idempotence.
//                      REPRO_CHAIN_POINTS iterations per structure.
//   conc-fuzz        — the concurrent crash-point fuzzer:
//                      REPRO_CONC_FUZZ_POINTS iterations per
//                      structure, each spawning REPRO_CONC_FUZZ_THREADS
//                      racing workers, crashing at a persistence
//                      boundary on whichever thread issues it, and
//                      verifying the recorded history + durable image
//                      with the durable-linearizability checker
//                      (harness/{history,linearize}.hpp).  Violations
//                      exit non-zero and dump the failing histories to
//                      REPRO_HISTORY_DUMP (default crash_history.jsonl
//                      — the CI artifact; tests/test_corpus.cpp shows
//                      the local replay).
//   tdeath-fuzz      — per-thread death: the armed instruction kills
//                      only the thread that hits it; survivors race
//                      on, a fresh thread adopts the dead lane's slot
//                      and runs recover(), and the checker audits the
//                      merged history.  REPRO_TDEATH_POINTS
//                      iterations per structure.
//   stall-fuzz       — the stalled-thread adversary: one worker parks
//                      at a persistence boundary across a full
//                      crash+recovery, resumes afterwards, and both
//                      the durable cut and the post-resume history
//                      must stay consistent.  REPRO_STALL_POINTS
//                      iterations per structure.
//   reclaim-fuzz     — the crash-during-reclaim adversary: an
//                      erase-biased workload densifies the retire
//                      paths so crash points land inside
//                      retire/scan/reclaim, and after each crash every
//                      parked (retired, unreclaimed) cell across all
//                      three reclamation schemes is checked for
//                      unpersisted stores (the persist-before-retire
//                      invariant).  Sweeps the reclaimer matrix plus
//                      Isb-Opt, whose fence-free post_update flushes
//                      are what a dropped retire fence would leave
//                      dirty.  REPRO_RECLAIM_POINTS iterations per
//                      structure.
//   reclaim-matrix   — throughput of the structure x reclaimer x mode
//                      grid (the BENCH_PR10 perf trajectory).
//   crash-lists/-q   — the PR2 wall-clock crash scenario kept as a
//                      regression point: multi-threaded workload,
//                      crash at an operation boundary, recover()
//                      replay per thread.
//   shadow-overhead  — per-backend persistence cost vs. count_only
//                      for the Isb list and queue at 1 and 8 threads:
//                      shadow (interception + write log) and mmap
//                      (real clwb+sfence) relative to bare counting
//                      (the BENCH_PR4/PR6 perf-smoke trajectories).
//
// Replaying a CI-reported reproducer (use its base_seed field):
//   REPRO_SEED=<base_seed> REPRO_FUZZ_POINTS=<points> ./crash_recovery \
//     --benchmark_filter='^crash-fuzz/<structure>/'
// reruns the exact iteration sequence (iteration seeds derive from
// {REPRO_SEED, iteration}); tests/test_crash_engine.cpp shows the
// single-iteration fuzz_one() replay of one {seed, crash_point} pair.
// A chain-fuzz reproducer additionally carries a crash_chain array;
// replay it with CrashPlan::replay_chain (tests/test_corpus.cpp).
//
// REPRO_RECLAIMER=<ebr|hp|pop> narrows every fuzz-family figure to the
// structures of one reclamation scheme (the CI matrix legs).
//
// REPRO_SCENARIO=<single-crash|repeated-crash|thread-death|
// stalled-thread|reclaim-crash> retargets the base crash-fuzz /
// conc-fuzz figures at
// a different scenario family (the dedicated chain/tdeath/stall
// figures are usually more convenient; the override exists for
// replaying a reproducer under the exact figure name CI reported).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

int env_points(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro::harness;

  ExperimentSpec fuzz;
  fuzz.figure = "crash-fuzz";
  fuzz.what =
      "shadow-NVM crash-point fuzzing, detectability verified per "
      "crash";
  fuzz.structures = {"trait:detectable"};
  fuzz.crash_plan.points = env_points("REPRO_FUZZ_POINTS", 200);

  ExperimentSpec conc;
  conc.figure = "conc-fuzz";
  conc.what =
      "concurrent crash-point fuzzing, durable-linearizability "
      "checked per crash";
  conc.structures = {"trait:detectable"};
  conc.conc_plan.points = env_points("REPRO_CONC_FUZZ_POINTS", 100);
  conc.conc_plan.threads = env_points("REPRO_CONC_FUZZ_THREADS", 3);

  // REPRO_SCENARIO retargets the two base fuzz figures (reproducer
  // replay under the figure name CI reported); the dedicated scenario
  // figures below are the normal way to run the families.
  if (const char* sc = std::getenv("REPRO_SCENARIO");
      sc != nullptr && sc[0] != '\0') {
    ScenarioKind kind = ScenarioKind::single_crash;
    if (!scenario_from_name(sc, kind)) {
      std::fprintf(stderr, "repro: unknown REPRO_SCENARIO '%s'\n", sc);
      return 2;
    }
    if (kind == ScenarioKind::repeated_crash ||
        kind == ScenarioKind::reclaim_crash) {
      fuzz.crash_plan.scenario = kind;
    } else if (kind != ScenarioKind::single_crash) {
      conc.conc_plan.scenario = kind;
    }
  }

  ExperimentSpec chain;
  chain.figure = "chain-fuzz";
  chain.what =
      "repeated-crash adversary: chained crashes inside recovery, "
      "recovery held to idempotence";
  chain.structures = {"trait:detectable"};
  chain.crash_plan.points = env_points("REPRO_CHAIN_POINTS", 100);
  chain.crash_plan.scenario = ScenarioKind::repeated_crash;
  chain.crash_plan.chain_depth = env_points("REPRO_CHAIN_DEPTH", 3);

  ExperimentSpec tdeath;
  tdeath.figure = "tdeath-fuzz";
  tdeath.what =
      "per-thread death: survivors race on, a fresh thread adopts the "
      "dead lane and recovers it";
  tdeath.structures = {"trait:detectable"};
  tdeath.conc_plan.points = env_points("REPRO_TDEATH_POINTS", 60);
  tdeath.conc_plan.threads = env_points("REPRO_CONC_FUZZ_THREADS", 3);
  tdeath.conc_plan.scenario = ScenarioKind::thread_death;

  ExperimentSpec stall;
  stall.figure = "stall-fuzz";
  stall.what =
      "stalled-thread adversary: a worker parks across crash+recovery "
      "and resumes late";
  stall.structures = {"trait:detectable"};
  stall.conc_plan.points = env_points("REPRO_STALL_POINTS", 60);
  stall.conc_plan.threads = env_points("REPRO_CONC_FUZZ_THREADS", 3);
  stall.conc_plan.scenario = ScenarioKind::stalled_thread;

  // The reclaimer matrix: one list, one queue, one hash map per
  // scheme.  Isb-Opt rides along in the fuzz figure because its
  // optimized profile leaves post_update flushes unfenced — exactly
  // the window a dropped persist-before-retire fence exposes (the
  // REPRO_MUTATE_DROP_RETIRE_PERSIST self-test detects through it).
  const std::vector<std::string> matrix = {
      "Isb",          "Isb-Queue",     "DT-HashMap",
      "Isb-List-HP",  "Isb-Queue-HP",  "DT-HashMap-HP",
      "Isb-List-POP", "Isb-Queue-POP", "DT-HashMap-POP"};

  ExperimentSpec reclaim;
  reclaim.figure = "reclaim-fuzz";
  reclaim.what =
      "crash-during-reclaim fuzzing: parked cells checked for "
      "unpersisted stores across EBR/HP/POP";
  reclaim.structures = matrix;
  reclaim.structures.push_back("Isb-Opt");
  reclaim.crash_plan.points = env_points("REPRO_RECLAIM_POINTS", 200);
  reclaim.crash_plan.scenario = ScenarioKind::reclaim_crash;

  ExperimentSpec rmatrix;
  rmatrix.figure = "reclaim-matrix";
  rmatrix.what =
      "structure x reclaimer x mode throughput grid (EBR vs HP vs POP)";
  rmatrix.structures = matrix;
  rmatrix.key_ranges = {500};
  rmatrix.mixes = {kUpdateIntensive};
  rmatrix.threads = {1, 4};
  rmatrix.modes = {repro::pmem::Mode::count_only,
                   repro::pmem::Mode::shadow};

  // One reclamation scheme at a time (the CI fuzz legs): narrow every
  // fuzz family to the structures carrying that scheme's trait.
  if (const std::string rf = detail::reclaimer_filter(); !rf.empty()) {
    const std::string atom = "&trait:reclaimer-" + rf;
    for (ExperimentSpec* spec :
         {&fuzz, &chain, &conc, &tdeath, &stall, &reclaim}) {
      for (std::string& sel : spec->structures) sel += atom;
    }
  }

  ExperimentSpec lists;
  lists.figure = "crash-lists";
  lists.what = "detectable recovery after a mid-interval crash (lists)";
  lists.structures = {"Isb", "Isb-Opt", "DT-Opt"};
  lists.key_ranges = {500};
  lists.mixes = {kUpdateIntensive};
  lists.crash_after_ms = 30;

  ExperimentSpec queues = lists;
  queues.figure = "crash-queues";
  queues.what = "detectable recovery after a mid-interval crash (queues)";
  queues.structures = {"trait:paper-queue"};  // non-detectable are skipped

  ExperimentSpec overhead;
  overhead.figure = "shadow-overhead";
  overhead.what =
      "persistence-backend cost vs count_only (Isb list & queue): "
      "shadow write-log tracking and mmap clwb+sfence";
  overhead.structures = {"Isb", "Isb-Queue"};
  overhead.key_ranges = {500};
  overhead.mixes = {kUpdateIntensive};
  overhead.threads = {1, 8};
  // Mode::mmap here measures the instruction cost (clwb + sfence on
  // the nodes' cache lines) without a mapped heap file attached — the
  // instructions run on whatever memory the pool hands out, which is
  // exactly the overhead the backend adds on top of count_only.
  overhead.modes = {repro::pmem::Mode::count_only,
                    repro::pmem::Mode::shadow,
                    repro::pmem::Mode::mmap};

  return repro::bench::experiment_main(
      argc, argv,
      {fuzz, chain, conc, tdeath, stall, reclaim, lists, queues,
       overhead, rmatrix});
}
