// Crash engine driver: three specs over the shared experiment engine.
//
//   crash-fuzz       — the crash-point fuzzer (harness/crashfuzz.hpp)
//                      over every registered trait:detectable
//                      structure: REPRO_FUZZ_POINTS simulated crashes
//                      per structure at PRNG-chosen persistence-
//                      instruction boundaries under shadow-NVM mode,
//                      each verified against the detectability
//                      contract.  Any violation makes the binary exit
//                      non-zero (the ctest / CI gate) and writes the
//                      {structure, seed, crash_point} reproducers to
//                      REPRO_CRASH_REPRO (default crash_repro.jsonl).
//   conc-fuzz        — the concurrent crash-point fuzzer:
//                      REPRO_CONC_FUZZ_POINTS iterations per
//                      structure, each spawning REPRO_CONC_FUZZ_THREADS
//                      racing workers, crashing at a persistence
//                      boundary on whichever thread issues it, and
//                      verifying the recorded history + durable image
//                      with the durable-linearizability checker
//                      (harness/{history,linearize}.hpp).  Violations
//                      exit non-zero and dump the failing histories to
//                      REPRO_HISTORY_DUMP (default crash_history.jsonl
//                      — the CI artifact; tests/test_corpus.cpp shows
//                      the local replay).
//   crash-lists/-q   — the PR2 wall-clock crash scenario kept as a
//                      regression point: multi-threaded workload,
//                      crash at an operation boundary, recover()
//                      replay per thread.
//   shadow-overhead  — per-backend persistence cost vs. count_only
//                      for the Isb list and queue at 1 and 8 threads:
//                      shadow (interception + write log) and mmap
//                      (real clwb+sfence) relative to bare counting
//                      (the BENCH_PR4/PR6 perf-smoke trajectories).
//
// Replaying a CI-reported reproducer (use its base_seed field):
//   REPRO_SEED=<base_seed> REPRO_FUZZ_POINTS=<points> ./crash_recovery \
//     --benchmark_filter='^crash-fuzz/<structure>/'
// reruns the exact iteration sequence (iteration seeds derive from
// {REPRO_SEED, iteration}); tests/test_crash_engine.cpp shows the
// single-iteration fuzz_one() replay of one {seed, crash_point} pair.
#include <cstdlib>

#include "bench_common.hpp"

namespace {

int env_points(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro::harness;

  ExperimentSpec fuzz;
  fuzz.figure = "crash-fuzz";
  fuzz.what =
      "shadow-NVM crash-point fuzzing, detectability verified per "
      "crash";
  fuzz.structures = {"trait:detectable"};
  fuzz.crash_plan.points = env_points("REPRO_FUZZ_POINTS", 200);

  ExperimentSpec conc;
  conc.figure = "conc-fuzz";
  conc.what =
      "concurrent crash-point fuzzing, durable-linearizability "
      "checked per crash";
  conc.structures = {"trait:detectable"};
  conc.conc_plan.points = env_points("REPRO_CONC_FUZZ_POINTS", 100);
  conc.conc_plan.threads = env_points("REPRO_CONC_FUZZ_THREADS", 3);

  ExperimentSpec lists;
  lists.figure = "crash-lists";
  lists.what = "detectable recovery after a mid-interval crash (lists)";
  lists.structures = {"Isb", "Isb-Opt", "DT-Opt"};
  lists.key_ranges = {500};
  lists.mixes = {kUpdateIntensive};
  lists.crash_after_ms = 30;

  ExperimentSpec queues = lists;
  queues.figure = "crash-queues";
  queues.what = "detectable recovery after a mid-interval crash (queues)";
  queues.structures = {"trait:paper-queue"};  // non-detectable are skipped

  ExperimentSpec overhead;
  overhead.figure = "shadow-overhead";
  overhead.what =
      "persistence-backend cost vs count_only (Isb list & queue): "
      "shadow write-log tracking and mmap clwb+sfence";
  overhead.structures = {"Isb", "Isb-Queue"};
  overhead.key_ranges = {500};
  overhead.mixes = {kUpdateIntensive};
  overhead.threads = {1, 8};
  // Mode::mmap here measures the instruction cost (clwb + sfence on
  // the nodes' cache lines) without a mapped heap file attached — the
  // instructions run on whatever memory the pool hands out, which is
  // exactly the overhead the backend adds on top of count_only.
  overhead.modes = {repro::pmem::Mode::count_only,
                    repro::pmem::Mode::shadow,
                    repro::pmem::Mode::mmap};

  return repro::bench::experiment_main(
      argc, argv, {fuzz, conc, lists, queues, overhead});
}
